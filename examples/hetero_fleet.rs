//! Heterogeneous fleet: two server classes under one 70 °C heat-recovery
//! loop, thermal-aware placement vs round-robin.
//!
//! The catalog layer lets racks mix hardware bins: here a `dense` class at
//! the paper design point and a de-rated `sparse` class fed with 35 °C
//! water on a coarser thermal grid. The same job leaves less case margin
//! on the sparse bin, so it demands colder rack supply there — placement
//! now picks a *class*, not just a rack, and the thermal-aware dispatcher
//! ranks `(rack, class)` slots by marginal chiller power.
//!
//! ```sh
//! cargo run --release --example hetero_fleet
//! ```

use tps::cluster::{
    synthesize_jobs, Fleet, FleetCatalog, FleetConfig, FleetDispatcher, JobMix, OutcomeCache,
    RoundRobin, ServerClass, ThermalAwareDispatch,
};
use tps::units::Seconds;
use tps::workload::DiurnalDemand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let demand = DiurnalDemand::new(0.04, 0.2, Seconds::new(600.0));
    let jobs = synthesize_jobs(160, &demand, JobMix::default(), 42);

    // 4 racks × 4 servers: racks 0–1 dense, rack 2 sparse, rack 3 mixed
    // slot by slot (the same catalog scenarios/mixed_pitch_fleet.toml
    // declares via [[server_class]]).
    let mut config = FleetConfig::new(4, 4);
    config.grid_pitch_mm = 3.0;
    config.catalog = FleetCatalog::new(vec![
        ServerClass::new("dense"),
        ServerClass::new("sparse").pitch(3.5).inlet(35.0),
    ])
    .assign(vec![vec![0], vec![0], vec![1], vec![0, 1]]);
    let fleet = Fleet::new(config);
    println!(
        "fleet: 4 racks × 4 servers, classes per slot: {:?}\n",
        fleet.server_classes()
    );

    let cache = OutcomeCache::new();
    let mut rows = Vec::new();
    let dispatchers: Vec<Box<dyn FleetDispatcher>> = vec![
        Box::new(RoundRobin::default()),
        Box::new(ThermalAwareDispatch::default()),
    ];
    println!(
        "{:<20} {:>8} {:>9} {:>7} {:>6}   per-class jobs/violations",
        "dispatcher", "IT kWh", "cool kWh", "PUE", "viol"
    );
    for mut d in dispatchers {
        let out = fleet.simulate(&jobs, d.as_mut(), &cache)?;
        let per_class: Vec<String> = out
            .class_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                format!(
                    "{n} {}/{}",
                    out.class_placements[i], out.class_violations[i]
                )
            })
            .collect();
        println!(
            "{:<20} {:>8.3} {:>9.3} {:>7.3} {:>6}   {}",
            out.dispatcher,
            out.it_energy.to_kwh(),
            out.cooling_energy.to_kwh(),
            out.pue(),
            out.violations,
            per_class.join(", ")
        );
        rows.push(out);
    }

    let (rr, ta) = (&rows[0], &rows[1]);
    println!(
        "\nper-server physics: {} coupled solves across both classes ({} cache replays)",
        cache.solves(),
        cache.hits()
    );
    println!(
        "thermal-aware saves {:.1} % cooling energy vs round-robin at {} vs {} violations —",
        100.0 * (1.0 - ta.cooling_energy / rr.cooling_energy),
        ta.violations,
        rr.violations
    );
    println!(
        "on a mixed catalog the dispatcher segregates cold-demanding jobs by rack *and* bin,\n\
         which a class-blind striping baseline cannot do."
    );
    Ok(())
}
