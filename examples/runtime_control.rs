//! Transient runtime control (Fig. 4 / Sec. VII): a phase-based workload
//! drives the die through a thermal emergency; the controller first tries
//! DVFS, then opens the water valve, exactly in the paper's order.
//!
//! ```sh
//! cargo run --release --example runtime_control
//! ```

use tps::core::ConfigSelector as _;
use tps::core::MappingPolicy as _;
use tps::core::{
    heat, ControlAction, MinPowerSelector, ProposedMapping, RuntimeController, Server,
};
use tps::power::{CState, RaplCounter, RaplDomain};
use tps::thermosyphon::OperatingPoint;
use tps::units::{Celsius, KgPerHour, Seconds, TempDelta};
use tps::workload::{Benchmark, QosClass, WorkloadTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stress the controller: warm (35 °C) water and a tight limit.
    let server = Server::builder()
        .operating_point(OperatingPoint::new(KgPerHour::new(7.0), Celsius::new(35.0)))
        .grid_pitch_mm(2.0)
        .build();
    let bench = Benchmark::X264;
    let qos = QosClass::TwoX;

    let selected = MinPowerSelector
        .select(bench, qos, CState::Poll)
        .expect("a feasible configuration exists");
    // Start at f_max, as a thermally naive runtime would — the controller
    // will walk the frequency down before touching the valve.
    let mut config = selected
        .config
        .with_frequency(tps::power::CoreFrequency::F3_2);
    let idle = CState::deepest_within(qos.idle_delay_tolerance());
    let ctx = tps::core::MappingContext::new(
        server.topology(),
        server.simulation().design().orientation(),
        idle,
    );
    let mapping = ProposedMapping.select_cores(config.n_cores() as usize, &ctx);

    // A tight controller so the emergency path is visible in a short demo.
    let mut controller = RuntimeController::new(
        Celsius::new(46.0),
        TempDelta::new(6.0),
        tps::thermosyphon::FlowValve::paper(),
    );
    let trace = WorkloadTrace::synthesize(bench, Seconds::new(40.0), 42);
    let mut rapl = RaplCounter::new();
    let mut server_now = server.clone();

    println!("t(s)   phase  config          T_case   flow(kg/h)  action");
    let epoch = Seconds::new(4.0);
    let mut t = 0.0;
    while t < trace.duration().value() {
        let scale = trace.power_scale_at(Seconds::new(t));
        let row = tps::workload::profile_config(bench, config, idle);
        let mut breakdown = heat::breakdown_for_mapping(&row, &mapping);
        for c in &mut breakdown.core {
            *c = *c * scale;
        }
        let (solution, _, _) = server_now.solve_breakdown(&breakdown)?;
        rapl.advance(epoch, breakdown.total(), breakdown.total() * 0.8);

        let action = controller.evaluate(solution.t_case, bench, qos, config);
        match action {
            ControlAction::LoweredFrequency(new_config) => config = new_config,
            ControlAction::IncreasedFlow(flow) | ControlAction::RelaxedFlow(flow) => {
                let op = server_now.simulation().operating_point().with_flow(flow);
                server_now = server_now.with_operating_point(op);
            }
            ControlAction::NoAction | ControlAction::Emergency => {}
        }
        println!(
            "{t:5.0}  ×{scale:4.2}  {config}  {:6.1}   {:9.1}  {action:?}",
            solution.t_case.value(),
            controller.flow().value(),
        );
        t += epoch.value();
    }
    println!(
        "\naverage package power (simulated RAPL): {:.1}",
        rapl.average_power(RaplDomain::Package)
    );
    Ok(())
}
