//! Design-space exploration (Sec. VI): reproduce the paper's design choices
//! from scratch — orientation, refrigerant, filling ratio, then the water
//! operating point — against the worst-case workload.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use tps::core::heat::breakdown_for_mapping;
use tps::floorplan::{xeon_e5_v4, GridSpec, PackageGeometry, ScalarField};
use tps::power::{power_field, CState};
use tps::thermosyphon::{DesignOptimizer, OperatingPoint};
use tps::workload::{profile_config, Benchmark, WorkloadConfig};

fn main() {
    let fp = xeon_e5_v4();
    let pkg = PackageGeometry::xeon(&fp);

    // Worst case of Sec. V: the most power-hungry benchmark at the native
    // configuration, all idle cores polling.
    let row = profile_config(Benchmark::X264, WorkloadConfig::baseline(), CState::Poll);
    let breakdown = breakdown_for_mapping(&row, &[1, 2, 3, 4, 5, 6, 7, 8]);
    println!(
        "worst-case workload: x264 {} — {:.1} package power\n",
        WorkloadConfig::baseline(),
        breakdown.total()
    );
    let fp_for_power = fp.clone();
    let die_offset = pkg.die_offset();
    let power_for = move |grid: &GridSpec| -> ScalarField {
        power_field(&fp_for_power, grid, die_offset, &breakdown)
    };

    // Stage 1: orientation × refrigerant × filling ratio.
    let optimizer = DesignOptimizer::default().grid_pitch_mm(1.0);
    println!("exploring the design grid (2 orientations × 3 refrigerants × 5 fills)…\n");
    let reports = optimizer.explore(&pkg, OperatingPoint::paper(), &power_for);
    for (i, r) in reports.iter().enumerate().take(6) {
        println!("  #{:<2} {r}", i + 1);
    }
    println!("  …");
    let best = &reports[0];
    println!("\nchosen design: {}", best.design);
    println!("(the paper chose design 1 / R236fa / 55 % — Sec. VI-A/B)\n");

    // Stage 2: warmest water, lowest flow that still meets T_CASE_MAX.
    let op = optimizer.optimize_operating(
        &best.design,
        &pkg,
        &[20.0, 22.5, 25.0, 27.5, 30.0, 32.5],
        &[4.0, 5.5, 7.0, 8.5, 10.0],
        &power_for,
    );
    match op {
        Some(op) => {
            println!("chosen operating point: {op}  (the paper chose 7 kg/h @ 30 °C — Sec. VI-C)")
        }
        None => println!("no feasible operating point — design stage failed"),
    }
}
