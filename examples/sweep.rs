//! Declarative scenario sweeps: load a shipped spec, expand its grid,
//! execute it across OS threads and render the report — the API behind
//! `tps sweep <spec.toml>`.
//!
//! ```sh
//! cargo run --release --example sweep
//! ```

use tps::scenario::Sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The shipped dispatcher comparison on the paper's 70 °C heat-reuse
    // loop (scenarios/ holds three more specs; docs/SCENARIOS.md is the
    // schema reference and cookbook).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/heat_reuse_70c.toml");
    let source = std::fs::read_to_string(path)?;
    let sweep = Sweep::parse(&source, "heat-reuse-70c")?;

    println!(
        "spec `{}`: {} axes, {} grid points",
        sweep.name,
        sweep.axes.len(),
        sweep.grid_len()
    );
    for scenario in sweep.expand()? {
        println!(
            "  {} — {} racks × {} servers, {} jobs, heat reuse {} °C",
            scenario.name,
            scenario.racks,
            scenario.servers_per_rack,
            scenario.jobs,
            scenario.heat_reuse_c
        );
    }

    let report = sweep.run(4)?;
    println!("\n{}", report.to_markdown());

    let base = report.baseline_row();
    let best = report
        .rows
        .iter()
        .min_by(|a, b| a.total_kwh.total_cmp(&b.total_kwh))
        .expect("a parsed sweep always has at least one row");
    println!(
        "cheapest grid point: `{}` at {:.3} kWh total ({:+.1} % vs `{}`)",
        best.name,
        best.total_kwh,
        100.0 * (best.total_kwh / base.total_kwh - 1.0),
        base.name
    );
    Ok(())
}
