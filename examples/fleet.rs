//! Fleet-scale scenario: a diurnal job stream across 8 racks × 8 servers
//! feeding a 70 °C heat-recovery loop.
//!
//! Sec. V's rack constraint — all thermosyphons share one chiller water
//! temperature — makes placement a fleet-wide energy decision: one
//! thermally demanding 1× job forces its whole rack's heat through the
//! heat pump. The thermal-aware dispatcher concentrates such jobs so the
//! remaining racks exchange heat directly with the reuse loop.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use tps::cluster::{
    synthesize_jobs, CoolestRackFirst, Fleet, FleetConfig, FleetDispatcher, JobMix, OutcomeCache,
    RoundRobin, ThermalAwareDispatch,
};
use tps::units::Seconds;
use tps::workload::DiurnalDemand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 500 jobs over a day-like cycle: trough 0.14 jobs/s, peak 0.7 jobs/s.
    let demand = DiurnalDemand::new(0.14, 0.7, Seconds::new(600.0));
    let jobs = synthesize_jobs(500, &demand, JobMix::default(), 42);
    let fleet = Fleet::new(FleetConfig::new(8, 8));
    println!(
        "fleet: 8 racks × 8 servers, {} jobs, {} distinct (bench, qos) pairs\n",
        jobs.len(),
        {
            let mut pairs: Vec<_> = jobs.iter().map(|j| (j.bench, j.qos)).collect();
            pairs.sort();
            pairs.dedup();
            pairs.len()
        }
    );

    let cache = OutcomeCache::new();
    let mut rows = Vec::new();
    let dispatchers: Vec<Box<dyn FleetDispatcher>> = vec![
        Box::new(RoundRobin::default()),
        Box::new(CoolestRackFirst),
        Box::new(ThermalAwareDispatch::default()),
    ];
    println!(
        "{:<20} {:>8} {:>9} {:>7} {:>6} {:>11}",
        "dispatcher", "IT kWh", "cool kWh", "PUE", "viol", "peak rack W"
    );
    for mut d in dispatchers {
        let out = fleet.simulate(&jobs, d.as_mut(), &cache)?;
        println!(
            "{:<20} {:>8.3} {:>9.3} {:>7.3} {:>6} {:>11.0}",
            out.dispatcher,
            out.it_energy.to_kwh(),
            out.cooling_energy.to_kwh(),
            out.pue(),
            out.violations,
            out.peak_rack_heat.value()
        );
        rows.push(out);
    }

    let (rr, ta) = (&rows[0], &rows[2]);
    println!(
        "\nper-server physics: {} coupled solves for {} placements ({} cache replays)",
        cache.solves(),
        3 * jobs.len(),
        cache.hits()
    );
    println!(
        "thermal-aware saves {:.1} % cooling energy and {:.1} % total energy vs round-robin,",
        100.0 * (1.0 - ta.cooling_energy / rr.cooling_energy),
        100.0 * (1.0 - ta.total_energy() / rr.total_energy())
    );
    println!(
        "with {} QoS violations instead of {} — the per-server mapping result of the paper,\n\
         replayed at rack granularity against the shared-water-loop constraint.",
        ta.violations, rr.violations
    );
    Ok(())
}
