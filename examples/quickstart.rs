//! Quickstart: run one PARSEC workload on the paper's thermosyphon-cooled
//! Xeon and print every quantity the paper cares about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tps::core::{MinPowerSelector, ProposedMapping, Server};
use tps::workload::{Benchmark, QosClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server with the paper's thermosyphon design (Design 1, R236fa at
    // 55 % fill) and operating point (7 kg/h of 30 °C water), simulated on
    // a 1 mm thermal grid (use 0.5 for paper-quality maps).
    let server = Server::xeon(1.0);

    println!("running x264 under a 2x QoS constraint…\n");
    let outcome = server.run(
        Benchmark::X264,
        QosClass::TwoX,
        &MinPowerSelector, // Algorithm 1
        &ProposedMapping,  // the paper's C-state-aware mapping
    )?;

    println!("selected configuration : {}", outcome.profile.config);
    println!(
        "predicted slowdown     : {:.2}x (limit {:.0}x)",
        outcome.profile.normalized_time,
        QosClass::TwoX.max_slowdown()
    );
    println!("idle cores parked in   : {}", outcome.idle_cstate);
    println!("threads mapped to cores: {:?}", outcome.mapping);
    println!("package power          : {:.1}", outcome.breakdown.total());
    println!();
    println!("loop saturation temp   : {:.1}", outcome.solution.t_sat);
    println!(
        "refrigerant flow       : {:.2} kg/h (natural circulation)",
        outcome.solution.refrigerant_flow.value() * 3600.0
    );
    println!("case temperature       : {:.1}", outcome.solution.t_case);
    println!(
        "water outlet           : {:.1}",
        outcome.solution.water_outlet
    );
    println!();
    println!("die     {}", outcome.die);
    println!("package {}", outcome.package);
    println!();
    println!("die thermal map:");
    print!(
        "{}",
        tps::thermal::render_ascii(outcome.solution.thermal.die_layer())
    );
    Ok(())
}
