//! Rack-level scenario (Sec. V): several servers share one chiller loop, so
//! all thermosyphons must run at the same water temperature — one badly
//! mapped server drags the whole rack's chiller efficiency down.
//!
//! ```sh
//! cargo run --release --example rack_allocation
//! ```

use tps::cooling::{pue, Chiller, Rack};
use tps::core::{
    plan_rack, rack_cooling_loads, CoskunBalancing, MinPowerSelector, ProposedMapping, RunOutcome,
    Server, T_CASE_MAX,
};
use tps::units::Watts;
use tps::workload::{Benchmark, QosClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N_SERVERS: usize = 4;
    // A mixed batch: every PARSEC benchmark at 2x QoS.
    let apps: Vec<(Benchmark, QosClass)> = Benchmark::ALL
        .into_iter()
        .map(|b| (b, QosClass::TwoX))
        .collect();
    let plan = plan_rack(&apps, N_SERVERS);
    println!("allocation across {N_SERVERS} servers (balanced by estimated power):");
    for (i, server_apps) in plan.iter().enumerate() {
        let names: Vec<&str> = server_apps.iter().map(|(b, _)| b.name()).collect();
        println!("  server {i}: {}", names.join(", "));
    }

    let server = Server::xeon(1.5);
    let chiller = Chiller::default();
    let op = server.simulation().operating_point();

    // Run each server's heaviest job (the one that pins its water demand),
    // once with the proposed mapping and once with the baseline.
    let mut summary = Vec::new();
    for (label, policy) in [
        (
            "proposed",
            &ProposedMapping as &dyn tps::core::MappingPolicy,
        ),
        ("coskun [9]", &CoskunBalancing),
    ] {
        let mut outcomes: Vec<RunOutcome> = Vec::new();
        for server_apps in &plan {
            let (bench, qos) = server_apps[0]; // the heaviest job per server
            outcomes.push(server.run(bench, qos, &MinPowerSelector, policy)?);
        }
        let refs: Vec<&RunOutcome> = outcomes.iter().collect();
        let mut loads = rack_cooling_loads(&refs, op, T_CASE_MAX);
        // The loop is designed for 30 °C water — never ask the chiller for
        // more, whatever the thermal headroom says.
        for load in &mut loads {
            load.max_water_temp = load.max_water_temp.min(op.water_inlet());
        }
        let mut rack = Rack::new();
        for load in &loads {
            rack.add_server(*load);
        }
        let headroom = loads
            .iter()
            .map(|l| l.max_water_temp)
            .reduce(tps::units::Celsius::min)
            .expect("rack is not empty");
        let _ = headroom;
        let it_power: Watts = outcomes.iter().map(|o| o.solution.q_total).sum();
        let chiller_power = rack.chiller_power(&chiller);
        println!("\n[{label}]");
        println!(
            "  rack heat {:.1}, shared water ≤ {:.1}, ΔT {:.1}",
            rack.total_heat(),
            rack.shared_water_temperature().expect("rack is not empty"),
            rack.water_delta_t()
        );
        println!(
            "  chiller electrical {:.1}  → rack PUE {:.3}",
            chiller_power,
            pue(it_power, chiller_power)
        );
        summary.push(chiller_power.value());
    }
    if (summary[0] - summary[1]).abs() < 1e-6 {
        println!(
            "\nboth policies free-cool at this load — the thermosyphon's PUE ≈ 1.05 \
             matches the prototype paper's claim; mapping differences surface at \
             higher loads (see the cooling_power experiment)."
        );
    } else {
        println!(
            "\nmapping-induced chiller saving at rack level: {:.0} %",
            100.0 * (1.0 - summary[0] / summary[1].max(1e-9))
        );
    }
    Ok(())
}
