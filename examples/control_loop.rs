//! Runtime set-point control over a diurnal day: the event kernel runs
//! the same thermal-aware fleet open loop and under a
//! [`SetpointScheduler`] that drops the 70 °C heat-reuse loop to 45 °C
//! across the load peak, then prints the cooling-energy delta and the
//! telemetry around the set-point steps.
//!
//! While the set-point sits at 45 °C nearly every committed supply clears
//! the bypass threshold and free-cools — the chiller power collapses in
//! the trace — at the price of rejecting that heat below reuse grade.
//!
//! ```sh
//! cargo run --release --example control_loop
//! ```

use tps::cluster::{
    synthesize_jobs, Fleet, FleetConfig, JobMix, OutcomeCache, SetpointScheduler, StaticControl,
    TelemetryConfig, ThermalAwareDispatch,
};
use tps::units::{Celsius, Seconds};
use tps::workload::DiurnalDemand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One scaled diurnal cycle: trough at t = 0, peak at t = 300 s.
    let demand = DiurnalDemand::new(0.05, 0.25, Seconds::new(600.0));
    let jobs = synthesize_jobs(120, &demand, JobMix::default(), 42);
    let mut config = FleetConfig::new(4, 4);
    config.grid_pitch_mm = 3.0;
    let fleet = Fleet::new(config);
    let cache = OutcomeCache::new();
    let telemetry = TelemetryConfig {
        sample_interval: Seconds::new(20.0),
        ..TelemetryConfig::default()
    };

    println!("fleet: 4 racks × 4 servers, {} diurnal jobs\n", jobs.len());

    // Open loop: the heat-reuse loop holds 70 °C all day.
    let open = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut StaticControl,
            Some(&telemetry),
            &cache,
        )?
        .outcome;

    // Closed loop: drop to 45 °C across the peak, restore for the trough.
    let mut schedule = SetpointScheduler::new(vec![
        (Seconds::new(0.0), Celsius::new(70.0)),
        (Seconds::new(150.0), Celsius::new(45.0)),
        (Seconds::new(450.0), Celsius::new(70.0)),
    ]);
    let controlled = fleet.simulate_with(
        &jobs,
        &mut ThermalAwareDispatch::default(),
        &mut schedule,
        Some(&telemetry),
        &cache,
    )?;

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>6}",
        "control", "IT kWh", "cool kWh", "tot kWh", "viol"
    );
    for out in [&open, &controlled.outcome] {
        println!(
            "{:<28} {:>9.4} {:>9.4} {:>9.4} {:>6}",
            out.control,
            out.it_energy.to_kwh(),
            out.cooling_energy.to_kwh(),
            out.total_energy().to_kwh(),
            out.violations
        );
    }
    let saved = 1.0 - controlled.outcome.cooling_energy / open.cooling_energy;
    println!(
        "\nsetpoint schedule vs static 70 °C: {:+.1} % cooling energy\n",
        -100.0 * saved
    );

    // The telemetry shows the mechanism: chiller power collapses while
    // the 45 °C set-point is in force.
    let trace = controlled.trace.expect("telemetry was on");
    println!("trace around the set-point steps (20 s cadence):");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "t_s", "setpoint", "running", "queued", "IT W", "cool W"
    );
    for s in trace
        .samples()
        .filter(|s| (120.0..=520.0).contains(&s.t.value()) && s.t.value() % 60.0 < 1e-9)
    {
        println!(
            "{:>8.0} {:>10.1} {:>8} {:>8} {:>9.1} {:>9.1}",
            s.t.value(),
            s.setpoint.value(),
            s.running,
            s.queued,
            s.it_power.value(),
            s.cooling_power.value()
        );
    }
    Ok(())
}
