//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in air-gapped environments, so the benches compile
//! against this API-compatible subset instead of crates.io criterion.
//! There is no statistics engine: each benchmark runs a short warm-up and
//! then `sample_size` timed iterations, printing the mean wall-clock time
//! per iteration. Good enough for relative comparisons while keeping
//! `cargo bench` runnable anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores the target time.
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Set the warm-up budget before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up = t;
        self
    }

    /// Run a single benchmark under `name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, self.warm_up, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            _criterion: self,
        }
    }

    /// Run any pending reports (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores the target time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.warm_up, &mut f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.warm_up, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, running it repeatedly and recording the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, warm_up: Duration, f: &mut F) {
    let mut b = Bencher {
        samples,
        warm_up,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<48} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Group benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &2, |b, x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    criterion_group!(benches, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn groups_run_to_completion() {
        benches();
        configured();
    }
}
