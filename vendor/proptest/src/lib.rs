//! Minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! The workspace builds in air-gapped environments, so the subset of the
//! proptest API used by the property suites is reimplemented here:
//!
//! * the [`proptest!`] macro with `name(arg in strategy, ...)` signatures
//!   and an optional `#![proptest_config(...)]` inner attribute,
//! * range strategies over integers and floats (`lo..hi`, `lo..=hi`),
//! * [`num::f64::ANY`] (arbitrary bit patterns, including NaN/±inf),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is **no shrinking**: a failing case panics with the sampled
//! inputs, which the deterministic per-test seed makes reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod num;
pub mod prelude;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the thermal/solver suites are too
        // slow for that in CI, so the stub trims the default while staying
        // well above smoke-test territory. Like real proptest, the
        // `PROPTEST_CASES` environment variable overrides it — CI's fast
        // oracle job dials the count down, soak runs dial it up.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Deterministic random stream used to drive strategies.
///
/// A thin wrapper over the vendored [`rand`] stub's SplitMix64 `StdRng`,
/// so the sampling logic (and its half-open-range guarantees) lives in
/// exactly one place.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Create a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.inner)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        rand::Rng::next_f64(&mut self.inner)
    }

    /// Sample uniformly from a range via the underlying generator.
    fn gen_range<R: rand::SampleRange>(&mut self, range: R) -> R::Output {
        rand::Rng::gen_range(&mut self.inner, range)
    }
}

/// FNV-1a hash of a string, used to give every property its own seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draw one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty f64 range strategy");
        // Occasionally emit the exact endpoints so boundary behaviour is hit.
        match rng.next_u64() % 16 {
            0 => *self.start(),
            1 => *self.end(),
            _ => rng.gen_range(self.clone()),
        }
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range strategy");
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Declare deterministic property tests.
///
/// Supported grammar (a strict subset of real proptest):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]  // optional
///     #[test]
///     fn my_property(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0u64..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_between_tests() {
        assert_ne!(crate::fnv1a("a::b"), crate::fnv1a("a::c"));
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0, z in 1u8..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_attribute_accepted(v in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn any_f64_hits_special_values(v in crate::num::f64::ANY) {
            // Just exercise the strategy; NaN/inf must not panic the runner.
            let _ = v.is_nan() || v.is_infinite() || v.is_finite();
        }
    }
}
