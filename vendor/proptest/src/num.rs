//! Numeric strategies mirroring `proptest::num`.

/// Strategies over `f64`.
pub mod f64 {
    use crate::{Strategy, TestRng};

    /// Strategy producing arbitrary `f64` bit patterns — finite values,
    /// signed zeros, subnormals, infinities and NaN all occur.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Any `f64` whatsoever, including NaN and the infinities.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Bias towards specials often enough that every run sees them.
            match rng.next_u64() % 8 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }
}
