//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! This workspace builds in air-gapped environments where crates.io is
//! unreachable, so the small slice of the `rand` 0.8 API the simulator
//! actually uses is reimplemented here on top of a SplitMix64 generator.
//! Sequences are fully deterministic for a given seed, which is exactly
//! what the trace synthesiser wants anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::Range;

/// A random number generator seeded from simple integer state.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface: everything derives from a `u64` stream.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// A range that knows how to sample itself uniformly from an [`Rng`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample_from<G: Rng>(&self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: Rng>(&self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` when the
        // span is tiny relative to the magnitude of `start`; keep the
        // documented half-open contract by stepping one ulp back down.
        if x < self.end {
            x
        } else {
            largest_below(self.end).max(self.start)
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<G: Rng>(&self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty f64 range");
        let u = rng.next_f64();
        // Lerp form: `start + u*(end-start)` overflows to infinity when the
        // span exceeds f64::MAX (e.g. -MAX..=MAX); this form stays finite.
        (start * (1.0 - u) + end * u).clamp(start, end)
    }
}

/// Largest representable `f64` strictly below `x` (which must be finite).
fn largest_below(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        -f64::from_bits(1) // below ±0.0 sits the smallest negative subnormal
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(&self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(&self, rng: &mut G) -> $t {
                assert!(self.start() <= self.end(), "gen_range: empty integer range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
        }
    }

    #[test]
    fn f64_range_is_half_open_even_for_tiny_spans() {
        // A span of a few ulps around a huge base rounds `start + u*span`
        // onto `end` for most draws; the contract must still hold.
        let mut rng = StdRng::seed_from_u64(11);
        let (start, end) = (1e16, 1e16 + 4.0);
        for _ in 0..10_000 {
            let x = rng.gen_range(start..end);
            assert!(x >= start && x < end, "{x} escaped [{start}, {end})");
        }
    }

    #[test]
    fn inclusive_f64_range_survives_full_finite_span() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(-f64::MAX..=f64::MAX);
            assert!(x.is_finite(), "sample escaped the finite range: {x}");
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let v = rng.gen_range(1u8..=2);
            assert!((1..=2).contains(&v));
        }
    }
}
