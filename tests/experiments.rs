//! Integration tests pinning the experiment-level claims that the bench
//! binaries print — so regressions in any crate surface as failures here,
//! not as silently drifting tables.

use tps::cooling::{water_loop_heat, Chiller};
use tps::power::{CState, CoreFrequency, IdlePowerModel};
use tps::units::{Celsius, KgPerHour, Watts};
use tps::workload::{Benchmark, QosClass, WorkloadConfig};

#[test]
fn table_i_is_reproduced_exactly() {
    let model = IdlePowerModel::xeon_e5_v4();
    for state in [CState::Poll, CState::C1, CState::C1e] {
        for freq in CoreFrequency::ALL {
            let model_w = model.package_idle_power(state, freq);
            let paper_w = IdlePowerModel::table_i(state, freq).expect("state is in Table I");
            assert!(
                (model_w - paper_w).abs().value() < 1e-9,
                "{state} @ {freq}: {model_w} vs paper {paper_w}"
            );
        }
    }
}

#[test]
fn fig3_shape_holds() {
    // Baseline normalizes to 0.5 of the 2× limit; every benchmark violates
    // the limit at (2,4,fmax); every benchmark meets it at (4,8,fmax).
    let limit = QosClass::TwoX.max_slowdown();
    for bench in Benchmark::ALL {
        let p = bench.profile();
        let cfgs = WorkloadConfig::fig3_configs();
        let t24 = p.normalized_time(cfgs[0]) / limit;
        let t48 = p.normalized_time(cfgs[2]) / limit;
        let t816 = p.normalized_time(cfgs[4]) / limit;
        assert!(t24 > 1.0, "{bench}: (2,4) should violate 2x, got {t24}");
        assert!(t24 < 2.1, "{bench}: (2,4) beyond the paper's plot range");
        assert!(t48 < 1.0, "{bench}: (4,8) should meet 2x, got {t48}");
        assert!((t816 - 0.5).abs() < 1e-9, "{bench}: baseline is 0.5 by def");
    }
}

#[test]
fn paper_power_band_is_covered() {
    // Sec. V: package power spans 40.5–79.3 W across configurations and
    // applications (profiled with POLL idles).
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for bench in Benchmark::ALL {
        for row in tps::workload::profile_application(bench, CState::Poll) {
            lo = lo.min(row.package_power.value());
            hi = hi.max(row.package_power.value());
        }
    }
    assert!((32.0..48.0).contains(&lo), "min package power {lo:.1} W");
    assert!((72.0..87.0).contains(&hi), "max package power {hi:.1} W");
}

#[test]
fn sec_viii_b_water_arithmetic() {
    // The paper's Eq.-1 example: at 7 kg/h, ΔT 6 °C vs 11 °C is a 45.45 %
    // reduction in water-side cooling power.
    let p6 = water_loop_heat(KgPerHour::new(7.0), Celsius::new(30.0), Celsius::new(36.0));
    let p11 = water_loop_heat(KgPerHour::new(7.0), Celsius::new(20.0), Celsius::new(31.0));
    let reduction = 1.0 - p6.value() / p11.value();
    assert!((reduction - 0.4545).abs() < 0.01);
}

#[test]
fn chiller_penalizes_cold_water_by_45_percent_or_more() {
    // Even at equal heat, 20 °C water costs ≥ 45 % more chiller
    // electricity than 30 °C water (free-cooling regime).
    let chiller = Chiller::default();
    let q = Watts::new(75.0);
    let warm = chiller.electrical_power(q, Celsius::new(30.0));
    let cold = chiller.electrical_power(q, Celsius::new(20.0));
    let reduction = 1.0 - warm.value() / cold.value();
    assert!(reduction >= 0.45, "reduction {reduction:.2}");
}
