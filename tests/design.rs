//! Integration tests for the design-time story of Sec. VI: the optimizer
//! must rediscover the paper's choices from the physics alone.

use tps::core::heat::breakdown_for_mapping;
use tps::floorplan::{xeon_e5_v4, GridSpec, PackageGeometry, ScalarField};
use tps::fluids::Refrigerant;
use tps::power::{power_field, CState};
use tps::thermosyphon::{DesignOptimizer, OperatingPoint, Orientation};
use tps::units::Celsius;
use tps::workload::{profile_config, Benchmark, WorkloadConfig};

fn worst_case_power() -> impl Fn(&GridSpec) -> ScalarField {
    let fp = xeon_e5_v4();
    let pkg = PackageGeometry::xeon(&fp);
    let row = profile_config(Benchmark::X264, WorkloadConfig::baseline(), CState::Poll);
    let breakdown = breakdown_for_mapping(&row, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let offset = pkg.die_offset();
    move |grid: &GridSpec| power_field(&fp, grid, offset, &breakdown)
}

#[test]
fn optimizer_rediscovers_the_paper_filling_ratio() {
    // The 55 % charge is clearly optimal on the realistic worst-case map:
    // under-filling is catastrophically infeasible (deep dryout) and
    // over-filling floods the condenser. The orientation choice on a
    // *uniform* full-load map is within noise in our model (see
    // EXPERIMENTS.md — Fig. 5); the clear Design-1 win on concentrated
    // maps is asserted by `tps-thermosyphon`'s unit tests.
    let pkg = PackageGeometry::xeon(&xeon_e5_v4());
    let optimizer = DesignOptimizer::default()
        .grid_pitch_mm(2.0)
        .refrigerants(vec![Refrigerant::R236fa])
        .filling_ratios(vec![0.35, 0.55, 0.75]);
    let reports = optimizer.explore(&pkg, OperatingPoint::paper(), &worst_case_power());
    let best = &reports[0];
    assert!(best.objective.feasible, "paper design must be feasible");
    assert!((best.design.filling_ratio().value() - 0.55).abs() < 1e-9);
    // Every under-filled candidate must be infeasible.
    for r in &reports {
        if (r.design.filling_ratio().value() - 0.35).abs() < 1e-9 {
            assert!(!r.objective.feasible, "under-filled loop must dry out");
        }
    }
    let _ = Orientation::InletEast; // orientation covered at unit level
}

#[test]
fn optimizer_rejects_infeasible_constraint() {
    let pkg = PackageGeometry::xeon(&xeon_e5_v4());
    let optimizer = DesignOptimizer::default()
        .grid_pitch_mm(2.0)
        .refrigerants(vec![Refrigerant::R236fa])
        .filling_ratios(vec![0.55])
        .t_case_max(Celsius::new(20.0)); // colder than the water itself
    let best = optimizer.best(&pkg, OperatingPoint::paper(), &worst_case_power());
    assert!(!best.objective.feasible);
}

#[test]
fn operating_point_matches_sec_vi_c() {
    // Highest water temperature, then lowest flow, under T_CASE ≤ 85 °C —
    // the paper lands on 7 kg/h @ 30 °C.
    let pkg = PackageGeometry::xeon(&xeon_e5_v4());
    let optimizer = DesignOptimizer::default().grid_pitch_mm(2.0);
    let design = tps::thermosyphon::ThermosyphonDesign::paper_design(&pkg);
    let op = optimizer
        .optimize_operating(
            &design,
            &pkg,
            &[20.0, 25.0, 30.0],
            &[7.0, 10.5, 14.0],
            &worst_case_power(),
        )
        .expect("a feasible operating point exists");
    assert_eq!(op.water_inlet(), Celsius::new(30.0));
    assert_eq!(op.water_flow(), tps::units::KgPerHour::new(7.0));
}
