//! End-to-end integration tests: the full scheduler → power → thermosyphon
//! → thermal pipeline, checked against the paper's qualitative claims.

use tps::core::{
    CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector, PackedMapping,
    ProposedMapping, Server,
};
use tps::power::CState;
use tps::units::Watts;
use tps::workload::{Benchmark, QosClass};

/// A coarse server shared by the tests in this file (2 mm grid keeps each
/// coupled solve around tens of milliseconds in release/test-opt builds).
fn server() -> Server {
    Server::xeon(2.0)
}

#[test]
fn energy_is_conserved_through_the_whole_stack() {
    let server = server();
    let out = server
        .run(
            Benchmark::Ferret,
            QosClass::TwoX,
            &MinPowerSelector,
            &ProposedMapping,
        )
        .expect("pipeline runs");
    // Scheduler-side package power == rasterized field total == heat into
    // the refrigerant (± the small board-side leak).
    let field_total = server.power_field(&out.breakdown).total();
    assert!((field_total - out.breakdown.total().value()).abs() < 1e-9);
    let wall = out.solution.wall_heat.total();
    assert!(
        (wall - field_total).abs() < 0.03 * field_total,
        "refrigerant absorbs {wall:.1} W of {field_total:.1} W"
    );
}

#[test]
fn table2_ordering_holds_on_average() {
    // The paper's headline: proposed ≤ coskun [9] ≤ inlet-first [7] on die
    // hot spots, averaged over benchmarks, at relaxed QoS.
    let server = server();
    let benches = [Benchmark::X264, Benchmark::Fluidanimate, Benchmark::Ferret];
    let avg = |policy: &dyn MappingPolicy| -> f64 {
        benches
            .iter()
            .map(|&b| {
                server
                    .run(b, QosClass::ThreeX, &MinPowerSelector, policy)
                    .expect("pipeline runs")
                    .die
                    .max
                    .value()
            })
            .sum::<f64>()
            / benches.len() as f64
    };
    let ours = avg(&ProposedMapping);
    let coskun = avg(&CoskunBalancing);
    let inlet = avg(&InletFirstMapping);
    let packed = avg(&PackedMapping);
    assert!(
        ours <= coskun + 0.05,
        "proposed {ours:.2} vs coskun {coskun:.2}"
    );
    assert!(
        coskun < inlet,
        "coskun {coskun:.2} vs inlet-first {inlet:.2}"
    );
    assert!(
        inlet <= packed + 0.5,
        "inlet {inlet:.2} vs packed {packed:.2}"
    );
}

#[test]
fn qos_relaxation_reduces_power_and_temperature() {
    let server = server();
    let run = |qos| {
        server
            .run(Benchmark::Facesim, qos, &MinPowerSelector, &ProposedMapping)
            .expect("pipeline runs")
    };
    let strict = run(QosClass::OneX);
    let relaxed = run(QosClass::ThreeX);
    assert!(relaxed.breakdown.total() < strict.breakdown.total() - Watts::new(10.0));
    assert!(relaxed.die.max < strict.die.max);
    assert!(relaxed.package.max < strict.package.max);
}

#[test]
fn one_x_runs_all_approaches_identically_except_design() {
    // Sec. VIII-A: at 1× everyone runs (8,16,fmax); only the thermosyphon
    // design differs. With the same server, proposed and coskun coincide.
    let server = server();
    let ours = server
        .run(
            Benchmark::X264,
            QosClass::OneX,
            &MinPowerSelector,
            &ProposedMapping,
        )
        .expect("pipeline runs");
    let coskun = server
        .run(
            Benchmark::X264,
            QosClass::OneX,
            &MinPowerSelector,
            &CoskunBalancing,
        )
        .expect("pipeline runs");
    assert_eq!(ours.profile.config, coskun.profile.config);
    let mut a = ours.mapping.clone();
    let mut b = coskun.mapping.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "full-load mappings must coincide");
    assert!((ours.die.max.value() - coskun.die.max.value()).abs() < 1e-6);
}

#[test]
fn qos_drives_the_idle_cstate() {
    let server = server();
    let run = |qos| {
        server
            .run(Benchmark::Vips, qos, &MinPowerSelector, &ProposedMapping)
            .expect("pipeline runs")
            .idle_cstate
    };
    assert_eq!(run(QosClass::OneX), CState::Poll);
    assert_eq!(run(QosClass::TwoX), CState::C1e);
    assert_eq!(run(QosClass::ThreeX), CState::C6);
}

#[test]
fn physical_temperature_ordering() {
    // Water < T_sat < case < die max, at every QoS.
    let server = server();
    for qos in QosClass::ALL {
        let out = server
            .run(
                Benchmark::Raytrace,
                qos,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .expect("pipeline runs");
        let water = server.simulation().operating_point().water_inlet();
        assert!(out.solution.t_sat > water, "{qos}");
        assert!(out.solution.t_case > out.solution.t_sat, "{qos}");
        assert!(out.die.max.value() > out.solution.t_case.value(), "{qos}");
        assert!(out.die.max.value() < 100.0, "{qos}: die melts");
    }
}

#[test]
fn spread_mappings_produce_distinct_hotspots() {
    // The paper's mapping objective is "number and magnitude" of hot
    // spots: a packed placement merges the active cores into one thermal
    // blob, while the spread placements leave distinct peaks.
    let server = server();
    let spread = server
        .run(
            Benchmark::X264,
            QosClass::ThreeX,
            &MinPowerSelector,
            &ProposedMapping,
        )
        .expect("pipeline runs");
    let packed = server
        .run(
            Benchmark::X264,
            QosClass::ThreeX,
            &MinPowerSelector,
            &PackedMapping,
        )
        .expect("pipeline runs");
    assert!(
        spread.die.hotspots >= packed.die.hotspots,
        "spread {} vs packed {} hot spots",
        spread.die.hotspots,
        packed.die.hotspots
    );
    // And the packed blob is the hotter one.
    assert!(packed.die.max > spread.die.max);
}

#[test]
fn colocation_respects_qos_of_both_tenants() {
    let server = server();
    let out = server
        .run_colocated(
            &[
                (Benchmark::Dedup, QosClass::ThreeX),
                (Benchmark::Bodytrack, QosClass::ThreeX),
            ],
            &ProposedMapping,
        )
        .expect("two 3x apps fit on one package");
    assert_eq!(out.assignments.len(), 2);
    for a in &out.assignments {
        assert!(a.qos.is_met_by(a.profile.normalized_time));
    }
    // The combined map still respects the case limit at the paper
    // operating point.
    assert!(out.solution.t_case.value() < 85.0);
}
