//! Smoke test locking in the umbrella crate's public API surface: every
//! re-exported module must resolve, and the headline workflow from the
//! crate-level Quickstart must run. If a re-export is dropped or renamed,
//! this file stops compiling before any downstream user notices.

use tps::core::{MinPowerSelector, ProposedMapping, Server};
use tps::workload::{Benchmark, QosClass};

/// Each `pub use tps_* as *` in `src/lib.rs` resolves to a real crate.
#[test]
fn umbrella_reexports_resolve() {
    // Touch one item per re-exported module so the path stays load-bearing.
    let _ = tps::units::Watts::new(1.0);
    let _ = tps::floorplan::Rect::from_mm(0.0, 0.0, 1.0, 1.0);
    let _ = tps::power::CState::Poll;
    let _ = tps::workload::Benchmark::X264;
    let _ = tps::fluids::Refrigerant::R134a;
    let _ = tps::thermal::Material::silicon();
    let _ = tps::thermosyphon::Orientation::InletEast;
    let _ = tps::cooling::Chiller::default();
    let _ = tps::core::MinPowerSelector;
}

/// The Quickstart from `src/lib.rs`, run for real on a coarse grid:
/// construct `Server::xeon`, push one benchmark through `ProposedMapping`,
/// and sanity-check the outcome fields the CLI prints.
#[test]
fn quickstart_runs_end_to_end() {
    let server = Server::xeon(2.0); // 2 mm grid: fast enough for a smoke test
    let out = server
        .run(
            Benchmark::X264,
            QosClass::TwoX,
            &MinPowerSelector,
            &ProposedMapping,
        )
        .expect("quickstart pipeline runs");
    assert!(
        !out.mapping.is_empty() && out.mapping.len() <= 8,
        "mapping uses between 1 and 8 physical cores, got {:?}",
        out.mapping
    );
    assert!(
        out.profile.normalized_time <= 2.0 + 1e-9,
        "2x QoS class must keep slowdown within 2x, got {}",
        out.profile.normalized_time
    );
    assert!(
        out.breakdown.total().value() > 0.0,
        "package power must be positive"
    );
    assert!(
        out.solution.t_case > out.solution.t_sat,
        "case must run hotter than the saturated refrigerant"
    );
}
