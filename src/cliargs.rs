//! Shared command-line argument parsing for every `tps` subcommand.
//!
//! All four subcommands (`run`, `profile`, `fleet`, `sweep`) accept the
//! same grammar: positional operands plus `--flag value` and
//! `--flag=value` spellings interchangeably. [`CliArgs::parse`] validates
//! the flag names and positional count up front so each subcommand only
//! deals with typed lookups.

use std::fmt::Display;
use std::str::FromStr;

/// Parsed subcommand arguments: positionals in order plus `(flag, value)`
/// pairs (later duplicates override earlier ones, shell-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

impl CliArgs {
    /// Parses `args`, accepting both `--flag value` and `--flag=value`.
    ///
    /// `known` is the set of flag names (without `--`) the subcommand
    /// understands; `max_positionals` bounds the bare operands. Anything
    /// else is an error naming the offender and the alternatives.
    pub fn parse(args: &[String], known: &[&str], max_positionals: usize) -> Result<Self, String> {
        Self::parse_with_switches(args, known, &[], max_positionals)
    }

    /// [`parse`](Self::parse), plus bare boolean `switches`: a switch
    /// given as `--name` takes no value and reads back as `"true"`
    /// (`--name=false` still works for an explicit off).
    pub fn parse_with_switches(
        args: &[String],
        known: &[&str],
        switches: &[&str],
        max_positionals: usize,
    ) -> Result<Self, String> {
        let mut out = Self {
            positionals: Vec::new(),
            flags: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            i += 1;
            let Some(stripped) = arg.strip_prefix("--") else {
                if out.positionals.len() >= max_positionals {
                    return Err(format!("unexpected argument `{arg}`"));
                }
                out.positionals.push(arg.clone());
                continue;
            };
            let (flag, value) = match stripped.split_once('=') {
                Some((f, v)) => (f.to_owned(), v.to_owned()),
                None if switches.contains(&stripped) => (stripped.to_owned(), "true".to_owned()),
                None => {
                    let value = args
                        .get(i)
                        .ok_or_else(|| format!("flag `--{stripped}` is missing its value"))?;
                    i += 1;
                    (stripped.to_owned(), value.clone())
                }
            };
            if !known.contains(&flag.as_str()) && !switches.contains(&flag.as_str()) {
                let all: Vec<&str> = known.iter().chain(switches).copied().collect();
                return Err(if all.is_empty() {
                    format!("unknown flag `--{flag}` (this subcommand takes no flags)")
                } else {
                    format!(
                        "unknown flag `--{flag}` (expected one of: --{})",
                        all.join(", --")
                    )
                });
            }
            out.flags.push((flag, value));
        }
        Ok(out)
    }

    /// The `i`-th positional operand.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The raw value of `flag`, if given (last occurrence wins).
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `flag`, or `default` when absent.
    pub fn flag_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flag(name).unwrap_or(default)
    }

    /// Parses `flag` into `T`, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Maps a parse failure to `invalid --flag value: …`.
    pub fn parsed<T>(&self, name: &str, default: T) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid --{name} value: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn both_flag_spellings_parse_identically() {
        let a = CliArgs::parse(&strs(&["--jobs", "50", "--seed=9"]), &["jobs", "seed"], 0).unwrap();
        let b = CliArgs::parse(&strs(&["--jobs=50", "--seed", "9"]), &["jobs", "seed"], 0).unwrap();
        assert_eq!(a.flag("jobs"), Some("50"));
        assert_eq!(a.flag("seed"), Some("9"));
        assert_eq!(a.flag("jobs"), b.flag("jobs"));
        assert_eq!(a.flag("seed"), b.flag("seed"));
    }

    #[test]
    fn positionals_and_flags_interleave() {
        let a = CliArgs::parse(
            &strs(&["--qos=1x", "x264", "--pitch", "2.0"]),
            &["qos", "pitch"],
            1,
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("x264"));
        assert_eq!(a.positional(1), None);
        assert_eq!(a.flag("qos"), Some("1x"));
        assert_eq!(a.flag_or("pitch", "1.0"), "2.0");
        assert_eq!(a.flag_or("absent", "d"), "d");
    }

    #[test]
    fn bare_switches_need_no_value_and_read_back_true() {
        let a = CliArgs::parse_with_switches(
            &strs(&["--stats", "--jobs", "5"]),
            &["jobs"],
            &["stats"],
            0,
        )
        .unwrap();
        assert_eq!(a.flag("stats"), Some("true"));
        assert_eq!(a.parsed("stats", false), Ok(true));
        assert_eq!(a.flag("jobs"), Some("5"));

        // Explicit `=false` still turns a switch off.
        let b =
            CliArgs::parse_with_switches(&strs(&["--stats=false"]), &[], &["stats"], 0).unwrap();
        assert_eq!(b.parsed("stats", true), Ok(false));

        // Absent switch falls back to the default.
        let c = CliArgs::parse_with_switches(&strs(&[]), &[], &["stats"], 0).unwrap();
        assert_eq!(c.parsed("stats", false), Ok(false));

        // Switch names appear in the unknown-flag suggestions.
        let e = CliArgs::parse_with_switches(&strs(&["--bogus=1"]), &["jobs"], &["stats"], 0)
            .unwrap_err();
        assert!(e.contains("--stats"), "{e}");
    }

    #[test]
    fn unknown_flags_and_extra_positionals_are_rejected() {
        let e = CliArgs::parse(&strs(&["--bogus=1"]), &["jobs"], 0).unwrap_err();
        assert!(e.contains("unknown flag `--bogus`"), "{e}");
        assert!(e.contains("--jobs"), "{e}");

        let e = CliArgs::parse(&strs(&["a", "b"]), &[], 1).unwrap_err();
        assert!(e.contains("unexpected argument `b`"), "{e}");

        let e = CliArgs::parse(&strs(&["--x=1"]), &[], 0).unwrap_err();
        assert!(e.contains("takes no flags"), "{e}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = CliArgs::parse(&strs(&["--jobs"]), &["jobs"], 0).unwrap_err();
        assert!(e.contains("`--jobs` is missing its value"), "{e}");
    }

    #[test]
    fn parsed_converts_and_reports_bad_values() {
        let a = CliArgs::parse(&strs(&["--jobs=50"]), &["jobs"], 0).unwrap();
        assert_eq!(a.parsed("jobs", 10usize).unwrap(), 50);
        assert_eq!(a.parsed("seed", 42u64).unwrap(), 42);

        let a = CliArgs::parse(&strs(&["--jobs=many"]), &["jobs"], 0).unwrap();
        let e = a.parsed("jobs", 10usize).unwrap_err();
        assert!(e.contains("invalid --jobs value"), "{e}");
    }

    #[test]
    fn last_duplicate_wins() {
        let a = CliArgs::parse(&strs(&["--jobs=1", "--jobs=2"]), &["jobs"], 0).unwrap();
        assert_eq!(a.flag("jobs"), Some("2"));
    }
}
