//! **tps** — Two-Phase-cooling-aware Scheduling: a full-system reproduction
//! of *"Enhancing Two-Phase Cooling Efficiency through Thermal-Aware
//! Workload Mapping for Power-Hungry Servers"* (Iranfar, Pahlevan, Zapater,
//! Atienza — DATE 2019).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`units`] | `tps-units` | typed physical quantities |
//! | [`floorplan`] | `tps-floorplan` | Xeon E5 v4 die, grids, fields |
//! | [`power`] | `tps-power` | C-states, DVFS, uncore, power maps |
//! | [`workload`] | `tps-workload` | PARSEC profiles, configs, QoS |
//! | [`fluids`] | `tps-fluids` | refrigerants, water, correlations |
//! | [`thermal`] | `tps-thermal` | 3-D RC solver, metrics, rendering |
//! | [`thermosyphon`] | `tps-thermosyphon` | evaporator, condenser, loop, coupling |
//! | [`cooling`] | `tps-cooling` | Eq. 1, chiller COP, racks, PUE |
//! | [`core`] | `tps-core` | Algorithm 1, mapping policies, server/rack drivers |
//! | [`cluster`] | `tps-cluster` | fleet simulator: job streams, dispatchers, energy accounting |
//! | [`scenario`] | `tps-scenario` | declarative scenario specs, sweep engine, report emitters |
//!
//! # Quickstart
//!
//! ```no_run
//! use tps::core::{MinPowerSelector, ProposedMapping, Server};
//! use tps::workload::{Benchmark, QosClass};
//!
//! let server = Server::xeon(1.0); // 1 mm thermal grid
//! let outcome = server.run(
//!     Benchmark::X264,
//!     QosClass::TwoX,
//!     &MinPowerSelector,
//!     &ProposedMapping,
//! )?;
//! println!(
//!     "config {} on cores {:?}: die {}",
//!     outcome.profile.config, outcome.mapping, outcome.die
//! );
//! # Ok::<(), tps::core::RunError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/` for
//! the binaries regenerating every table and figure of the paper
//! (ARCHITECTURE.md carries the artifact index and calibration notes;
//! each binary prints its paper-vs-measured numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tps_cluster as cluster;
pub use tps_cooling as cooling;
pub use tps_core as core;
pub use tps_floorplan as floorplan;
pub use tps_fluids as fluids;
pub use tps_power as power;
pub use tps_scenario as scenario;
pub use tps_thermal as thermal;
pub use tps_thermosyphon as thermosyphon;
pub use tps_units as units;
pub use tps_workload as workload;
