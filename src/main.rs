//! `tps` — command-line front end for the two-phase-cooling scheduling
//! simulator.
//!
//! ```text
//! tps run <benchmark> [--qos 1x|2x|3x] [--policy NAME] [--selector NAME] [--pitch MM]
//! tps profile <benchmark>
//! tps fleet [--servers N] [--racks N] [--jobs N] [--seed N] [--rate R] [--demand KIND]
//!           [--control POLICY] [--trace-out DIR]
//! tps sweep <spec.toml> [--out DIR] [--threads N] [--trace-out DIR]
//! tps list
//! ```
//!
//! Every subcommand accepts both `--flag value` and `--flag=value`
//! (parsed by the shared [`cliargs::CliArgs`] helper).

mod cliargs;

use cliargs::CliArgs;
use std::path::Path;
use std::process::ExitCode;
use tps::cluster::{
    synthesize_jobs, synthesize_request_jobs, AutoscaleControl, ControlPolicy, CoolestRackFirst,
    Fleet, FleetCatalog, FleetConfig, FleetDispatcher, FleetOutcome, Job, JobMix,
    LoadSheddingControl, OutcomeCache, PlanSolver, PlannedDispatch, PlannerControl, RoundRobin,
    ServerClass, ServerPolicy, SetpointScheduler, StaticControl, TelemetryConfig,
    ThermalAwareDispatch,
};
use tps::cooling::Chiller;
use tps::core::{
    ConfigSelector, CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector,
    PackAndCapSelector, PackedMapping, ProposedMapping, Server,
};
use tps::power::CState;
use tps::scenario::Sweep;
use tps::units::{Celsius, Seconds};
use tps::workload::{
    profile_application, Benchmark, BurstyDemand, ConstantDemand, DiurnalDemand, QosClass,
    ServingDemand,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "tps — two-phase-cooling-aware thermal workload mapping\n\n\
         USAGE:\n  \
         tps run <benchmark> [--qos 1x|2x|3x] [--policy proposed|coskun|inlet|packed]\n  \
         {:14}[--selector minpower|packcap] [--pitch <mm>]\n  \
         tps profile <benchmark>   print the 48-point P/Q configuration table\n  \
         tps fleet [--servers N] [--racks N] [--jobs N] [--seed N] [--rate JOBS/S]\n  \
         {:14}[--demand constant|diurnal|bursty] [--dispatcher all|rr|coolest|thermal|planned]\n  \
         {:14}[--policy NAME] [--ambient C] [--pitch MM] [--threads N] [--shards N]\n  \
         {:14}(shards split racks into halls simulated with a deterministic merge)\n  \
         {:14}[--classes NAME[:PITCH[:INLET[:POLICY]]],...]  heterogeneous racks\n  \
         {:14}(classes cycle across racks; fields omitted inherit the fleet flags)\n  \
         {:14}[--control static|setpoint|shed|autoscale|planner] [--setpoints T:C,T:C,...] [--tick S]\n  \
         {:14}[--setpoint-grid C,C,...] [--horizon S] [--replan-ticks N]\n  \
         {:14}[--solver lp|anneal] [--anneal-iters N]  planner knobs (see docs/SCENARIOS.md)\n  \
         {:14}[--serving]  open-loop request stream with latency percentiles\n  \
         {:14}(autoscale requires --serving; steps the active set by whole racks)\n  \
         {:14}[--trace-out DIR] [--sample S]  write per-dispatcher telemetry CSVs\n  \
         {:14}[--stats]  per-dispatcher kernel timing (events/s, queue depth, arena)\n  \
         tps sweep <spec.toml> [--out DIR] [--threads N] [--trace-out DIR]\n  \
         {:14}expand a scenario spec's sweep grid, write CSV + Markdown reports\n  \
         {:14}(spec schema and cookbook: docs/SCENARIOS.md, examples: scenarios/)\n  \
         tps list                  list benchmarks, policies and selectors\n",
        "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""
    );
}

/// A `main`-style error bridge: prints `error: …` and maps to an exit code.
fn fail(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::FAILURE
}

fn parse_bench(args: &CliArgs) -> Result<Benchmark, String> {
    let name = args
        .positional(0)
        .ok_or_else(|| "missing <benchmark> argument".to_owned())?;
    name.parse::<Benchmark>().map_err(|e| e.to_string())
}

fn parse_qos(args: &CliArgs) -> Result<QosClass, String> {
    match args.flag_or("qos", "2x") {
        "1x" => Ok(QosClass::OneX),
        "2x" => Ok(QosClass::TwoX),
        "3x" => Ok(QosClass::ThreeX),
        other => Err(format!("unknown QoS class `{other}` (use 1x, 2x or 3x)")),
    }
}

fn cmd_run(raw: &[String]) -> ExitCode {
    let args = match CliArgs::parse(raw, &["qos", "policy", "selector", "pitch"], 1) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let (bench, qos) = match (parse_bench(&args), parse_qos(&args)) {
        (Ok(b), Ok(q)) => (b, q),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let policy: Box<dyn MappingPolicy> = match args.flag_or("policy", "proposed") {
        "proposed" => Box::new(ProposedMapping),
        "coskun" => Box::new(CoskunBalancing),
        "inlet" => Box::new(InletFirstMapping),
        "packed" => Box::new(PackedMapping),
        other => return fail(format!("unknown policy `{other}`")),
    };
    let selector: Box<dyn ConfigSelector> = match args.flag_or("selector", "minpower") {
        "minpower" => Box::new(MinPowerSelector),
        "packcap" => Box::new(PackAndCapSelector::default()),
        other => return fail(format!("unknown selector `{other}`")),
    };
    let pitch: f64 = match args.parsed("pitch", 1.0) {
        Ok(p) if p > 0.0 => p,
        Ok(_) => return fail("--pitch must be a positive number of millimetres"),
        Err(e) => return fail(e),
    };

    println!(
        "simulating {bench} @ {qos} QoS ({} / {})…",
        selector.name(),
        policy.name()
    );
    let server = Server::xeon(pitch);
    match server.run(bench, qos, selector.as_ref(), policy.as_ref()) {
        Ok(out) => {
            println!("configuration : {}", out.profile.config);
            println!("slowdown      : {:.2}x", out.profile.normalized_time);
            println!("idle C-state  : {}", out.idle_cstate);
            println!("mapping       : {:?}", out.mapping);
            println!("package power : {:.1}", out.breakdown.total());
            println!(
                "T_sat / T_case: {:.1} / {:.1}",
                out.solution.t_sat, out.solution.t_case
            );
            println!("die           : {}", out.die);
            println!("package       : {}", out.package);
            println!();
            print!(
                "{}",
                tps::thermal::render_ascii(out.solution.thermal.die_layer())
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_profile(raw: &[String]) -> ExitCode {
    let args = match CliArgs::parse(raw, &[], 1) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let bench = match parse_bench(&args) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    println!("{bench}: P/Q vectors (idle cores in POLL)\n");
    println!("{:>14}  {:>9}  {:>9}", "config", "power (W)", "slowdown");
    let mut rows = profile_application(bench, CState::Poll);
    rows.sort_by(|a, b| a.package_power.value().total_cmp(&b.package_power.value()));
    for row in rows {
        println!(
            "{:>14}  {:>9.1}  {:>8.2}x",
            row.config.to_string(),
            row.package_power.value(),
            row.normalized_time
        );
    }
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {b}");
    }
    println!("\npolicies:   proposed (paper), coskun [9], inlet [7], packed (scenario 3)");
    println!("selectors:  minpower (Algorithm 1), packcap [27]");
    println!("qos:        1x, 2x, 3x");
    println!(
        "dispatchers (tps fleet): rr (round-robin), coolest (coolest-rack-first), thermal, \
         planned (total-energy greedy)"
    );
    println!(
        "demand models (tps fleet): constant, diurnal, bursty (batch); --serving for requests"
    );
    println!(
        "control policies (tps fleet/sweep): static, setpoint (schedule), shed (admission), \
         autoscale (serving capacity), planner (joint placement + set-point)"
    );
    println!("scenario specs (tps sweep): scenarios/*.toml, schema in docs/SCENARIOS.md");
    ExitCode::SUCCESS
}

/// Parsed `tps fleet` arguments.
struct FleetArgs {
    servers: usize,
    racks: Option<usize>,
    jobs: usize,
    seed: u64,
    rate: f64,
    demand: String,
    dispatcher: String,
    policy: ServerPolicy,
    ambient: f64,
    pitch: f64,
    threads: usize,
    shards: usize,
    classes: Vec<ServerClass>,
    control: ControlSpec,
    trace_out: Option<String>,
    sample: f64,
    stats: bool,
    serving: bool,
}

/// Parses a `--classes` entry list: `NAME[:PITCH[:INLET[:POLICY]]]`,
/// comma-separated. Omitted fields inherit the fleet-wide flags.
fn parse_classes(raw: &str) -> Result<Vec<ServerClass>, String> {
    let mut classes: Vec<ServerClass> = Vec::new();
    for entry in raw.split(',') {
        let mut fields = entry.split(':');
        let name = fields.next().unwrap_or("").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!(
                "bad --classes entry `{entry}` (expected NAME[:PITCH[:INLET[:POLICY]]], \
                 name of letters, digits and `_`)"
            ));
        }
        if classes.iter().any(|c| c.name == name) {
            return Err(format!("duplicate --classes name `{name}`"));
        }
        let mut class = ServerClass::new(name);
        if let Some(pitch) = fields.next().filter(|s| !s.trim().is_empty()) {
            let p: f64 = pitch
                .trim()
                .parse()
                .map_err(|e| format!("bad --classes pitch `{pitch}`: {e}"))?;
            if !(p > 0.0 && p.is_finite()) {
                return Err(format!("--classes pitch `{pitch}` must be positive"));
            }
            class.grid_pitch_mm = Some(p);
        }
        if let Some(inlet) = fields.next().filter(|s| !s.trim().is_empty()) {
            let t: f64 = inlet
                .trim()
                .parse()
                .map_err(|e| format!("bad --classes inlet `{inlet}`: {e}"))?;
            if !(5.0..=60.0).contains(&t) {
                return Err(format!(
                    "--classes inlet `{inlet}` outside the 5..=60 °C chiller envelope"
                ));
            }
            class.water_inlet_c = Some(t);
        }
        if let Some(policy) = fields.next().filter(|s| !s.trim().is_empty()) {
            class.policy = Some(match policy.trim() {
                "proposed" => ServerPolicy::Proposed,
                "coskun" => ServerPolicy::Coskun,
                "inlet" => ServerPolicy::InletFirst,
                "packed" => ServerPolicy::Packed,
                other => return Err(format!("unknown --classes policy `{other}`")),
            });
        }
        if let Some(extra) = fields.next() {
            return Err(format!("trailing `:{extra}` in --classes entry `{entry}`"));
        }
        classes.push(class);
    }
    Ok(classes)
}

/// Which control policy `tps fleet` runs (policies can be stateful, so
/// each dispatcher run instantiates a fresh one from this spec).
enum ControlSpec {
    Static,
    Setpoint(Vec<(Seconds, Celsius)>),
    Shed {
        tick: f64,
    },
    Autoscale {
        tick: f64,
    },
    Planner {
        tick: f64,
        horizon: f64,
        replan_ticks: usize,
        grid: Vec<f64>,
        anneal_iters: usize,
        solver: PlanSolver,
    },
}

impl ControlSpec {
    /// `rack_step` is the fleet's servers-per-rack: activation is
    /// rack-granular, so the autoscaler steps (and floors) at whole racks.
    fn instantiate(&self, rack_step: usize) -> Box<dyn ControlPolicy> {
        match self {
            ControlSpec::Static => Box::new(StaticControl),
            ControlSpec::Setpoint(program) => Box::new(SetpointScheduler::new(program.clone())),
            ControlSpec::Shed { tick } => {
                Box::new(LoadSheddingControl::new(Seconds::new(*tick), 8, 2))
            }
            ControlSpec::Autoscale { tick } => Box::new(AutoscaleControl::new(
                Seconds::new(*tick),
                rack_step,
                rack_step,
                2.0,
                0.25,
                Seconds::new(10.0),
            )),
            ControlSpec::Planner {
                tick,
                horizon,
                replan_ticks,
                grid,
                anneal_iters,
                solver,
            } => Box::new(PlannerControl::new(
                Seconds::new(*tick),
                Seconds::new(*horizon),
                *replan_ticks,
                grid.clone(),
                *anneal_iters,
                *solver,
            )),
        }
    }
}

/// Parses `--setpoint-grid C,C,...` into the planner's candidate list.
fn parse_setpoint_grid(raw: &str) -> Result<Vec<f64>, String> {
    let mut grid = Vec::new();
    for entry in raw.split(',') {
        let c: f64 = entry
            .trim()
            .parse()
            .map_err(|e| format!("bad --setpoint-grid entry `{entry}`: {e}"))?;
        if !c.is_finite() {
            return Err(format!("--setpoint-grid entry `{entry}` must be finite"));
        }
        grid.push(c);
    }
    if grid.is_empty() {
        return Err("--setpoint-grid needs at least one temperature".to_owned());
    }
    Ok(grid)
}

/// Parses `--setpoints T:C,T:C,...` into a set-point program.
fn parse_setpoints(raw: &str) -> Result<Vec<(Seconds, Celsius)>, String> {
    let mut program = Vec::new();
    for entry in raw.split(',') {
        let Some((t, c)) = entry.split_once(':') else {
            return Err(format!(
                "bad --setpoints entry `{entry}` (expected TIME:CELSIUS, e.g. 300:45)"
            ));
        };
        let t: f64 = t
            .trim()
            .parse()
            .map_err(|e| format!("bad --setpoints time `{t}`: {e}"))?;
        let c: f64 = c
            .trim()
            .parse()
            .map_err(|e| format!("bad --setpoints temperature `{c}`: {e}"))?;
        if !(t >= 0.0 && t.is_finite() && c.is_finite()) {
            return Err(format!("--setpoints entry `{entry}` out of range"));
        }
        program.push((Seconds::new(t), Celsius::new(c)));
    }
    if program.is_empty() {
        return Err("--setpoints needs at least one TIME:CELSIUS entry".to_owned());
    }
    if program.windows(2).any(|w| w[0].0.value() >= w[1].0.value()) {
        return Err("--setpoints times must be strictly ascending".to_owned());
    }
    Ok(program)
}

fn parse_fleet_args(raw: &[String]) -> Result<FleetArgs, String> {
    let args = CliArgs::parse_with_switches(
        raw,
        &[
            "servers",
            "racks",
            "jobs",
            "seed",
            "rate",
            "demand",
            "dispatcher",
            "policy",
            "ambient",
            "pitch",
            "threads",
            "shards",
            "classes",
            "control",
            "setpoints",
            "tick",
            "horizon",
            "replan-ticks",
            "setpoint-grid",
            "anneal-iters",
            "solver",
            "trace-out",
            "sample",
        ],
        &["stats", "serving"],
        0,
    )?;
    let serving: bool = args.parsed("serving", false)?;
    let control_name = args.flag_or("control", "static");
    // Mirror the spec layer: a policy-specific flag under the wrong
    // policy is an error, never silently dropped.
    if args.flag("setpoints").is_some() && control_name != "setpoint" {
        return Err(format!(
            "--setpoints only applies to --control setpoint (got --control {control_name})"
        ));
    }
    if args.flag("tick").is_some() && !matches!(control_name, "shed" | "autoscale" | "planner") {
        return Err(format!(
            "--tick only applies to --control shed, autoscale or planner \
             (got --control {control_name})"
        ));
    }
    for flag in [
        "horizon",
        "replan-ticks",
        "setpoint-grid",
        "anneal-iters",
        "solver",
    ] {
        if args.flag(flag).is_some() && control_name != "planner" {
            return Err(format!(
                "--{flag} only applies to --control planner (got --control {control_name})"
            ));
        }
    }
    if args.flag("sample").is_some() && args.flag("trace-out").is_none() {
        return Err("--sample only applies together with --trace-out DIR".to_owned());
    }
    if args.flag("demand").is_some() && serving {
        return Err(
            "--demand selects a batch demand model; --serving always runs the \
             diurnal + flash-crowd request stream"
                .to_owned(),
        );
    }
    let control = match control_name {
        "static" => ControlSpec::Static,
        "setpoint" => {
            let raw = args
                .flag("setpoints")
                .ok_or_else(|| "--control setpoint needs --setpoints T:C,T:C,...".to_owned())?;
            ControlSpec::Setpoint(parse_setpoints(raw)?)
        }
        "shed" => ControlSpec::Shed {
            tick: args.parsed("tick", 60.0)?,
        },
        "autoscale" => {
            if !serving {
                return Err(
                    "--control autoscale needs --serving (it scales the active-server set \
                     against request latency)"
                        .to_owned(),
                );
            }
            ControlSpec::Autoscale {
                tick: args.parsed("tick", 30.0)?,
            }
        }
        "planner" => {
            let grid = parse_setpoint_grid(args.flag("setpoint-grid").ok_or_else(|| {
                "--control planner needs --setpoint-grid C,C,... (candidate set-points)".to_owned()
            })?)?;
            let replan_ticks: usize = args.parsed("replan-ticks", 1usize)?;
            let anneal_iters: usize = args.parsed("anneal-iters", 2_000usize)?;
            if replan_ticks == 0 || anneal_iters == 0 {
                return Err("--replan-ticks and --anneal-iters must be positive".to_owned());
            }
            ControlSpec::Planner {
                tick: args.parsed("tick", 30.0)?,
                horizon: args.parsed("horizon", 120.0)?,
                replan_ticks,
                grid,
                anneal_iters,
                solver: match args.flag_or("solver", "lp") {
                    "lp" => PlanSolver::Lp,
                    "anneal" => PlanSolver::Anneal,
                    other => {
                        return Err(format!(
                            "unknown planner solver `{other}` (use lp or anneal)"
                        ))
                    }
                },
            }
        }
        other => {
            return Err(format!(
                "unknown control policy `{other}` \
                 (use static, setpoint, shed, autoscale or planner)"
            ))
        }
    };
    let out = FleetArgs {
        servers: args.parsed("servers", 16)?,
        racks: match args.flag("racks") {
            None => None,
            Some(_) => Some(args.parsed("racks", 0usize)?),
        },
        jobs: args.parsed("jobs", 200)?,
        seed: args.parsed("seed", 42)?,
        rate: args.parsed("rate", 0.7)?,
        demand: args.flag_or("demand", "diurnal").to_owned(),
        dispatcher: args.flag_or("dispatcher", "all").to_owned(),
        policy: match args.flag_or("policy", "proposed") {
            "proposed" => ServerPolicy::Proposed,
            "coskun" => ServerPolicy::Coskun,
            "inlet" => ServerPolicy::InletFirst,
            "packed" => ServerPolicy::Packed,
            other => return Err(format!("unknown policy `{other}`")),
        },
        ambient: args.parsed("ambient", 70.0)?,
        pitch: args.parsed("pitch", 2.0)?,
        threads: args.parsed("threads", FleetConfig::default_threads())?,
        shards: args.parsed("shards", 1usize)?,
        classes: match args.flag("classes") {
            None => Vec::new(),
            Some(raw) => parse_classes(raw)?,
        },
        control,
        trace_out: args.flag("trace-out").map(str::to_owned),
        sample: args.parsed("sample", 30.0)?,
        stats: args.parsed("stats", false)?,
        serving,
    };
    if out.servers == 0
        || out.jobs == 0
        || out.racks == Some(0)
        || out.rate <= 0.0
        || out.pitch <= 0.0
        || out.threads == 0
        || out.shards == 0
        || out.sample <= 0.0
    {
        return Err(
            "--servers, --racks, --jobs, --rate, --pitch, --threads, --shards and --sample \
             must be positive"
                .to_owned(),
        );
    }
    match &out.control {
        ControlSpec::Shed { tick } | ControlSpec::Autoscale { tick } if *tick <= 0.0 => {
            return Err("--tick must be positive".to_owned());
        }
        ControlSpec::Planner { tick, horizon, .. } if *tick <= 0.0 || *horizon <= 0.0 => {
            return Err("--tick and --horizon must be positive".to_owned());
        }
        _ => {}
    }
    Ok(out)
}

fn synthesize_fleet_jobs(a: &FleetArgs) -> Result<Vec<Job>, String> {
    if a.serving {
        // Peak `--rate` requests/s over a 10-minute diurnal cycle with
        // 2.5× flash crowds, 2 s mean service time — the CLI counterpart
        // of `scenarios/serving_diurnal.toml`.
        let demand = ServingDemand::new(
            a.rate * 0.2,
            a.rate,
            Seconds::new(600.0),
            2.5,
            Seconds::new(60.0),
            Seconds::new(420.0),
            a.seed,
        );
        return Ok(synthesize_request_jobs(
            a.jobs,
            &demand,
            Seconds::new(2.0),
            a.seed,
        ));
    }
    let mix = JobMix::default();
    match a.demand.as_str() {
        "constant" => Ok(synthesize_jobs(
            a.jobs,
            &ConstantDemand::new(a.rate),
            mix,
            a.seed,
        )),
        "diurnal" => Ok(synthesize_jobs(
            a.jobs,
            &DiurnalDemand::new(a.rate * 0.2, a.rate, Seconds::new(600.0)),
            mix,
            a.seed,
        )),
        "bursty" => Ok(synthesize_jobs(
            a.jobs,
            &BurstyDemand::new(
                a.rate * 0.2,
                a.rate,
                Seconds::new(60.0),
                Seconds::new(240.0),
                a.seed,
            ),
            mix,
            a.seed,
        )),
        other => Err(format!("unknown demand model `{other}`")),
    }
}

fn cmd_fleet(raw: &[String]) -> ExitCode {
    let a = match parse_fleet_args(raw) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let racks = a.racks.unwrap_or(match a.servers {
        0..=1 => 1,
        2..=15 => 2,
        n => n / 8,
    });
    let servers_per_rack = a.servers.div_ceil(racks);
    if racks * servers_per_rack != a.servers {
        println!(
            "note: rounding {} servers up to {} ({racks} racks × {servers_per_rack}) so every rack is full",
            a.servers,
            racks * servers_per_rack
        );
    }
    let jobs = match synthesize_fleet_jobs(&a) {
        Ok(j) => j,
        Err(e) => return fail(e),
    };

    let mut dispatchers: Vec<Box<dyn FleetDispatcher>> = Vec::new();
    match a.dispatcher.as_str() {
        "all" => {
            dispatchers.push(Box::new(RoundRobin::default()));
            dispatchers.push(Box::new(CoolestRackFirst));
            dispatchers.push(Box::new(ThermalAwareDispatch::default()));
        }
        "rr" | "round-robin" => dispatchers.push(Box::new(RoundRobin::default())),
        "coolest" | "coolest-rack-first" => dispatchers.push(Box::new(CoolestRackFirst)),
        "thermal" | "thermal-aware" => dispatchers.push(Box::new(ThermalAwareDispatch::default())),
        "planned" => dispatchers.push(Box::new(PlannedDispatch)),
        other => {
            return fail(format!(
                "unknown dispatcher `{other}` (use all, rr, coolest, thermal or planned)"
            ))
        }
    }

    let shards = if a.shards > racks {
        eprintln!(
            "warning: --shards {} exceeds {racks} racks; clamping to {racks} halls",
            a.shards
        );
        racks
    } else {
        a.shards
    };

    let mut config = FleetConfig::new(racks, servers_per_rack);
    config.grid_pitch_mm = a.pitch;
    config.chiller = Chiller::new(Celsius::new(a.ambient));
    config.policy = a.policy;
    config.threads = a.threads;
    config.shards = shards;
    config.serving = a.serving;
    if !a.classes.is_empty() {
        // Classes cycle across racks: rack r is entirely class r mod k.
        let k = a.classes.len();
        config.catalog =
            FleetCatalog::new(a.classes.clone()).assign((0..racks).map(|r| vec![r % k]).collect());
    }
    let fleet = Fleet::new(config);

    println!(
        "fleet: {racks} racks × {servers_per_rack} servers, {} jobs ({} demand, rate {} jobs/s, seed {})",
        jobs.len(),
        if a.serving { "serving" } else { &a.demand },
        a.rate,
        a.seed
    );
    if !a.classes.is_empty() {
        let summary: Vec<String> = a
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{} (pitch {:.1} mm, inlet {:.1} °C, {})",
                    c.name,
                    c.grid_pitch_mm.unwrap_or(a.pitch),
                    c.water_inlet_c
                        .unwrap_or_else(|| fleet.config().op.water_inlet().value()),
                    c.policy.unwrap_or(a.policy).spec_name(),
                )
            })
            .collect();
        println!("classes: {} — cycled across racks", summary.join(", "));
    }
    println!(
        "scenario: heat-recovery loop at {:.1} °C, water inlet {:.1}, {:.1} mm grid, {} warm-up threads{}",
        a.ambient,
        fleet.config().op.water_inlet(),
        a.pitch,
        a.threads,
        if shards > 1 {
            format!(", {shards} halls")
        } else {
            String::new()
        }
    );
    println!(
        "control: {}{}\n",
        a.control.instantiate(servers_per_rack).name(),
        match &a.trace_out {
            Some(dir) => format!(", telemetry every {:.0} s → {dir}/", a.sample),
            None => String::new(),
        }
    );

    let telemetry = a.trace_out.as_ref().map(|_| TelemetryConfig {
        sample_interval: Seconds::new(a.sample),
        capacity: TelemetryConfig::default().capacity,
    });
    if let Some(dir) = &a.trace_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("cannot create `{dir}`: {e}"));
        }
    }
    let cache = OutcomeCache::new();
    let mut outcomes: Vec<FleetOutcome> = Vec::new();
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9} {:>9}",
        "dispatcher", "IT kWh", "cool kWh", "tot kWh", "PUE", "viol", "shed", "wait s", "span s"
    );
    let mut peak_queue_depth = 0usize;
    let mut arena_high_water = 0usize;
    for mut d in dispatchers {
        let mut control = a.control.instantiate(servers_per_rack);
        let started = std::time::Instant::now();
        match fleet.simulate_with(
            &jobs,
            d.as_mut(),
            control.as_mut(),
            telemetry.as_ref(),
            &cache,
        ) {
            Ok(result) => {
                let elapsed = started.elapsed().as_secs_f64();
                peak_queue_depth = peak_queue_depth.max(result.stats.peak_queue_depth);
                arena_high_water = arena_high_water.max(result.stats.arena_high_water);
                let out = result.outcome;
                println!(
                    "{:<20} {:>9.3} {:>9.3} {:>9.3} {:>7.3} {:>6} {:>6} {:>9.1} {:>9.1}",
                    out.dispatcher,
                    out.it_energy.to_kwh(),
                    out.cooling_energy.to_kwh(),
                    out.total_energy().to_kwh(),
                    out.pue(),
                    out.violations,
                    out.shed,
                    out.mean_wait.value(),
                    out.makespan.value()
                );
                if a.stats {
                    println!(
                        "  kernel: {} events in {:.3} s ({:.2} M events/s), peak queue depth {}, arena high-water {}",
                        result.stats.events,
                        elapsed,
                        result.stats.events as f64 / elapsed.max(1e-9) / 1e6,
                        result.stats.peak_queue_depth,
                        result.stats.arena_high_water,
                    );
                    println!(
                        "  cache: {} table hits, {} miss solves, {} lock acquisitions",
                        result.stats.table_hits,
                        result.stats.miss_solves,
                        result.stats.lock_acquisitions,
                    );
                    if result.stats.halls.len() > 1 {
                        for h in &result.stats.halls {
                            println!(
                                "  hall {}: racks {}..{}, {} placements, {} expiries",
                                h.hall, h.rack_lo, h.rack_hi, h.placements, h.expiries
                            );
                        }
                    }
                }
                if let Some(s) = &out.serving {
                    println!(
                        "  serving: {} requests, latency p50 {:.2} s / p95 {:.2} s / p99 {:.2} s, \
                         active servers mean {:.1} (min {}, max {})",
                        s.requests,
                        s.latency_p50.value(),
                        s.latency_p95.value(),
                        s.latency_p99.value(),
                        s.mean_active_servers,
                        s.min_active_servers,
                        s.max_active_servers,
                    );
                }
                if out.class_names.len() > 1 {
                    let per_class: Vec<String> = out
                        .class_names
                        .iter()
                        .enumerate()
                        .map(|(i, name)| {
                            format!(
                                "{name} {} jobs / {} viol / {:.3} kWh",
                                out.class_placements[i],
                                out.class_violations[i],
                                out.class_it_energy[i].to_kwh(),
                            )
                        })
                        .collect();
                    println!("  per class: {}", per_class.join("; "));
                }
                if let (Some(dir), Some(trace)) = (&a.trace_out, result.trace) {
                    let path = Path::new(dir).join(format!("trace_{}.csv", out.dispatcher));
                    if let Err(e) = std::fs::write(&path, trace.to_csv()) {
                        return fail(format!("cannot write `{}`: {e}", path.display()));
                    }
                    if trace.dropped() > 0 {
                        println!(
                            "  note: trace ring dropped {} oldest samples (raise [telemetry] capacity)",
                            trace.dropped()
                        );
                    }
                }
                outcomes.push(out);
            }
            Err(e) => return fail(e),
        }
    }
    println!(
        "\nserver-physics cache: {} distinct solves, {} replays ({} table hits, {} miss solves, {} locks) — event queue: peak depth {}, arena high-water {}",
        cache.solves(),
        cache.hits(),
        cache.table_hits(),
        cache.miss_solves(),
        cache.lock_acquisitions(),
        peak_queue_depth,
        arena_high_water,
    );
    let find = |name: &str| outcomes.iter().find(|o| o.dispatcher == name);
    if let (Some(rr), Some(ta)) = (find("round-robin"), find("thermal-aware")) {
        let saved = 1.0 - ta.total_energy() / rr.total_energy();
        println!(
            "thermal-aware vs round-robin: {:+.1} % total energy ({:+.1} % cooling)",
            -100.0 * saved,
            -100.0 * (1.0 - ta.cooling_energy / rr.cooling_energy)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(raw: &[String]) -> ExitCode {
    let args = match CliArgs::parse(raw, &["out", "threads", "trace-out"], 1) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let Some(spec_path) = args.positional(0) else {
        return fail("missing <spec.toml> argument (shipped specs live under scenarios/)");
    };
    let threads = match args.parsed("threads", FleetConfig::default_threads()) {
        Ok(n) if n > 0 => n,
        Ok(_) => return fail("--threads must be positive"),
        Err(e) => return fail(e),
    };
    let out_dir = Path::new(args.flag_or("out", "target/sweep")).to_owned();

    let source = match std::fs::read_to_string(spec_path) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot read `{spec_path}`: {e}")),
    };
    let stem = Path::new(spec_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("sweep")
        .to_owned();
    let sweep = match Sweep::parse(&source, &stem) {
        Ok(s) => s,
        Err(e) => return fail(format!("{spec_path}: {e}")),
    };

    println!(
        "sweep `{}`: {} axis/axes → {} grid point(s), {} worker thread(s)",
        sweep.name,
        sweep.axes.len(),
        sweep.grid_len(),
        threads
    );
    for axis in &sweep.axes {
        let values: Vec<String> = axis
            .values
            .iter()
            .map(tps::scenario::toml::Value::display_compact)
            .collect();
        println!("  {} = [{}]", axis.path, values.join(", "));
    }
    let trace_out = args.flag("trace-out").map(str::to_owned);
    let started = std::time::Instant::now();
    let (report, traces) = if trace_out.is_some() {
        match sweep.run_traced(threads) {
            Ok((r, t)) => (r, t),
            Err(e) => return fail(format!("{spec_path}: {e}")),
        }
    } else {
        match sweep.run(threads) {
            Ok(r) => (r, Vec::new()),
            Err(e) => return fail(format!("{spec_path}: {e}")),
        }
    };
    println!(
        "executed {} grid point(s) in {:.2} s — server-physics cache: {} distinct solves, {} replays ({} table hits, {} miss solves, {} locks) — event queue: peak depth {}, arena high-water {}\n",
        report.rows.len(),
        started.elapsed().as_secs_f64(),
        report.cache_solves,
        report.cache_hits,
        report.table_hits,
        report.miss_solves,
        report.lock_acquisitions,
        report.peak_queue_depth,
        report.arena_high_water,
    );
    print!("{}", report.to_markdown());

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(format!("cannot create `{}`: {e}", out_dir.display()));
    }
    let csv_path = out_dir.join(format!("{stem}.csv"));
    let md_path = out_dir.join(format!("{stem}.md"));
    if let Err(e) = std::fs::write(&csv_path, report.to_csv()) {
        return fail(format!("cannot write `{}`: {e}", csv_path.display()));
    }
    if let Err(e) = std::fs::write(&md_path, report.to_markdown()) {
        return fail(format!("cannot write `{}`: {e}", md_path.display()));
    }
    println!(
        "\nreports: {} and {}",
        csv_path.display(),
        md_path.display()
    );
    if let Some(dir) = trace_out {
        let dir = Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("cannot create `{}`: {e}", dir.display()));
        }
        for (row, trace) in report.rows.iter().zip(&traces) {
            // Grid-point names carry `.`/`=`/`,`; keep file names plain.
            let stem: String = row
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{stem}.csv"));
            if let Err(e) = std::fs::write(&path, trace.to_csv()) {
                return fail(format!("cannot write `{}`: {e}", path.display()));
            }
        }
        println!("traces: {} files under {}", traces.len(), dir.display());
    }
    ExitCode::SUCCESS
}
