//! `tps` — command-line front end for the two-phase-cooling scheduling
//! simulator.
//!
//! ```text
//! tps run <benchmark> [--qos=1x|2x|3x] [--policy=NAME] [--selector=NAME] [--pitch=MM]
//! tps profile <benchmark>
//! tps fleet [--servers N] [--racks N] [--jobs N] [--seed N] [--rate R] [--demand KIND]
//! tps list
//! ```

use std::process::ExitCode;
use tps::cluster::{
    synthesize_jobs, CoolestRackFirst, Fleet, FleetConfig, FleetDispatcher, FleetOutcome, Job,
    JobMix, OutcomeCache, RoundRobin, ServerPolicy, ThermalAwareDispatch,
};
use tps::cooling::Chiller;
use tps::core::{
    ConfigSelector, CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector,
    PackAndCapSelector, PackedMapping, ProposedMapping, Server,
};
use tps::power::CState;
use tps::units::{Celsius, Seconds};
use tps::workload::{
    profile_application, Benchmark, BurstyDemand, ConstantDemand, DiurnalDemand, QosClass,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "tps — two-phase-cooling-aware thermal workload mapping\n\n\
         USAGE:\n  \
         tps run <benchmark> [--qos=1x|2x|3x] [--policy=proposed|coskun|inlet|packed]\n  \
         {:14}[--selector=minpower|packcap] [--pitch=<mm>]\n  \
         tps profile <benchmark>   print the 48-point P/Q configuration table\n  \
         tps fleet [--servers N] [--racks N] [--jobs N] [--seed N] [--rate JOBS/S]\n  \
         {:14}[--demand constant|diurnal|bursty] [--dispatcher all|rr|coolest|thermal]\n  \
         {:14}[--policy NAME] [--ambient C] [--pitch MM] [--threads N]\n  \
         tps list                  list benchmarks, policies and selectors\n",
        "", "", ""
    );
}

fn parse_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let prefix = format!("--{name}=");
    args.iter().find_map(|a| a.strip_prefix(&prefix))
}

fn parse_bench(args: &[String]) -> Result<Benchmark, String> {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing <benchmark> argument".to_owned())?;
    name.parse::<Benchmark>().map_err(|e| e.to_string())
}

fn parse_qos(args: &[String]) -> Result<QosClass, String> {
    match parse_flag(args, "qos").unwrap_or("2x") {
        "1x" => Ok(QosClass::OneX),
        "2x" => Ok(QosClass::TwoX),
        "3x" => Ok(QosClass::ThreeX),
        other => Err(format!("unknown QoS class `{other}` (use 1x, 2x or 3x)")),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (bench, qos) = match (parse_bench(args), parse_qos(args)) {
        (Ok(b), Ok(q)) => (b, q),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy: Box<dyn MappingPolicy> = match parse_flag(args, "policy").unwrap_or("proposed") {
        "proposed" => Box::new(ProposedMapping),
        "coskun" => Box::new(CoskunBalancing),
        "inlet" => Box::new(InletFirstMapping),
        "packed" => Box::new(PackedMapping),
        other => {
            eprintln!("error: unknown policy `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let selector: Box<dyn ConfigSelector> = match parse_flag(args, "selector").unwrap_or("minpower")
    {
        "minpower" => Box::new(MinPowerSelector),
        "packcap" => Box::new(PackAndCapSelector::default()),
        other => {
            eprintln!("error: unknown selector `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let pitch: f64 = match parse_flag(args, "pitch").unwrap_or("1.0").parse() {
        Ok(p) if p > 0.0 => p,
        _ => {
            eprintln!("error: --pitch must be a positive number of millimetres");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "simulating {bench} @ {qos} QoS ({} / {})…",
        selector.name(),
        policy.name()
    );
    let server = Server::xeon(pitch);
    match server.run(bench, qos, selector.as_ref(), policy.as_ref()) {
        Ok(out) => {
            println!("configuration : {}", out.profile.config);
            println!("slowdown      : {:.2}x", out.profile.normalized_time);
            println!("idle C-state  : {}", out.idle_cstate);
            println!("mapping       : {:?}", out.mapping);
            println!("package power : {:.1}", out.breakdown.total());
            println!(
                "T_sat / T_case: {:.1} / {:.1}",
                out.solution.t_sat, out.solution.t_case
            );
            println!("die           : {}", out.die);
            println!("package       : {}", out.package);
            println!();
            print!(
                "{}",
                tps::thermal::render_ascii(out.solution.thermal.die_layer())
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let bench = match parse_bench(args) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{bench}: P/Q vectors (idle cores in POLL)\n");
    println!("{:>14}  {:>9}  {:>9}", "config", "power (W)", "slowdown");
    let mut rows = profile_application(bench, CState::Poll);
    rows.sort_by(|a, b| a.package_power.value().total_cmp(&b.package_power.value()));
    for row in rows {
        println!(
            "{:>14}  {:>9.1}  {:>8.2}x",
            row.config.to_string(),
            row.package_power.value(),
            row.normalized_time
        );
    }
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {b}");
    }
    println!("\npolicies:   proposed (paper), coskun [9], inlet [7], packed (scenario 3)");
    println!("selectors:  minpower (Algorithm 1), packcap [27]");
    println!("qos:        1x, 2x, 3x");
    println!("dispatchers (tps fleet): rr (round-robin), coolest (coolest-rack-first), thermal");
    println!("demand models (tps fleet): constant, diurnal, bursty");
    ExitCode::SUCCESS
}

/// Parsed `tps fleet` arguments.
struct FleetArgs {
    servers: usize,
    racks: Option<usize>,
    jobs: usize,
    seed: u64,
    rate: f64,
    demand: String,
    dispatcher: String,
    policy: ServerPolicy,
    ambient: f64,
    pitch: f64,
    threads: usize,
}

/// Accepts both `--flag=value` and `--flag value` spellings.
fn parse_fleet_args(args: &[String]) -> Result<FleetArgs, String> {
    let mut out = FleetArgs {
        servers: 16,
        racks: None,
        jobs: 200,
        seed: 42,
        rate: 0.7,
        demand: "diurnal".to_owned(),
        dispatcher: "all".to_owned(),
        policy: ServerPolicy::Proposed,
        ambient: 70.0,
        pitch: 2.0,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
    };
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_owned(), v.to_owned()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("flag `{f}` is missing its value"))?;
                (f, v.clone())
            }
        };
        i += 1;
        let flag = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{flag}`"))?;
        let bad = |e: &dyn std::fmt::Display| format!("invalid --{flag} value: {e}");
        match flag {
            "servers" => out.servers = value.parse().map_err(|e| bad(&e))?,
            "racks" => out.racks = Some(value.parse().map_err(|e| bad(&e))?),
            "jobs" => out.jobs = value.parse().map_err(|e| bad(&e))?,
            "seed" => out.seed = value.parse().map_err(|e| bad(&e))?,
            "rate" => out.rate = value.parse().map_err(|e| bad(&e))?,
            "demand" => out.demand = value,
            "dispatcher" => out.dispatcher = value,
            "ambient" => out.ambient = value.parse().map_err(|e| bad(&e))?,
            "pitch" => out.pitch = value.parse().map_err(|e| bad(&e))?,
            "threads" => out.threads = value.parse().map_err(|e| bad(&e))?,
            "policy" => {
                out.policy = match value.as_str() {
                    "proposed" => ServerPolicy::Proposed,
                    "coskun" => ServerPolicy::Coskun,
                    "inlet" => ServerPolicy::InletFirst,
                    "packed" => ServerPolicy::Packed,
                    other => return Err(format!("unknown policy `{other}`")),
                }
            }
            other => return Err(format!("unknown flag `--{other}`")),
        }
    }
    if out.servers == 0
        || out.jobs == 0
        || out.racks == Some(0)
        || out.rate <= 0.0
        || out.pitch <= 0.0
        || out.threads == 0
    {
        return Err(
            "--servers, --racks, --jobs, --rate, --pitch and --threads must be positive".to_owned(),
        );
    }
    Ok(out)
}

fn synthesize_fleet_jobs(a: &FleetArgs) -> Result<Vec<Job>, String> {
    let mix = JobMix::default();
    match a.demand.as_str() {
        "constant" => Ok(synthesize_jobs(
            a.jobs,
            &ConstantDemand::new(a.rate),
            mix,
            a.seed,
        )),
        "diurnal" => Ok(synthesize_jobs(
            a.jobs,
            &DiurnalDemand::new(a.rate * 0.2, a.rate, Seconds::new(600.0)),
            mix,
            a.seed,
        )),
        "bursty" => Ok(synthesize_jobs(
            a.jobs,
            &BurstyDemand::new(
                a.rate * 0.2,
                a.rate,
                Seconds::new(60.0),
                Seconds::new(240.0),
                a.seed,
            ),
            mix,
            a.seed,
        )),
        other => Err(format!("unknown demand model `{other}`")),
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let a = match parse_fleet_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let racks = a.racks.unwrap_or(match a.servers {
        0..=1 => 1,
        2..=15 => 2,
        n => n / 8,
    });
    let servers_per_rack = a.servers.div_ceil(racks);
    if racks * servers_per_rack != a.servers {
        println!(
            "note: rounding {} servers up to {} ({racks} racks × {servers_per_rack}) so every rack is full",
            a.servers,
            racks * servers_per_rack
        );
    }
    let jobs = match synthesize_fleet_jobs(&a) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut dispatchers: Vec<Box<dyn FleetDispatcher>> = Vec::new();
    match a.dispatcher.as_str() {
        "all" => {
            dispatchers.push(Box::new(RoundRobin::default()));
            dispatchers.push(Box::new(CoolestRackFirst));
            dispatchers.push(Box::new(ThermalAwareDispatch));
        }
        "rr" => dispatchers.push(Box::new(RoundRobin::default())),
        "coolest" => dispatchers.push(Box::new(CoolestRackFirst)),
        "thermal" => dispatchers.push(Box::new(ThermalAwareDispatch)),
        other => {
            eprintln!("error: unknown dispatcher `{other}` (use all, rr, coolest or thermal)");
            return ExitCode::FAILURE;
        }
    }

    let mut config = FleetConfig::new(racks, servers_per_rack);
    config.grid_pitch_mm = a.pitch;
    config.chiller = Chiller::new(Celsius::new(a.ambient));
    config.policy = a.policy;
    config.threads = a.threads;
    let fleet = Fleet::new(config);

    println!(
        "fleet: {racks} racks × {servers_per_rack} servers, {} jobs ({} demand, rate {} jobs/s, seed {})",
        jobs.len(),
        a.demand,
        a.rate,
        a.seed
    );
    println!(
        "scenario: heat-recovery loop at {:.1} °C, water inlet {:.1}, {:.1} mm grid, {} warm-up threads\n",
        a.ambient,
        fleet.config().op.water_inlet(),
        a.pitch,
        a.threads
    );

    let cache = OutcomeCache::new();
    let mut outcomes: Vec<FleetOutcome> = Vec::new();
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>7} {:>6} {:>9} {:>9}",
        "dispatcher", "IT kWh", "cool kWh", "tot kWh", "PUE", "viol", "wait s", "span s"
    );
    for mut d in dispatchers {
        match fleet.simulate(&jobs, d.as_mut(), &cache) {
            Ok(out) => {
                println!(
                    "{:<20} {:>9.3} {:>9.3} {:>9.3} {:>7.3} {:>6} {:>9.1} {:>9.1}",
                    out.dispatcher,
                    out.it_energy.to_kwh(),
                    out.cooling_energy.to_kwh(),
                    out.total_energy().to_kwh(),
                    out.pue(),
                    out.violations,
                    out.mean_wait.value(),
                    out.makespan.value()
                );
                outcomes.push(out);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "\nserver-physics cache: {} distinct solves, {} replays",
        cache.solves(),
        cache.hits()
    );
    let find = |name: &str| outcomes.iter().find(|o| o.dispatcher == name);
    if let (Some(rr), Some(ta)) = (find("round-robin"), find("thermal-aware")) {
        let saved = 1.0 - ta.total_energy() / rr.total_energy();
        println!(
            "thermal-aware vs round-robin: {:+.1} % total energy ({:+.1} % cooling)",
            -100.0 * saved,
            -100.0 * (1.0 - ta.cooling_energy / rr.cooling_energy)
        );
    }
    ExitCode::SUCCESS
}
