//! `tps` — command-line front end for the two-phase-cooling scheduling
//! simulator.
//!
//! ```text
//! tps run <benchmark> [--qos=1x|2x|3x] [--policy=NAME] [--selector=NAME] [--pitch=MM]
//! tps profile <benchmark>
//! tps list
//! ```

use std::process::ExitCode;
use tps::core::{
    ConfigSelector, CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector,
    PackAndCapSelector, PackedMapping, ProposedMapping, Server,
};
use tps::power::CState;
use tps::workload::{profile_application, Benchmark, QosClass};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "tps — two-phase-cooling-aware thermal workload mapping\n\n\
         USAGE:\n  \
         tps run <benchmark> [--qos=1x|2x|3x] [--policy=proposed|coskun|inlet|packed]\n  \
         {:14}[--selector=minpower|packcap] [--pitch=<mm>]\n  \
         tps profile <benchmark>   print the 48-point P/Q configuration table\n  \
         tps list                  list benchmarks, policies and selectors\n",
        ""
    );
}

fn parse_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let prefix = format!("--{name}=");
    args.iter().find_map(|a| a.strip_prefix(&prefix))
}

fn parse_bench(args: &[String]) -> Result<Benchmark, String> {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing <benchmark> argument".to_owned())?;
    name.parse::<Benchmark>().map_err(|e| e.to_string())
}

fn parse_qos(args: &[String]) -> Result<QosClass, String> {
    match parse_flag(args, "qos").unwrap_or("2x") {
        "1x" => Ok(QosClass::OneX),
        "2x" => Ok(QosClass::TwoX),
        "3x" => Ok(QosClass::ThreeX),
        other => Err(format!("unknown QoS class `{other}` (use 1x, 2x or 3x)")),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (bench, qos) = match (parse_bench(args), parse_qos(args)) {
        (Ok(b), Ok(q)) => (b, q),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy: Box<dyn MappingPolicy> = match parse_flag(args, "policy").unwrap_or("proposed") {
        "proposed" => Box::new(ProposedMapping),
        "coskun" => Box::new(CoskunBalancing),
        "inlet" => Box::new(InletFirstMapping),
        "packed" => Box::new(PackedMapping),
        other => {
            eprintln!("error: unknown policy `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let selector: Box<dyn ConfigSelector> = match parse_flag(args, "selector").unwrap_or("minpower")
    {
        "minpower" => Box::new(MinPowerSelector),
        "packcap" => Box::new(PackAndCapSelector::default()),
        other => {
            eprintln!("error: unknown selector `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let pitch: f64 = match parse_flag(args, "pitch").unwrap_or("1.0").parse() {
        Ok(p) if p > 0.0 => p,
        _ => {
            eprintln!("error: --pitch must be a positive number of millimetres");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "simulating {bench} @ {qos} QoS ({} / {})…",
        selector.name(),
        policy.name()
    );
    let server = Server::xeon(pitch);
    match server.run(bench, qos, selector.as_ref(), policy.as_ref()) {
        Ok(out) => {
            println!("configuration : {}", out.profile.config);
            println!("slowdown      : {:.2}x", out.profile.normalized_time);
            println!("idle C-state  : {}", out.idle_cstate);
            println!("mapping       : {:?}", out.mapping);
            println!("package power : {:.1}", out.breakdown.total());
            println!(
                "T_sat / T_case: {:.1} / {:.1}",
                out.solution.t_sat, out.solution.t_case
            );
            println!("die           : {}", out.die);
            println!("package       : {}", out.package);
            println!();
            print!(
                "{}",
                tps::thermal::render_ascii(out.solution.thermal.die_layer())
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let bench = match parse_bench(args) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{bench}: P/Q vectors (idle cores in POLL)\n");
    println!("{:>14}  {:>9}  {:>9}", "config", "power (W)", "slowdown");
    let mut rows = profile_application(bench, CState::Poll);
    rows.sort_by(|a, b| a.package_power.value().total_cmp(&b.package_power.value()));
    for row in rows {
        println!(
            "{:>14}  {:>9.1}  {:>8.2}x",
            row.config.to_string(),
            row.package_power.value(),
            row.normalized_time
        );
    }
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {b}");
    }
    println!("\npolicies:   proposed (paper), coskun [9], inlet [7], packed (scenario 3)");
    println!("selectors:  minpower (Algorithm 1), packcap [27]");
    println!("qos:        1x, 2x, 3x");
    ExitCode::SUCCESS
}
