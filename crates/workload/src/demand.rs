//! Fleet-level demand generators: time-varying job-arrival intensity.
//!
//! The fleet simulator (`tps-cluster`) dispatches a *stream* of jobs, and
//! where the energy is won or lost depends on how that stream varies over
//! time: data-center load follows day/night cycles and exhibits short
//! correlated bursts. A [`DemandModel`] maps simulation time to an arrival
//! *rate* (jobs per second); [`synthesize_arrivals`] turns a model into a
//! concrete, reproducible arrival sequence by Poisson thinning.
//!
//! ```
//! use tps_units::Seconds;
//! use tps_workload::{synthesize_arrivals, DemandModel, DiurnalDemand};
//!
//! let day = DiurnalDemand::new(0.2, 1.0, Seconds::new(86_400.0));
//! assert!(day.rate_at(Seconds::new(43_200.0)) > day.rate_at(Seconds::ZERO));
//! let arrivals = synthesize_arrivals(&day, 100, 42);
//! assert_eq!(arrivals.len(), 100);
//! assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tps_units::Seconds;

/// A time-varying job-arrival intensity (jobs per second).
pub trait DemandModel {
    /// The instantaneous arrival rate at time `t`, in jobs per second.
    fn rate_at(&self, t: Seconds) -> f64;

    /// A tight upper bound on [`rate_at`](Self::rate_at) over all `t`,
    /// used as the majorizing rate for Poisson thinning.
    fn peak_rate(&self) -> f64;
}

/// A flat arrival rate: the homogeneous-Poisson baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDemand {
    rate: f64,
}

impl ConstantDemand {
    /// A constant demand of `rate` jobs per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { rate }
    }
}

impl DemandModel for ConstantDemand {
    fn rate_at(&self, _t: Seconds) -> f64 {
        self.rate
    }

    fn peak_rate(&self) -> f64 {
        self.rate
    }
}

/// A day/night cycle: a raised-cosine oscillation between a trough rate at
/// `t = 0` and a peak rate half a period later.
///
/// `rate(t) = base + (peak − base) · (1 − cos(2πt/period)) / 2`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalDemand {
    base: f64,
    peak: f64,
    period: Seconds,
}

impl DiurnalDemand {
    /// A diurnal demand oscillating in `[base, peak]` with the given period.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ base ≤ peak`, `peak > 0` and the period is
    /// positive.
    pub fn new(base: f64, peak: f64, period: Seconds) -> Self {
        assert!(
            (0.0..=peak).contains(&base) && peak > 0.0 && peak.is_finite(),
            "need 0 <= base <= peak and a positive finite peak"
        );
        assert!(period.value() > 0.0, "period must be positive");
        Self { base, peak, period }
    }

    /// The oscillation period.
    pub fn period(&self) -> Seconds {
        self.period
    }
}

impl DemandModel for DiurnalDemand {
    fn rate_at(&self, t: Seconds) -> f64 {
        let phase = core::f64::consts::TAU * t.value() / self.period.value();
        self.base + (self.peak - self.base) * 0.5 * (1.0 - phase.cos())
    }

    fn peak_rate(&self) -> f64 {
        self.peak
    }
}

/// Correlated load spikes over a quiet background: each *slot* of length
/// `mean_gap + burst_duration` contains exactly one burst window at a
/// seed-determined offset, during which the rate jumps from `base` to
/// `burst`.
///
/// The burst placement is a pure function of `(seed, slot index)`, so the
/// model needs no horizon and two instances with the same parameters agree
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyDemand {
    base: f64,
    burst: f64,
    burst_duration: Seconds,
    mean_gap: Seconds,
    seed: u64,
}

impl BurstyDemand {
    /// A bursty demand: background `base`, spike `burst`, one spike of
    /// `burst_duration` per `mean_gap + burst_duration` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ base ≤ burst`, `burst > 0` and both durations are
    /// positive.
    pub fn new(
        base: f64,
        burst: f64,
        burst_duration: Seconds,
        mean_gap: Seconds,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=burst).contains(&base) && burst > 0.0 && burst.is_finite(),
            "need 0 <= base <= burst and a positive finite burst rate"
        );
        assert!(
            burst_duration.value() > 0.0 && mean_gap.value() > 0.0,
            "burst duration and mean gap must be positive"
        );
        Self {
            base,
            burst,
            burst_duration,
            mean_gap,
            seed,
        }
    }

    /// The burst window inside slot `i`, as `(start, end)` in absolute time.
    fn burst_window(&self, slot: i64) -> (f64, f64) {
        let slot_len = self.mean_gap.value() + self.burst_duration.value();
        // SplitMix64 finalizer: a high-quality 64-bit mix of (seed, slot).
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(slot as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let start = slot as f64 * slot_len + u * self.mean_gap.value();
        (start, start + self.burst_duration.value())
    }
}

impl DemandModel for BurstyDemand {
    fn rate_at(&self, t: Seconds) -> f64 {
        let slot_len = self.mean_gap.value() + self.burst_duration.value();
        let slot = (t.value() / slot_len).floor() as i64;
        // A burst can straddle a slot boundary only forwards, so the window
        // of the current slot is the only candidate containing `t`.
        let (start, end) = self.burst_window(slot);
        if (start..end).contains(&t.value()) {
            self.burst
        } else {
            self.base
        }
    }

    fn peak_rate(&self) -> f64 {
        self.burst
    }
}

/// An unbounded, lazily evaluated stream of arrival times drawn from a
/// demand model — the event-source form the fleet's discrete-event
/// kernel consumes: pull the next arrival when the simulation needs it
/// instead of materializing a fixed-length batch up front.
///
/// Produced by [`arrival_source`]; [`synthesize_arrivals`] is the
/// batched convenience over the same generator, so `source.take(n)`
/// yields byte-identical times to `synthesize_arrivals(demand, n, seed)`.
///
/// ```
/// use tps_units::Seconds;
/// use tps_workload::{arrival_source, synthesize_arrivals, DiurnalDemand};
///
/// let day = DiurnalDemand::new(0.2, 1.0, Seconds::new(600.0));
/// let streamed: Vec<Seconds> = arrival_source(&day, 7).take(50).collect();
/// assert_eq!(streamed, synthesize_arrivals(&day, 50, 7));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalSource<'a, D: DemandModel + ?Sized> {
    demand: &'a D,
    rng: StdRng,
    peak: f64,
    t: f64,
}

impl<D: DemandModel + ?Sized> Iterator for ArrivalSource<'_, D> {
    type Item = Seconds;

    /// The next arrival (the stream never ends: a demand model has a
    /// positive peak rate, so thinning accepts with positive probability).
    fn next(&mut self) -> Option<Seconds> {
        loop {
            // Exponential inter-arrival at the majorizing rate…
            let u: f64 = self.rng.gen_range(0.0..1.0);
            self.t += -(1.0 - u).ln() / self.peak;
            // …thinned down to the instantaneous rate.
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * self.peak < self.demand.rate_at(Seconds::new(self.t)) {
                return Some(Seconds::new(self.t));
            }
        }
    }
}

/// An unbounded arrival-time stream for `demand`, deterministic in
/// `seed`, by thinning a homogeneous Poisson process at the model's peak
/// rate. Times are non-decreasing from the model's origin (`t = 0`).
///
/// # Panics
///
/// Panics if the model's peak rate is not positive and finite.
pub fn arrival_source<D: DemandModel + ?Sized>(demand: &D, seed: u64) -> ArrivalSource<'_, D> {
    let peak = demand.peak_rate();
    assert!(
        peak > 0.0 && peak.is_finite(),
        "peak rate must be positive and finite"
    );
    ArrivalSource {
        demand,
        rng: StdRng::seed_from_u64(seed),
        peak,
        t: 0.0,
    }
}

/// Samples `count` arrival times from a demand model, deterministically
/// from `seed` — the batched form of [`arrival_source`].
///
/// The returned times are non-decreasing and start at the model's time
/// origin (`t = 0`).
///
/// # Panics
///
/// Panics if the model's peak rate is not positive and finite.
pub fn synthesize_arrivals<D: DemandModel>(demand: &D, count: usize, seed: u64) -> Vec<Seconds> {
    arrival_source(demand, seed).take(count).collect()
}

/// The online-serving demand shape: a diurnal day/night cycle multiplied
/// by flash-crowd surges — during a seed-determined burst window in each
/// slot (one window per `surge_gap + surge_duration` of simulated time)
/// the instantaneous rate is scaled by `surge`.
///
/// Like [`BurstyDemand`], window placement is a pure function of
/// `(seed, slot index)`, so the model needs no horizon and two instances
/// with the same parameters agree everywhere.
///
/// ```
/// use tps_units::Seconds;
/// use tps_workload::{DemandModel, ServingDemand};
///
/// let d = ServingDemand::new(
///     0.6, 2.0, Seconds::new(600.0),      // diurnal: trough, peak, period
///     3.0, Seconds::new(30.0), Seconds::new(240.0), // surge ×3, 30 s per ~270 s
///     42,
/// );
/// assert_eq!(d.peak_rate(), 6.0);
/// assert!(d.rate_at(Seconds::new(300.0)) >= 2.0 - 1e-12); // diurnal peak
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingDemand {
    diurnal: DiurnalDemand,
    surge: f64,
    window: BurstyDemand,
}

impl ServingDemand {
    /// A serving demand: diurnal oscillation in `[base, peak]` requests/s
    /// over `period`, multiplied by `surge` inside one window of
    /// `surge_duration` per `surge_gap + surge_duration` of time.
    ///
    /// # Panics
    ///
    /// Panics unless the diurnal parameters satisfy
    /// [`DiurnalDemand::new`]'s contract, `surge ≥ 1` is finite, and both
    /// surge durations are positive.
    pub fn new(
        base: f64,
        peak: f64,
        period: Seconds,
        surge: f64,
        surge_duration: Seconds,
        surge_gap: Seconds,
        seed: u64,
    ) -> Self {
        assert!(
            surge >= 1.0 && surge.is_finite(),
            "surge multiplier must be at least 1 and finite"
        );
        Self {
            diurnal: DiurnalDemand::new(base, peak, period),
            surge,
            // A unit-rate bursty model reused purely for its window
            // arithmetic: rate_at is 1.0 inside the surge window, 0.0 out.
            window: BurstyDemand::new(0.0, 1.0, surge_duration, surge_gap, seed),
        }
    }

    /// Whether `t` falls inside a flash-crowd surge window.
    pub fn in_surge(&self, t: Seconds) -> bool {
        self.window.rate_at(t) > 0.0
    }
}

impl DemandModel for ServingDemand {
    fn rate_at(&self, t: Seconds) -> f64 {
        let scale = if self.in_surge(t) { self.surge } else { 1.0 };
        self.diurnal.rate_at(t) * scale
    }

    fn peak_rate(&self) -> f64 {
        self.diurnal.peak_rate() * self.surge
    }
}

/// One short-lived service request in an open-loop stream: unlike a batch
/// job it carries its nominal service demand directly (no benchmark
/// phases), and its latency — queueing wait plus service — is the metric
/// of interest, not completion energy alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the stream (0-based).
    pub id: usize,
    /// Arrival time from the stream origin (`t = 0`).
    pub arrival: Seconds,
    /// Nominal service demand at 1× slowdown.
    pub service: Seconds,
}

/// An unbounded open-loop request stream: Poisson-thinned arrivals from
/// an owned demand model plus per-request service demands, both
/// deterministic in the seed.
///
/// The arrival times are byte-identical to
/// [`arrival_source`]`(demand, seed)` — the service draws come from an
/// independent generator, so adding them does not perturb the arrival
/// process.
///
/// ```
/// use tps_units::Seconds;
/// use tps_workload::{request_stream, ConstantDemand, Request};
///
/// let reqs: Vec<Request> = request_stream(ConstantDemand::new(2.0), Seconds::new(1.5), 42)
///     .take(100)
///     .collect();
/// assert_eq!(reqs.len(), 100);
/// assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// // Service demands are uniform in [0.5, 1.5) × the mean.
/// assert!(reqs.iter().all(|r| (0.75..2.25).contains(&r.service.value())));
/// ```
#[derive(Debug, Clone)]
pub struct RequestStream<D: DemandModel> {
    demand: D,
    rng: StdRng,
    service_rng: StdRng,
    peak: f64,
    t: f64,
    mean_service: f64,
    next_id: usize,
}

impl<D: DemandModel> Iterator for RequestStream<D> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        // The exact thinning loop of [`ArrivalSource`]; the stream never
        // ends because the peak rate is positive.
        let arrival = loop {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            self.t += -(1.0 - u).ln() / self.peak;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * self.peak < self.demand.rate_at(Seconds::new(self.t)) {
                break Seconds::new(self.t);
            }
        };
        let service = self.mean_service * self.service_rng.gen_range(0.5..1.5);
        let id = self.next_id;
        self.next_id += 1;
        Some(Request {
            id,
            arrival,
            service: Seconds::new(service),
        })
    }
}

/// An unbounded request stream over `demand`, deterministic in `seed`:
/// arrivals by Poisson thinning at the model's peak rate, service demands
/// uniform in `[0.5, 1.5) × mean_service` from an independent generator.
///
/// # Panics
///
/// Panics if the model's peak rate is not positive and finite, or if
/// `mean_service` is not positive and finite.
pub fn request_stream<D: DemandModel>(
    demand: D,
    mean_service: Seconds,
    seed: u64,
) -> RequestStream<D> {
    let peak = demand.peak_rate();
    assert!(
        peak > 0.0 && peak.is_finite(),
        "peak rate must be positive and finite"
    );
    assert!(
        mean_service.value() > 0.0 && mean_service.value().is_finite(),
        "mean service demand must be positive and finite"
    );
    RequestStream {
        demand,
        rng: StdRng::seed_from_u64(seed),
        // Distinct stream: the same xor-split convention the job
        // synthesizer uses to decouple attribute draws from arrivals.
        service_rng: StdRng::seed_from_u64(seed ^ 0x243f_6a88_85a3_08d3),
        peak,
        t: 0.0,
        mean_service: mean_service.value(),
        next_id: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_demand_is_flat() {
        let d = ConstantDemand::new(0.5);
        assert_eq!(d.rate_at(Seconds::ZERO), 0.5);
        assert_eq!(d.rate_at(Seconds::new(1e6)), 0.5);
        assert_eq!(d.peak_rate(), 0.5);
    }

    #[test]
    fn diurnal_rate_is_periodic_and_bounded() {
        let d = DiurnalDemand::new(0.1, 1.0, Seconds::new(600.0));
        for i in 0..200 {
            let t = Seconds::new(f64::from(i) * 7.3);
            let r = d.rate_at(t);
            assert!((0.1..=1.0).contains(&r), "rate {r} escaped [base, peak]");
            let shifted = d.rate_at(t + d.period());
            assert!(
                (r - shifted).abs() < 1e-9,
                "period broken: {r} vs {shifted}"
            );
        }
        // Trough at t = 0, peak half a period later.
        assert!((d.rate_at(Seconds::ZERO) - 0.1).abs() < 1e-12);
        assert!((d.rate_at(Seconds::new(300.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_rate_is_two_valued_and_bounded() {
        let d = BurstyDemand::new(0.2, 2.0, Seconds::new(10.0), Seconds::new(50.0), 9);
        let mut burst_samples = 0;
        let n = 6_000;
        for i in 0..n {
            let r = d.rate_at(Seconds::new(f64::from(i) * 0.1));
            assert!(r == 0.2 || r == 2.0, "rate {r} is neither base nor burst");
            if r == 2.0 {
                burst_samples += 1;
            }
        }
        // One 10 s burst per 60 s slot ⇒ ≈ 1/6 of samples hot.
        let frac = f64::from(burst_samples) / f64::from(n);
        assert!((0.08..=0.25).contains(&frac), "burst fraction {frac}");
    }

    #[test]
    fn bursty_windows_stay_inside_their_slot() {
        let d = BurstyDemand::new(0.0, 1.0, Seconds::new(5.0), Seconds::new(20.0), 3);
        for slot in 0..50i64 {
            let (start, end) = d.burst_window(slot);
            let slot_start = slot as f64 * 25.0;
            assert!(start >= slot_start && end <= slot_start + 25.0);
            assert!((end - start - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn arrivals_are_deterministic_sorted_and_counted() {
        let d = DiurnalDemand::new(0.2, 1.0, Seconds::new(300.0));
        let a = synthesize_arrivals(&d, 250, 7);
        let b = synthesize_arrivals(&d, 250, 7);
        let c = synthesize_arrivals(&d, 250, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 250);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0].value() >= 0.0);
    }

    #[test]
    fn constant_arrivals_match_the_rate() {
        let d = ConstantDemand::new(2.0);
        let a = synthesize_arrivals(&d, 2_000, 11);
        let span = a.last().unwrap().value();
        let mean_gap = span / 2_000.0;
        assert!((mean_gap - 0.5).abs() < 0.05, "mean gap {mean_gap}");
    }

    #[test]
    fn diurnal_arrivals_cluster_around_the_peak() {
        let period = 1_000.0;
        let d = DiurnalDemand::new(0.05, 1.0, Seconds::new(period));
        let a = synthesize_arrivals(&d, 800, 5);
        // Fold into phase, split into peak half [P/4, 3P/4) vs trough half.
        let peak_half = a
            .iter()
            .filter(|t| {
                let phase = t.value().rem_euclid(period);
                (period / 4.0..3.0 * period / 4.0).contains(&phase)
            })
            .count();
        assert!(
            peak_half > a.len() * 2 / 3,
            "only {peak_half}/{} arrivals in the peak half-period",
            a.len()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ConstantDemand::new(0.0);
    }

    #[test]
    fn streaming_source_matches_the_batch_and_works_unsized() {
        let d = BurstyDemand::new(0.1, 1.5, Seconds::new(20.0), Seconds::new(80.0), 4);
        // Pulling lazily — including through a trait object, the form the
        // event kernel consumes — replays the batch exactly.
        let erased: &dyn DemandModel = &d;
        let streamed: Vec<Seconds> = arrival_source(erased, 13).take(120).collect();
        assert_eq!(streamed, synthesize_arrivals(&d, 120, 13));
        // Resuming the same iterator continues the stream seamlessly.
        let mut source = arrival_source(&d, 13);
        let head: Vec<Seconds> = source.by_ref().take(40).collect();
        let tail: Vec<Seconds> = source.take(80).collect();
        let joined: Vec<Seconds> = head.into_iter().chain(tail).collect();
        assert_eq!(joined, streamed);
    }

    #[test]
    fn serving_demand_multiplies_the_diurnal_rate_inside_surges() {
        let d = ServingDemand::new(
            0.4,
            2.0,
            Seconds::new(600.0),
            3.0,
            Seconds::new(30.0),
            Seconds::new(120.0),
            17,
        );
        let plain = DiurnalDemand::new(0.4, 2.0, Seconds::new(600.0));
        assert_eq!(d.peak_rate(), 6.0);
        let mut surged = 0;
        for i in 0..3_000 {
            let t = Seconds::new(f64::from(i) * 0.5);
            let expect = plain.rate_at(t) * if d.in_surge(t) { 3.0 } else { 1.0 };
            assert!((d.rate_at(t) - expect).abs() < 1e-12);
            if d.in_surge(t) {
                surged += 1;
            }
        }
        // One 30 s window per 150 s slot ⇒ ≈ 1/5 of samples surged.
        let frac = f64::from(surged) / 3_000.0;
        assert!((0.1..=0.3).contains(&frac), "surge fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_surge_rejected() {
        let _ = ServingDemand::new(
            0.4,
            2.0,
            Seconds::new(600.0),
            0.5,
            Seconds::new(30.0),
            Seconds::new(120.0),
            0,
        );
    }

    #[test]
    fn request_stream_reuses_the_arrival_process_verbatim() {
        let d = ServingDemand::new(
            0.5,
            2.0,
            Seconds::new(600.0),
            2.0,
            Seconds::new(30.0),
            Seconds::new(120.0),
            5,
        );
        let reqs: Vec<Request> = request_stream(d, Seconds::new(2.0), 21).take(150).collect();
        // Arrival times are exactly the thinned process — the service
        // draws ride a separate generator and cannot perturb them.
        let plain = synthesize_arrivals(&d, 150, 21);
        let times: Vec<Seconds> = reqs.iter().map(|r| r.arrival).collect();
        assert_eq!(times, plain);
        assert!(reqs.iter().enumerate().all(|(i, r)| r.id == i));
        assert!(reqs.iter().all(|r| (1.0..3.0).contains(&r.service.value())));
        // Deterministic per seed, distinct across seeds.
        let again: Vec<Request> = request_stream(d, Seconds::new(2.0), 21).take(150).collect();
        let other: Vec<Request> = request_stream(d, Seconds::new(2.0), 22).take(150).collect();
        assert_eq!(reqs, again);
        assert_ne!(reqs, other);
    }
}
