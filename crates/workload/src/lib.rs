//! PARSEC-style multithreaded workload models.
//!
//! The paper profiles the PARSEC 3.0 suite on the target Xeon as a function
//! of the assigned number of cores `Nc`, threads `Nt` and frequency `f`
//! (Sec. IV-B), and defines QoS constraints as allowed slowdown (1×/2×/3×)
//! w.r.t. the native (8 cores, 16 threads, f_max) execution.
//!
//! This crate replaces those measurements with an analytic model per
//! benchmark ([`BenchProfile`]): an Amdahl-style serial fraction, a
//! memory-bound share that neither frequency nor extra cores accelerate past
//! the bandwidth saturation point, an SMT gain for the second hardware
//! thread, and a synchronization overhead growing with core count. The same
//! profile also carries the power characteristics (per-core dynamic power at
//! `f_max`, LLC/uncore activity) that the power model consumes.
//!
//! [`profile_application`] produces the `P_i`/`Q_i` vectors of Algorithm 1.
//!
//! ```
//! use tps_workload::{Benchmark, WorkloadConfig};
//! use tps_power::CoreFrequency;
//!
//! let cfg = WorkloadConfig::new(4, 2, CoreFrequency::F3_2).unwrap();
//! let t = Benchmark::Blackscholes.profile().normalized_time(cfg);
//! assert!(t > 1.0); // slower than the (8,16,fmax) baseline
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod config;
mod demand;
mod exec;
mod profiler;
mod qos;
mod trace;

pub use benchmark::Benchmark;
pub use config::{ConfigError, WorkloadConfig};
pub use demand::{
    arrival_source, request_stream, synthesize_arrivals, ArrivalSource, BurstyDemand,
    ConstantDemand, DemandModel, DiurnalDemand, Request, RequestStream, ServingDemand,
};
pub use exec::BenchProfile;
pub use profiler::{profile_application, profile_config, ConfigProfile};
pub use qos::QosClass;
pub use trace::{Phase, WorkloadTrace};
