//! Phase-based workload traces for transient simulation.
//!
//! Real PARSEC executions alternate between compute-heavy and memory-heavy
//! phases (the paper's runtime controller reacts to the resulting thermal
//! transients). [`WorkloadTrace::synthesize`] generates a reproducible
//! phase sequence per benchmark for the transient examples and tests.

use crate::benchmark::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tps_units::Seconds;

/// One execution phase: a duration and a dynamic-power scale factor relative
/// to the benchmark's average dynamic power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Phase duration.
    pub duration: Seconds,
    /// Dynamic-power multiplier in `[0.3, 1.5]` (1.0 = profile average).
    pub power_scale: f64,
}

/// A sequence of phases approximating one benchmark execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    bench: Benchmark,
    phases: Vec<Phase>,
}

impl WorkloadTrace {
    /// Synthesizes a trace of roughly `total` seconds for `bench`,
    /// deterministically from `seed`.
    ///
    /// Compute-bound benchmarks produce long, hot phases; memory-bound ones
    /// alternate faster between cooler stall phases and bursts.
    pub fn synthesize(bench: Benchmark, total: Seconds, seed: u64) -> Self {
        let profile = bench.profile();
        let mut rng = StdRng::seed_from_u64(seed);
        let mem = profile.mem_fraction();
        // Memory-bound ⇒ shorter phases, larger swing around a lower mean.
        let mean_phase_s = 2.0 - 1.5 * mem;
        let swing = 0.15 + 0.5 * mem;
        let mut phases = Vec::new();
        let mut elapsed = 0.0;
        let mut hot = true;
        while elapsed < total.value() {
            let dur = (mean_phase_s * rng.gen_range(0.5..1.5)).min(total.value() - elapsed);
            let base = if hot { 1.0 + swing } else { 1.0 - swing };
            let scale = (base + rng.gen_range(-0.1..0.1)).clamp(0.3, 1.5);
            phases.push(Phase {
                duration: Seconds::new(dur),
                power_scale: scale,
            });
            elapsed += dur;
            hot = !hot;
        }
        Self { bench, phases }
    }

    /// The benchmark this trace belongs to.
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total trace duration.
    pub fn duration(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The power scale in effect at time `t` (clamped to the last phase).
    pub fn power_scale_at(&self, t: Seconds) -> f64 {
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.duration.value();
            if t.value() < acc {
                return p.power_scale;
            }
        }
        self.phases.last().map_or(1.0, |p| p.power_scale)
    }

    /// Time-weighted average power scale (≈ 1.0 by construction).
    pub fn average_power_scale(&self) -> f64 {
        let total = self.duration().value();
        if total == 0.0 {
            return 1.0;
        }
        self.phases
            .iter()
            .map(|p| p.power_scale * p.duration.value())
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = WorkloadTrace::synthesize(Benchmark::X264, Seconds::new(20.0), 7);
        let b = WorkloadTrace::synthesize(Benchmark::X264, Seconds::new(20.0), 7);
        let c = WorkloadTrace::synthesize(Benchmark::X264, Seconds::new(20.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn duration_matches_request() {
        let t = WorkloadTrace::synthesize(Benchmark::Canneal, Seconds::new(30.0), 1);
        assert!((t.duration().value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn scales_are_bounded() {
        let t = WorkloadTrace::synthesize(Benchmark::Streamcluster, Seconds::new(60.0), 3);
        for p in t.phases() {
            assert!((0.3..=1.5).contains(&p.power_scale));
            assert!(p.duration.value() > 0.0);
        }
        let avg = t.average_power_scale();
        assert!((0.7..=1.3).contains(&avg), "average scale {avg}");
    }

    #[test]
    fn memory_bound_traces_have_more_phases() {
        let mem = WorkloadTrace::synthesize(Benchmark::Canneal, Seconds::new(60.0), 4);
        let cpu = WorkloadTrace::synthesize(Benchmark::Swaptions, Seconds::new(60.0), 4);
        assert!(mem.phases().len() > cpu.phases().len());
    }

    #[test]
    fn zero_total_yields_an_empty_trace() {
        let t = WorkloadTrace::synthesize(Benchmark::X264, Seconds::ZERO, 1);
        assert!(t.phases().is_empty());
        assert_eq!(t.duration(), Seconds::ZERO);
        // Degenerate lookups still answer something sane.
        assert_eq!(t.average_power_scale(), 1.0);
        assert_eq!(t.power_scale_at(Seconds::new(5.0)), 1.0);
    }

    #[test]
    fn tiny_total_yields_exactly_one_phase() {
        // The shortest possible phase is mean_phase_s × 0.5 ≥ 0.25 s, so a
        // 0.1 s request must be clipped into a single phase of that length.
        for b in [Benchmark::Swaptions, Benchmark::Canneal] {
            let t = WorkloadTrace::synthesize(b, Seconds::new(0.1), 2);
            assert_eq!(t.phases().len(), 1, "{b}");
            assert!((t.duration().value() - 0.1).abs() < 1e-12, "{b}");
        }
    }

    #[test]
    fn same_seed_same_benchmark_regardless_of_call_order() {
        // The generator must not leak state between calls: interleaving
        // other syntheses cannot perturb a (bench, total, seed) triple.
        let first = WorkloadTrace::synthesize(Benchmark::Vips, Seconds::new(15.0), 9);
        let _noise = WorkloadTrace::synthesize(Benchmark::Dedup, Seconds::new(40.0), 1);
        let second = WorkloadTrace::synthesize(Benchmark::Vips, Seconds::new(15.0), 9);
        assert_eq!(first, second);
    }

    #[test]
    fn seeds_differentiate_but_durations_agree_across_benchmarks() {
        // Same seed, different benchmark ⇒ different phase structure but the
        // same total duration contract.
        let a = WorkloadTrace::synthesize(Benchmark::Blackscholes, Seconds::new(25.0), 6);
        let b = WorkloadTrace::synthesize(Benchmark::Streamcluster, Seconds::new(25.0), 6);
        assert_ne!(a.phases(), b.phases());
        assert!((a.duration().value() - 25.0).abs() < 1e-9);
        assert!((b.duration().value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn power_scale_lookup() {
        let t = WorkloadTrace::synthesize(Benchmark::Ferret, Seconds::new(10.0), 5);
        let first = t.phases()[0];
        assert_eq!(t.power_scale_at(Seconds::new(0.0)), first.power_scale);
        // Past the end: last phase's scale.
        let last = *t.phases().last().unwrap();
        assert_eq!(t.power_scale_at(Seconds::new(1e6)), last.power_scale);
    }
}
