//! Profiling: the `P_i` (power) and `Q_i` (QoS) vectors of Algorithm 1.

use crate::benchmark::Benchmark;
use crate::config::WorkloadConfig;
use tps_power::{ActiveCorePower, CState, IdlePowerModel, UncorePowerModel};
use tps_units::Watts;

/// The profiled operating point of one `(Nc, Nt, f)` configuration:
/// everything Algorithm 1 and the heat estimator need.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigProfile {
    /// The configuration this row describes.
    pub config: WorkloadConfig,
    /// Execution time normalized to the `(8,16,f_max)` baseline (the `Q_i`
    /// entry; compare against [`QosClass::max_slowdown`](crate::QosClass)).
    pub normalized_time: f64,
    /// Total package power (the `P_i` entry Algorithm 1 sorts by).
    pub package_power: Watts,
    /// Power of each *active* core.
    pub active_core_power: Watts,
    /// Residual power of each *idle* core (depends on the idle C-state).
    pub idle_core_power: Watts,
    /// LLC power.
    pub llc_power: Watts,
    /// Memory-controller + IO power (the two southern die strips).
    pub mem_io_power: Watts,
}

/// Profiles `bench` over the full 48-point configuration space, with idle
/// cores parked in `idle_cstate`.
///
/// This substitutes the paper's offline profiling pass ("The power
/// consumption and the QoS resulting from each configuration j are known and
/// stored in Pi and Qi vectors … obtained from profiling the application").
///
/// ```
/// use tps_power::CState;
/// use tps_workload::{profile_application, Benchmark};
///
/// let rows = profile_application(Benchmark::X264, CState::Poll);
/// assert_eq!(rows.len(), 48);
/// // Package power spans the paper's reported 40.5–79.3 W band (±15 %).
/// let max = rows.iter().map(|r| r.package_power.value()).fold(0.0, f64::max);
/// assert!(max > 70.0 && max < 90.0);
/// ```
pub fn profile_application(bench: Benchmark, idle_cstate: CState) -> Vec<ConfigProfile> {
    WorkloadConfig::enumerate_all()
        .into_iter()
        .map(|config| profile_config(bench, config, idle_cstate))
        .collect()
}

/// Profiles a single configuration point.
pub fn profile_config(
    bench: Benchmark,
    config: WorkloadConfig,
    idle_cstate: CState,
) -> ConfigProfile {
    let profile = bench.profile();
    let active_model = ActiveCorePower::xeon_e5_v4();
    let idle_model = IdlePowerModel::xeon_e5_v4();
    let uncore_model = UncorePowerModel::xeon_e5_v4();

    let freq = config.frequency();
    let active_core_power = active_model.power(
        freq,
        profile.dyn_core_power_fmax(),
        profile.utilization(),
        config.threads_per_core(),
    );
    let idle_core_power = idle_model.core_idle_power(idle_cstate, freq);
    let llc_power = uncore_model.llc_power(profile.llc_activity());
    let mem_io_power = uncore_model.mem_io_power(profile.uncore_frequency());

    let n_active = f64::from(config.n_cores());
    let n_idle = f64::from(8 - config.n_cores());
    let package_power =
        active_core_power * n_active + idle_core_power * n_idle + llc_power + mem_io_power;

    ConfigProfile {
        config,
        normalized_time: profile.normalized_time(config),
        package_power,
        active_core_power,
        idle_core_power,
        llc_power,
        mem_io_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_power::CoreFrequency;

    #[test]
    fn package_power_spans_the_paper_band() {
        // Sec. V: "the total package power consumption ranges from 40.5 W to
        // 79.3 W among all configurations and applications". Our calibrated
        // model must land in the same band (generous ±8 W tolerance).
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for b in Benchmark::ALL {
            for row in profile_application(b, CState::Poll) {
                min = min.min(row.package_power.value());
                max = max.max(row.package_power.value());
            }
        }
        assert!(min > 32.0 && min < 48.0, "min package power {min} W");
        assert!(max > 72.0 && max < 87.0, "max package power {max} W");
    }

    #[test]
    fn power_is_monotonic_in_cores_and_frequency() {
        let rows = profile_application(Benchmark::Ferret, CState::Poll);
        let find = |nc, tpc, f| {
            rows.iter()
                .find(|r| {
                    r.config.n_cores() == nc
                        && r.config.threads_per_core() == tpc
                        && r.config.frequency() == f
                })
                .unwrap()
                .package_power
        };
        assert!(find(4, 2, CoreFrequency::F3_2) < find(8, 2, CoreFrequency::F3_2));
        assert!(find(8, 2, CoreFrequency::F2_6) < find(8, 2, CoreFrequency::F3_2));
        assert!(find(8, 1, CoreFrequency::F3_2) < find(8, 2, CoreFrequency::F3_2));
    }

    #[test]
    fn deeper_idle_state_cuts_package_power() {
        let poll = profile_config(
            Benchmark::Vips,
            WorkloadConfig::new(2, 2, CoreFrequency::F3_2).unwrap(),
            CState::Poll,
        );
        let c6 = profile_config(
            Benchmark::Vips,
            WorkloadConfig::new(2, 2, CoreFrequency::F3_2).unwrap(),
            CState::C6,
        );
        // 6 idle cores at POLL burn > 15 W more than at C6.
        assert!(poll.package_power.value() - c6.package_power.value() > 15.0);
        // Active-core power is identical — only the idle share changes.
        assert_eq!(poll.active_core_power, c6.active_core_power);
    }

    #[test]
    fn normalized_time_matches_exec_model() {
        let cfg = WorkloadConfig::new(4, 2, CoreFrequency::F2_9).unwrap();
        let row = profile_config(Benchmark::Raytrace, cfg, CState::Poll);
        let direct = Benchmark::Raytrace.profile().normalized_time(cfg);
        assert_eq!(row.normalized_time, direct);
    }

    #[test]
    fn all_rows_have_positive_finite_values() {
        for b in [Benchmark::Canneal, Benchmark::Swaptions] {
            for row in profile_application(b, CState::C1) {
                assert!(row.package_power.is_finite() && row.package_power.value() > 0.0);
                assert!(row.normalized_time.is_finite() && row.normalized_time > 0.0);
            }
        }
    }
}
