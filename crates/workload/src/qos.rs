//! QoS constraints: allowed slowdown w.r.t. the native execution.

use core::fmt;
use tps_units::Seconds;

/// A QoS class: the maximum allowed execution-time degradation relative to
/// the `(8,16,f_max)` baseline (Sec. IV-B considers 1×, 2× and 3×).
///
/// Each class also implies a tolerable wake-up delay `d_i` for idle cores:
/// the tighter the deadline, the shallower the C-state the mapping may use —
/// this is what drives the paper's C-state-dependent mapping choice (Fig. 6
/// and the Table II discussion of the 3× case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosClass {
    /// No degradation allowed (1×): the native configuration must be used.
    OneX,
    /// Up to 2× slowdown.
    TwoX,
    /// Up to 3× slowdown.
    ThreeX,
}

impl QosClass {
    /// All classes, strictest first.
    pub const ALL: [QosClass; 3] = [QosClass::OneX, QosClass::TwoX, QosClass::ThreeX];

    /// The allowed slowdown factor `q_i`.
    pub fn max_slowdown(self) -> f64 {
        match self {
            QosClass::OneX => 1.0,
            QosClass::TwoX => 2.0,
            QosClass::ThreeX => 3.0,
        }
    }

    /// Whether a normalized execution time satisfies this class
    /// (with a hair of tolerance so the baseline itself passes 1×).
    pub fn is_met_by(self, normalized_time: f64) -> bool {
        normalized_time <= self.max_slowdown() + 1e-9
    }

    /// The tolerable delay `d_i` for waking idle cores.
    ///
    /// 1× tolerates no wake latency (POLL only); 2× tolerates clock-gated
    /// halts (C1/C1E); 3× tolerates deep sleep (C6). These are our
    /// calibration of the paper's `D = {d_1 … d_n}` input.
    pub fn idle_delay_tolerance(self) -> Seconds {
        match self {
            QosClass::OneX => Seconds::ZERO,
            QosClass::TwoX => Seconds::from_us(10.0),
            QosClass::ThreeX => Seconds::from_us(1000.0),
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QosClass::OneX => "1x",
            QosClass::TwoX => "2x",
            QosClass::ThreeX => "3x",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_power::CState;

    #[test]
    fn slowdown_factors() {
        assert_eq!(QosClass::OneX.max_slowdown(), 1.0);
        assert_eq!(QosClass::TwoX.max_slowdown(), 2.0);
        assert_eq!(QosClass::ThreeX.max_slowdown(), 3.0);
    }

    #[test]
    fn met_by_with_tolerance() {
        assert!(QosClass::OneX.is_met_by(1.0));
        assert!(!QosClass::OneX.is_met_by(1.01));
        assert!(QosClass::TwoX.is_met_by(1.99));
        assert!(!QosClass::TwoX.is_met_by(2.5));
    }

    #[test]
    fn delay_tolerance_maps_to_expected_cstates() {
        assert_eq!(
            CState::deepest_within(QosClass::OneX.idle_delay_tolerance()),
            CState::Poll
        );
        assert_eq!(
            CState::deepest_within(QosClass::TwoX.idle_delay_tolerance()),
            CState::C1e
        );
        assert_eq!(
            CState::deepest_within(QosClass::ThreeX.idle_delay_tolerance()),
            CState::C6
        );
    }

    #[test]
    fn ordering_is_strictness() {
        assert!(QosClass::OneX < QosClass::TwoX);
        assert!(QosClass::TwoX < QosClass::ThreeX);
    }
}
