//! The `(Nc, Nt, f)` configuration space of Algorithm 1.

use core::fmt;
use tps_power::CoreFrequency;

/// A workload configuration: number of cores, hardware threads per core and
/// core frequency.
///
/// The paper writes configurations as `(Nc, Nt, f)` where `Nt` is the *total*
/// thread count; internally we store threads **per core** (1 or 2, matching
/// Algorithm 1's `Nt = {1, 2}`), and [`fmt::Display`] prints the paper form.
///
/// ```
/// use tps_workload::WorkloadConfig;
/// use tps_power::CoreFrequency;
///
/// let cfg = WorkloadConfig::new(8, 2, CoreFrequency::F3_2)?;
/// assert_eq!(cfg.total_threads(), 16);
/// assert_eq!(cfg.to_string(), "(8,16,3.2GHz)");
/// # Ok::<(), tps_workload::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadConfig {
    n_cores: u8,
    threads_per_core: u8,
    freq: CoreFrequency,
}

/// Error constructing a [`WorkloadConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside `1..=8`.
    CoreCount(u8),
    /// Threads per core outside `1..=2`.
    ThreadsPerCore(u8),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CoreCount(n) => write!(f, "core count {n} outside 1..=8"),
            ConfigError::ThreadsPerCore(n) => write!(f, "threads per core {n} outside 1..=2"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl WorkloadConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n_cores` is outside `1..=8` or
    /// `threads_per_core` outside `1..=2`.
    pub fn new(
        n_cores: u8,
        threads_per_core: u8,
        freq: CoreFrequency,
    ) -> Result<Self, ConfigError> {
        if !(1..=8).contains(&n_cores) {
            return Err(ConfigError::CoreCount(n_cores));
        }
        if !(1..=2).contains(&threads_per_core) {
            return Err(ConfigError::ThreadsPerCore(threads_per_core));
        }
        Ok(Self {
            n_cores,
            threads_per_core,
            freq,
        })
    }

    /// The paper's reference configuration: native 8 cores, 16 threads,
    /// maximum frequency (Sec. IV-B).
    pub fn baseline() -> Self {
        Self {
            n_cores: 8,
            threads_per_core: 2,
            freq: CoreFrequency::MAX,
        }
    }

    /// Number of active cores `Nc`.
    pub fn n_cores(&self) -> u8 {
        self.n_cores
    }

    /// Hardware threads per core (1 or 2).
    pub fn threads_per_core(&self) -> u8 {
        self.threads_per_core
    }

    /// Total software threads `Nt = Nc × threads/core`.
    pub fn total_threads(&self) -> u8 {
        self.n_cores * self.threads_per_core
    }

    /// Core frequency `f`.
    pub fn frequency(&self) -> CoreFrequency {
        self.freq
    }

    /// Returns this configuration with a different frequency (used by the
    /// runtime controller when throttling).
    pub fn with_frequency(self, freq: CoreFrequency) -> Self {
        Self { freq, ..self }
    }

    /// Enumerates the full configuration space of Algorithm 1:
    /// `Nc ∈ 1..=8 × Nt ∈ {1,2} × f ∈ {2.6, 2.9, 3.2}` — 48 configurations.
    pub fn enumerate_all() -> Vec<WorkloadConfig> {
        let mut v = Vec::with_capacity(48);
        for n_cores in 1..=8u8 {
            for tpc in 1..=2u8 {
                for freq in CoreFrequency::ALL {
                    v.push(WorkloadConfig {
                        n_cores,
                        threads_per_core: tpc,
                        freq,
                    });
                }
            }
        }
        v
    }

    /// The five configurations shown on the x-axis of the paper's Fig. 3,
    /// all at `f_max`: (2,4) (4,4) (4,8) (8,8) (8,16).
    pub fn fig3_configs() -> [WorkloadConfig; 5] {
        let c = |nc, tpc| WorkloadConfig {
            n_cores: nc,
            threads_per_core: tpc,
            freq: CoreFrequency::MAX,
        };
        [c(2, 2), c(4, 1), c(4, 2), c(8, 1), c(8, 2)]
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for WorkloadConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{}GHz)",
            self.n_cores,
            self.total_threads(),
            self.freq.ghz().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(WorkloadConfig::new(0, 1, CoreFrequency::F2_6).is_err());
        assert!(WorkloadConfig::new(9, 1, CoreFrequency::F2_6).is_err());
        assert!(WorkloadConfig::new(4, 3, CoreFrequency::F2_6).is_err());
        assert!(WorkloadConfig::new(4, 2, CoreFrequency::F2_6).is_ok());
    }

    #[test]
    fn baseline_is_native_config() {
        let b = WorkloadConfig::baseline();
        assert_eq!(b.n_cores(), 8);
        assert_eq!(b.total_threads(), 16);
        assert_eq!(b.frequency(), CoreFrequency::F3_2);
    }

    #[test]
    fn space_has_48_configs() {
        let all = WorkloadConfig::enumerate_all();
        assert_eq!(all.len(), 48);
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn fig3_axis_matches_paper() {
        let labels: Vec<String> = WorkloadConfig::fig3_configs()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(
            labels,
            [
                "(2,4,3.2GHz)",
                "(4,4,3.2GHz)",
                "(4,8,3.2GHz)",
                "(8,8,3.2GHz)",
                "(8,16,3.2GHz)"
            ]
        );
    }

    #[test]
    fn with_frequency_preserves_shape() {
        let c = WorkloadConfig::new(4, 2, CoreFrequency::F3_2).unwrap();
        let lowered = c.with_frequency(CoreFrequency::F2_6);
        assert_eq!(lowered.n_cores(), 4);
        assert_eq!(lowered.total_threads(), 8);
        assert_eq!(lowered.frequency(), CoreFrequency::F2_6);
    }

    #[test]
    fn error_messages() {
        assert!(ConfigError::CoreCount(9).to_string().contains("9"));
        assert!(ConfigError::ThreadsPerCore(3).to_string().contains("3"));
    }
}
