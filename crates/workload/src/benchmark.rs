//! The PARSEC 3.0 benchmark suite members used in the paper's Fig. 3.

use crate::exec::BenchProfile;
use core::fmt;
use core::str::FromStr;

/// A PARSEC 3.0 benchmark (all 13 of the paper's Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are benchmark names, not API surface
pub enum Benchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
}

impl Benchmark {
    /// All benchmarks, in alphabetical order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Facesim,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Freqmine,
        Benchmark::Raytrace,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
        Benchmark::Vips,
        Benchmark::X264,
    ];

    /// The lowercase PARSEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Facesim => "facesim",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Vips => "vips",
            Benchmark::X264 => "x264",
        }
    }

    /// The benchmark's performance/power profile.
    ///
    /// Parameter values are our calibration (ARCHITECTURE.md §2): they reproduce
    /// the qualitative Fig. 3 spread — embarrassingly parallel kernels
    /// (`swaptions`, `blackscholes`) scale with cores and frequency, while
    /// memory-bound ones (`canneal`, `streamcluster`, `dedup`) saturate.
    pub fn profile(self) -> BenchProfile {
        // (serial, mem, smt_gain, comm, bw_sat, dyn W @fmax, llc activity)
        let p = |serial, mem, smt, comm, bw, dynp, llc| {
            BenchProfile::new(self, serial, mem, smt, comm, bw, dynp, llc)
        };
        match self {
            Benchmark::Blackscholes => p(0.02, 0.10, 1.25, 0.005, 6.0, 3.6, 0.3),
            Benchmark::Bodytrack => p(0.08, 0.20, 1.20, 0.015, 5.0, 3.8, 0.4),
            Benchmark::Canneal => p(0.05, 0.60, 1.35, 0.010, 5.5, 2.4, 0.9),
            Benchmark::Dedup => p(0.07, 0.50, 1.30, 0.020, 5.5, 2.8, 0.8),
            Benchmark::Facesim => p(0.05, 0.35, 1.15, 0.015, 5.0, 4.0, 0.5),
            Benchmark::Ferret => p(0.03, 0.25, 1.30, 0.010, 5.0, 3.9, 0.5),
            Benchmark::Fluidanimate => p(0.04, 0.30, 1.15, 0.012, 5.0, 4.2, 0.5),
            Benchmark::Freqmine => p(0.06, 0.25, 1.20, 0.012, 5.0, 3.9, 0.5),
            Benchmark::Raytrace => p(0.03, 0.15, 1.20, 0.008, 5.5, 3.7, 0.4),
            Benchmark::Streamcluster => p(0.03, 0.55, 1.40, 0.010, 5.5, 2.6, 0.9),
            Benchmark::Swaptions => p(0.01, 0.05, 1.30, 0.004, 6.5, 4.3, 0.2),
            Benchmark::Vips => p(0.04, 0.30, 1.20, 0.012, 5.0, 4.0, 0.5),
            Benchmark::X264 => p(0.06, 0.20, 1.25, 0.015, 5.0, 4.4, 0.4),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    name: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown PARSEC benchmark `{}`", self.name)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == s.to_lowercase())
            .ok_or_else(|| ParseBenchmarkError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 13);
    }

    #[test]
    fn parse_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert_eq!("X264".parse::<Benchmark>().unwrap(), Benchmark::X264);
        assert!("doom".parse::<Benchmark>().is_err());
    }

    #[test]
    fn memory_bound_benchmarks_have_low_dynamic_power() {
        // Memory-bound workloads stall more and switch less.
        let canneal = Benchmark::Canneal.profile();
        let swaptions = Benchmark::Swaptions.profile();
        assert!(canneal.dyn_core_power_fmax() < swaptions.dyn_core_power_fmax());
        assert!(canneal.mem_fraction() > swaptions.mem_fraction());
    }

    #[test]
    fn profiles_are_valid() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.serial_fraction() > 0.0 && p.serial_fraction() < 0.2);
            assert!(p.mem_fraction() >= 0.0 && p.mem_fraction() <= 0.7);
            assert!(p.smt_gain() >= 1.0 && p.smt_gain() <= 1.5);
        }
    }
}
