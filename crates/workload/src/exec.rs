//! The analytic execution-time model behind the paper's Fig. 3.

use crate::benchmark::Benchmark;
use crate::config::WorkloadConfig;
use tps_power::{CoreFrequency, UncoreFrequency};
use tps_units::{GigaHertz, Watts};

/// Performance and power characteristics of one benchmark.
///
/// The execution-time model splits the work into a serial and a parallel
/// region (Amdahl), and each region into a CPU-bound share (scaling with
/// `1/f` and core count) and a memory-bound share (frequency-insensitive,
/// saturating at the memory-bandwidth parallelism `bw_saturation`):
///
/// ```text
/// T(Nc,Nt,f) = ser·u(1,f) + (1−ser)·u(S, f)
/// u(S, f)    = (1−mem)·(f_max/f)/S_cpu + mem/S_mem
/// S_cpu      = Nc · smt(Nt) / (1 + comm·(Nc−1))
/// S_mem      = min(S_cpu, bw_saturation)
/// ```
///
/// Times are normalized to the `(8,16,f_max)` baseline of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchProfile {
    bench: Benchmark,
    serial: f64,
    mem: f64,
    smt_gain: f64,
    comm: f64,
    bw_saturation: f64,
    dyn_core_power_fmax: f64,
    llc_activity: f64,
}

impl BenchProfile {
    /// Builds a profile; used by [`Benchmark::profile`].
    ///
    /// # Panics
    ///
    /// Panics if any fraction leaves its physical range.
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the table
    pub(crate) fn new(
        bench: Benchmark,
        serial: f64,
        mem: f64,
        smt_gain: f64,
        comm: f64,
        bw_saturation: f64,
        dyn_core_power_fmax: f64,
        llc_activity: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&serial), "serial fraction out of range");
        assert!((0.0..1.0).contains(&mem), "memory fraction out of range");
        assert!(smt_gain >= 1.0, "SMT gain must be >= 1");
        assert!(comm >= 0.0, "communication overhead must be >= 0");
        assert!(bw_saturation >= 1.0, "bandwidth saturation must be >= 1");
        assert!(dyn_core_power_fmax > 0.0, "dynamic power must be positive");
        assert!(
            (0.0..=1.0).contains(&llc_activity),
            "LLC activity out of range"
        );
        Self {
            bench,
            serial,
            mem,
            smt_gain,
            comm,
            bw_saturation,
            dyn_core_power_fmax,
            llc_activity,
        }
    }

    /// The benchmark this profile describes.
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// Amdahl serial fraction.
    pub fn serial_fraction(&self) -> f64 {
        self.serial
    }

    /// Memory-bound share of the work (frequency-insensitive).
    pub fn mem_fraction(&self) -> f64 {
        self.mem
    }

    /// Throughput gain of a second hardware thread per core.
    pub fn smt_gain(&self) -> f64 {
        self.smt_gain
    }

    /// Per-core synchronization/communication overhead per extra core.
    pub fn comm_overhead(&self) -> f64 {
        self.comm
    }

    /// Memory parallelism at which extra cores stop helping the
    /// memory-bound share.
    pub fn bw_saturation(&self) -> f64 {
        self.bw_saturation
    }

    /// Per-core dynamic power at `f_max` with one thread.
    pub fn dyn_core_power_fmax(&self) -> Watts {
        Watts::new(self.dyn_core_power_fmax)
    }

    /// LLC activity in `[0,1]` (1.0 = the 2 W worst case of Sec. IV-C2).
    pub fn llc_activity(&self) -> f64 {
        self.llc_activity
    }

    /// Core busy fraction: memory stalls reduce switching activity.
    pub fn utilization(&self) -> f64 {
        1.0 - 0.25 * self.mem
    }

    /// The uncore operating point the workload drives: memory-bound
    /// workloads push the uncore towards its maximum frequency.
    pub fn uncore_frequency(&self) -> UncoreFrequency {
        let ghz = UncoreFrequency::MIN_GHZ
            + (UncoreFrequency::MAX_GHZ - UncoreFrequency::MIN_GHZ) * (0.4 + 0.6 * self.mem);
        UncoreFrequency::new(GigaHertz::new(ghz))
    }

    /// Parallel speedup of the CPU-bound share at a configuration.
    pub fn cpu_speedup(&self, cfg: WorkloadConfig) -> f64 {
        let nc = f64::from(cfg.n_cores());
        let smt = if cfg.threads_per_core() == 2 {
            self.smt_gain
        } else {
            1.0
        };
        nc * smt / (1.0 + self.comm * (nc - 1.0))
    }

    /// Execution time in baseline-work units (serial @ `f_max` = 1.0).
    pub fn execution_time_units(&self, cfg: WorkloadConfig) -> f64 {
        let fscale = CoreFrequency::MAX.ghz().value() / cfg.frequency().ghz().value();
        let s_cpu = self.cpu_speedup(cfg);
        let s_mem = s_cpu.min(self.bw_saturation);
        let region = |speedup_cpu: f64, speedup_mem: f64| {
            (1.0 - self.mem) * fscale / speedup_cpu + self.mem / speedup_mem
        };
        self.serial * region(1.0, 1.0) + (1.0 - self.serial) * region(s_cpu, s_mem)
    }

    /// Execution time normalized to the paper's `(8,16,f_max)` baseline.
    ///
    /// This is the quantity plotted in Fig. 3 (before dividing by the QoS
    /// limit) and compared against QoS constraints by Algorithm 1.
    pub fn normalized_time(&self, cfg: WorkloadConfig) -> f64 {
        self.execution_time_units(cfg) / self.execution_time_units(WorkloadConfig::baseline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(nc: u8, tpc: u8, f: CoreFrequency) -> WorkloadConfig {
        WorkloadConfig::new(nc, tpc, f).unwrap()
    }

    #[test]
    fn baseline_normalizes_to_one() {
        for b in Benchmark::ALL {
            let t = b.profile().normalized_time(WorkloadConfig::baseline());
            assert!((t - 1.0).abs() < 1e-12, "{b}: {t}");
        }
    }

    #[test]
    fn fewer_cores_is_slower() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let t2 = p.normalized_time(cfg(2, 2, CoreFrequency::F3_2));
            let t4 = p.normalized_time(cfg(4, 2, CoreFrequency::F3_2));
            let t8 = p.normalized_time(cfg(8, 2, CoreFrequency::F3_2));
            assert!(t2 > t4 && t4 > t8, "{b}: {t2} {t4} {t8}");
        }
    }

    #[test]
    fn lower_frequency_is_slower() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let slow = p.normalized_time(cfg(8, 2, CoreFrequency::F2_6));
            assert!(slow > 1.0, "{b}: {slow}");
        }
    }

    #[test]
    fn memory_bound_kernels_are_less_frequency_sensitive() {
        let canneal = Benchmark::Canneal.profile();
        let swaptions = Benchmark::Swaptions.profile();
        let slow_c = canneal.normalized_time(cfg(8, 2, CoreFrequency::F2_6));
        let slow_s = swaptions.normalized_time(cfg(8, 2, CoreFrequency::F2_6));
        assert!(
            slow_c < slow_s,
            "canneal {slow_c} should suffer less from DVFS than swaptions {slow_s}"
        );
    }

    #[test]
    fn fig3_spread_matches_paper_shape() {
        // At (2,4,fmax) the scalable kernels sit near/above the 2× QoS limit
        // while nothing exceeds ~2.1× of it (the plot's y-range is 0..2.1
        // after normalizing by the 2× limit, i.e. 0..4.2× baseline).
        for b in Benchmark::ALL {
            let t = b.profile().normalized_time(cfg(2, 2, CoreFrequency::F3_2));
            assert!(t > 1.2 && t < 4.2, "{b}: (2,4,fmax) time {t}");
        }
        // Scalable kernels violate 2× at (2,4) by a wide margin …
        let swap = Benchmark::Swaptions.profile();
        assert!(swap.normalized_time(cfg(2, 2, CoreFrequency::F3_2)) > 3.0);
        // … while bandwidth-saturated ones sit just above the limit.
        let sc = Benchmark::Streamcluster.profile();
        let t_sc = sc.normalized_time(cfg(2, 2, CoreFrequency::F3_2));
        assert!((2.0..2.6).contains(&t_sc), "streamcluster (2,4): {t_sc}");
        // At (4,8,fmax) everything meets 2× (the paper's Fig. 3 shape).
        for b in Benchmark::ALL {
            assert!(b.profile().normalized_time(cfg(4, 2, CoreFrequency::F3_2)) < 2.0);
        }
    }

    #[test]
    fn smt_helps_more_for_memory_bound_below_saturation() {
        // At 2 cores neither kernel saturates bandwidth yet, so the
        // latency-hiding SMT gain of the memory-bound kernel shows through.
        let sc = Benchmark::Streamcluster.profile();
        let fa = Benchmark::Fluidanimate.profile();
        let gain = |p: &BenchProfile| {
            p.normalized_time(cfg(2, 1, CoreFrequency::F3_2))
                / p.normalized_time(cfg(2, 2, CoreFrequency::F3_2))
        };
        assert!(gain(&sc) > gain(&fa));
    }

    proptest! {
        #[test]
        fn execution_time_is_positive_and_finite(
            nc in 1u8..=8, tpc in 1u8..=2, fi in 0usize..3,
            bi in 0usize..13,
        ) {
            let p = Benchmark::ALL[bi].profile();
            let c = cfg(nc, tpc, CoreFrequency::ALL[fi]);
            let t = p.normalized_time(c);
            prop_assert!(t.is_finite() && t > 0.0);
        }

        #[test]
        fn more_resources_never_hurt(
            nc in 1u8..8, tpc in 1u8..=2, fi in 0usize..3, bi in 0usize..13,
        ) {
            // Adding a core (same tpc, same f) never slows the model down.
            let p = Benchmark::ALL[bi].profile();
            let f = CoreFrequency::ALL[fi];
            let t_small = p.normalized_time(cfg(nc, tpc, f));
            let t_big = p.normalized_time(cfg(nc + 1, tpc, f));
            prop_assert!(t_big <= t_small + 1e-12);
        }
    }
}
