//! Property tests across the whole configuration lattice: the execution
//! and power models must stay physically ordered for every benchmark.

use proptest::prelude::*;
use tps_power::{CState, CoreFrequency};
use tps_workload::{profile_application, profile_config, Benchmark, WorkloadConfig};

proptest! {
    /// Package power decomposes exactly into its parts, for every
    /// configuration and C-state.
    #[test]
    fn package_power_decomposition(
        bi in 0usize..13, nc in 1u8..=8, tpc in 1u8..=2, fi in 0usize..3,
        ci in 0usize..3,
    ) {
        let cstates = [CState::Poll, CState::C1, CState::C6];
        let cfg = WorkloadConfig::new(nc, tpc, CoreFrequency::ALL[fi]).unwrap();
        let row = profile_config(Benchmark::ALL[bi], cfg, cstates[ci]);
        let reassembled = row.active_core_power * f64::from(nc)
            + row.idle_core_power * f64::from(8 - nc)
            + row.llc_power
            + row.mem_io_power;
        prop_assert!((reassembled - row.package_power).abs().value() < 1e-9);
    }

    /// Power is monotone in frequency for a fixed shape, and execution
    /// time is antitone — DVFS is a true trade-off at every point.
    #[test]
    fn dvfs_is_a_real_tradeoff(bi in 0usize..13, nc in 1u8..=8, tpc in 1u8..=2) {
        let b = Benchmark::ALL[bi];
        let mut last_power = 0.0;
        let mut last_time = f64::INFINITY;
        for f in CoreFrequency::ALL {
            let cfg = WorkloadConfig::new(nc, tpc, f).unwrap();
            let row = profile_config(b, cfg, CState::Poll);
            prop_assert!(row.package_power.value() > last_power);
            prop_assert!(row.normalized_time < last_time + 1e-12);
            last_power = row.package_power.value();
            last_time = row.normalized_time;
        }
    }

    /// The full 48-point profile is unique and sorted consistently:
    /// no two configurations share the same (power, time) pair by accident
    /// of the model collapsing.
    #[test]
    fn profile_rows_are_distinct(bi in 0usize..13) {
        let rows = profile_application(Benchmark::ALL[bi], CState::Poll);
        prop_assert_eq!(rows.len(), 48);
        for (i, a) in rows.iter().enumerate() {
            for b in &rows[i + 1..] {
                let same_power =
                    (a.package_power - b.package_power).abs().value() < 1e-12;
                let same_time = (a.normalized_time - b.normalized_time).abs() < 1e-12;
                prop_assert!(
                    !(same_power && same_time),
                    "configs {} and {} are indistinguishable",
                    a.config,
                    b.config
                );
            }
        }
    }
}
