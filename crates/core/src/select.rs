//! Configuration selection: Algorithm 1 (lines 1–6) and the Pack&Cap
//! baseline [27].

use tps_power::CState;
use tps_units::Watts;
use tps_workload::{profile_application, Benchmark, ConfigProfile, QosClass};

/// A strategy choosing one `(Nc, Nt, f)` configuration per application.
pub trait ConfigSelector {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Picks a configuration for `bench` under `qos`, with idle cores
    /// parked in `idle_cstate`. Returns `None` if no configuration meets
    /// the QoS constraint.
    fn select(&self, bench: Benchmark, qos: QosClass, idle_cstate: CState)
        -> Option<ConfigProfile>;
}

/// Algorithm 1, lines 1–6: sort the profiled configurations by package
/// power ascending and take the first whose QoS exceeds the requirement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPowerSelector;

impl ConfigSelector for MinPowerSelector {
    fn name(&self) -> &'static str {
        "proposed (Algorithm 1)"
    }

    fn select(
        &self,
        bench: Benchmark,
        qos: QosClass,
        idle_cstate: CState,
    ) -> Option<ConfigProfile> {
        let mut rows = profile_application(bench, idle_cstate);
        rows.sort_by(|a, b| a.package_power.value().total_cmp(&b.package_power.value()));
        rows.into_iter().find(|r| qos.is_met_by(r.normalized_time))
    }
}

/// The Pack & Cap baseline (Cochran et al., MICRO'11 \[27\]): pack threads
/// onto the fewest cores (two hardware threads per core), then pick the
/// operating point by DVFS — lowest power among QoS-feasible points under
/// an optional package power cap.
///
/// Packing minimises the number of active cores, which concentrates heat —
/// the behaviour the paper's thermal-aware mapping is compared against.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PackAndCapSelector {
    /// Optional package power cap; configurations above it are discarded
    /// (if none survives, the cap is ignored — the job must still run).
    pub power_cap: Option<Watts>,
}

impl ConfigSelector for PackAndCapSelector {
    fn name(&self) -> &'static str {
        "pack & cap [27]"
    }

    fn select(
        &self,
        bench: Benchmark,
        qos: QosClass,
        idle_cstate: CState,
    ) -> Option<ConfigProfile> {
        let rows = profile_application(bench, idle_cstate);
        let feasible: Vec<&ConfigProfile> = rows
            .iter()
            .filter(|r| qos.is_met_by(r.normalized_time))
            .collect();
        let capped: Vec<&ConfigProfile> = match self.power_cap {
            Some(cap) => {
                let under: Vec<&ConfigProfile> = feasible
                    .iter()
                    .copied()
                    .filter(|r| r.package_power <= cap)
                    .collect();
                if under.is_empty() {
                    feasible
                } else {
                    under
                }
            }
            None => feasible,
        };
        capped
            .into_iter()
            .min_by(|a, b| {
                // Fewest cores first (thread packing), preferring SMT-packed
                // (2 threads/core) points, then lowest power.
                (a.config.n_cores(), 3 - a.config.threads_per_core())
                    .cmp(&(b.config.n_cores(), 3 - b.config.threads_per_core()))
                    .then(a.package_power.value().total_cmp(&b.package_power.value()))
            })
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_power::CoreFrequency;

    #[test]
    fn one_x_forces_the_native_configuration() {
        // At 1× QoS no slowdown is allowed: only (8,16,fmax) qualifies —
        // "all approaches run the workload with fmax and maximum number of
        // available cores and threads" (Sec. VIII-A).
        for b in [Benchmark::X264, Benchmark::Canneal] {
            let sel = MinPowerSelector
                .select(b, QosClass::OneX, CState::Poll)
                .unwrap();
            assert_eq!(sel.config.n_cores(), 8);
            assert_eq!(sel.config.total_threads(), 16);
            assert_eq!(sel.config.frequency(), CoreFrequency::F3_2);
        }
    }

    #[test]
    fn relaxed_qos_saves_power() {
        for b in Benchmark::ALL {
            let p1 = MinPowerSelector
                .select(b, QosClass::OneX, CState::C1)
                .unwrap()
                .package_power;
            let p3 = MinPowerSelector
                .select(b, QosClass::ThreeX, CState::C1)
                .unwrap()
                .package_power;
            assert!(p3 < p1, "{b}: {p3} !< {p1}");
        }
    }

    #[test]
    fn selected_config_always_meets_qos() {
        for b in Benchmark::ALL {
            for qos in QosClass::ALL {
                let sel = MinPowerSelector.select(b, qos, CState::Poll).unwrap();
                assert!(qos.is_met_by(sel.normalized_time), "{b} {qos}");
            }
        }
    }

    #[test]
    fn pack_and_cap_uses_fewer_cores_than_min_power() {
        // Packing prefers fewer, faster cores; Algorithm 1 prefers more,
        // slower ones. At 3× the contrast is visible for scalable kernels.
        let b = Benchmark::Swaptions;
        let packed = PackAndCapSelector::default()
            .select(b, QosClass::ThreeX, CState::C1)
            .unwrap();
        let minp = MinPowerSelector
            .select(b, QosClass::ThreeX, CState::C1)
            .unwrap();
        assert!(
            packed.config.n_cores() <= minp.config.n_cores(),
            "packed {} vs min-power {}",
            packed.config,
            minp.config
        );
        assert!(qos_ok(&packed));
        fn qos_ok(r: &ConfigProfile) -> bool {
            QosClass::ThreeX.is_met_by(r.normalized_time)
        }
    }

    #[test]
    fn power_cap_filters_when_possible() {
        let b = Benchmark::X264;
        let uncapped = PackAndCapSelector::default()
            .select(b, QosClass::TwoX, CState::Poll)
            .unwrap();
        let capped = PackAndCapSelector {
            power_cap: Some(uncapped.package_power - Watts::new(1.0)),
        }
        .select(b, QosClass::TwoX, CState::Poll)
        .unwrap();
        assert!(capped.package_power < uncapped.package_power);
        // An impossible cap falls back to the feasible set.
        let impossible = PackAndCapSelector {
            power_cap: Some(Watts::new(1.0)),
        }
        .select(b, QosClass::TwoX, CState::Poll);
        assert!(impossible.is_some());
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(
            MinPowerSelector.name(),
            PackAndCapSelector::default().name()
        );
    }
}
