//! Co-scheduling several applications on one CPU.
//!
//! The paper evaluates one application per server (Algorithm 1 assigns
//! `A_i` to `CPU_i`); this module extends the same machinery to consolidate
//! a set of applications onto a single package: each application receives a
//! disjoint core set, the strictest QoS class governs the idle C-state, and
//! the mapping policy places each application's threads treating the
//! previously placed ones as occupied heat sources.

use crate::heat;
use crate::mapping::{MappingContext, MappingPolicy};
use crate::server::{RunError, Server};
use tps_power::{CState, DiePowerBreakdown};
use tps_thermal::ThermalMetrics;
use tps_thermosyphon::CoupledSolution;
use tps_units::Watts;
use tps_workload::{profile_application, Benchmark, ConfigProfile, QosClass};

/// One application's share of a colocated placement.
#[derive(Debug, Clone)]
pub struct AppAssignment {
    /// The application.
    pub bench: Benchmark,
    /// Its QoS class.
    pub qos: QosClass,
    /// The selected configuration (with the runtime idle C-state applied).
    pub profile: ConfigProfile,
    /// The cores this application's threads run on.
    pub cores: Vec<u8>,
}

/// The outcome of a colocated run.
#[derive(Debug, Clone)]
pub struct ColocatedOutcome {
    /// Per-application assignments, in placement order (strictest first).
    pub assignments: Vec<AppAssignment>,
    /// The C-state the remaining idle cores were parked in.
    pub idle_cstate: CState,
    /// The combined die power breakdown.
    pub breakdown: DiePowerBreakdown,
    /// The converged coupled solution.
    pub solution: CoupledSolution,
    /// Die metrics over the die outline.
    pub die: ThermalMetrics,
    /// Package metrics over the spreader.
    pub package: ThermalMetrics,
}

impl Server {
    /// Consolidates several applications onto this server.
    ///
    /// Applications are placed strictest-QoS-first; each receives the
    /// minimum-power configuration that meets its QoS within the cores
    /// still free. Shared resources are approximated pessimistically: the
    /// LLC and memory/IO power are the *maximum* demand across the
    /// colocated applications (they are shared, not additive).
    ///
    /// # Errors
    ///
    /// [`RunError::NoFeasibleConfig`] (for the first application that
    /// cannot fit) or [`RunError::Coupling`] from the physics solve.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn run_colocated(
        &self,
        apps: &[(Benchmark, QosClass)],
        policy: &dyn MappingPolicy,
    ) -> Result<ColocatedOutcome, RunError> {
        assert!(
            !apps.is_empty(),
            "colocation needs at least one application"
        );
        // Strictest QoS governs the shared idle C-state and goes first.
        let mut ordered: Vec<(Benchmark, QosClass)> = apps.to_vec();
        ordered.sort_by_key(|&(_, qos)| qos);
        let idle_cstate = CState::deepest_within(
            ordered[0].1.idle_delay_tolerance(), // strictest app's tolerance
        );

        let mut occupied: Vec<u8> = Vec::new();
        let mut assignments = Vec::with_capacity(ordered.len());
        for &(bench, qos) in &ordered {
            let free = 8 - occupied.len() as u8;
            // Algorithm 1 under a core budget: min-power, QoS-feasible,
            // fitting in the free cores (profiled with POLL idles, like the
            // single-app path).
            let mut rows = profile_application(bench, CState::Poll);
            rows.retain(|r| r.config.n_cores() <= free && qos.is_met_by(r.normalized_time));
            rows.sort_by(|a, b| a.package_power.value().total_cmp(&b.package_power.value()));
            let selected = rows
                .into_iter()
                .next()
                .ok_or(RunError::NoFeasibleConfig { bench, qos })?;
            let profile = tps_workload::profile_config(bench, selected.config, idle_cstate);
            let ctx = MappingContext::new(
                self.topology(),
                self.simulation().design().orientation(),
                idle_cstate,
            )
            .with_occupied(occupied.clone());
            let cores = policy.select_cores(profile.config.n_cores() as usize, &ctx);
            occupied.extend_from_slice(&cores);
            assignments.push(AppAssignment {
                bench,
                qos,
                profile,
                cores,
            });
        }

        // Combine the per-app breakdowns: cores are disjoint; the LLC and
        // memory/IO paths are shared, so take the maximum demand.
        let mut breakdown = DiePowerBreakdown::zero();
        let mut llc = Watts::ZERO;
        let mut mem_io = Watts::ZERO;
        for a in &assignments {
            let part = heat::breakdown_for_mapping(&a.profile, &a.cores);
            for (acc, c) in breakdown.core.iter_mut().zip(&part.core) {
                *acc = acc.max(*c);
            }
            llc = llc.max(a.profile.llc_power);
            mem_io = mem_io.max(a.profile.mem_io_power);
        }
        breakdown.llc = llc;
        breakdown.mem_ctl = mem_io * 0.5;
        breakdown.uncore_io = mem_io * 0.5;

        let (solution, die, package) = self.solve_breakdown(&breakdown)?;
        Ok(ColocatedOutcome {
            assignments,
            idle_cstate,
            breakdown,
            solution,
            die,
            package,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProposedMapping;

    fn server() -> Server {
        Server::xeon(2.0)
    }

    #[test]
    fn two_apps_get_disjoint_cores_and_meet_qos() {
        let out = server()
            .run_colocated(
                &[
                    (Benchmark::Canneal, QosClass::ThreeX),
                    (Benchmark::Swaptions, QosClass::TwoX),
                ],
                &ProposedMapping,
            )
            .expect("colocation fits");
        assert_eq!(out.assignments.len(), 2);
        let mut all: Vec<u8> = out
            .assignments
            .iter()
            .flat_map(|a| a.cores.clone())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "core sets must be disjoint");
        for a in &out.assignments {
            assert!(
                a.qos.is_met_by(a.profile.normalized_time),
                "{} misses {}",
                a.bench,
                a.qos
            );
        }
        // Strictest (2x) app placed first.
        assert_eq!(out.assignments[0].qos, QosClass::TwoX);
        // The shared idle C-state obeys the strictest tolerance.
        assert_eq!(out.idle_cstate, CState::C1e);
    }

    #[test]
    fn infeasible_when_cores_run_out() {
        // Three 1×-QoS apps each demand all 8 cores.
        let apps = [
            (Benchmark::X264, QosClass::OneX),
            (Benchmark::Vips, QosClass::OneX),
        ];
        let err = server().run_colocated(&apps, &ProposedMapping).unwrap_err();
        assert!(matches!(err, RunError::NoFeasibleConfig { .. }));
    }

    #[test]
    fn colocated_die_is_hotter_than_either_alone() {
        let server = server();
        let apps = [
            (Benchmark::Ferret, QosClass::ThreeX),
            (Benchmark::Raytrace, QosClass::ThreeX),
        ];
        let together = server.run_colocated(&apps, &ProposedMapping).expect("fits");
        for &(bench, qos) in &apps {
            let alone = server
                .run(bench, qos, &crate::MinPowerSelector, &ProposedMapping)
                .expect("runs");
            assert!(
                together.die.max.value() >= alone.die.max.value() - 0.5,
                "{bench}: together {} vs alone {}",
                together.die.max,
                alone.die.max
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_app_list_panics() {
        let _ = server().run_colocated(&[], &ProposedMapping);
    }
}
