//! The paper's contribution: QoS-aware configuration selection and
//! thermal-aware workload mapping for two-phase-cooled servers.
//!
//! Pipeline (the paper's Algorithm 1 plus Sec. VII):
//!
//! 1. the tolerable idle-core delay `d_i` (from the QoS class) picks the
//!    deepest usable C-state,
//! 2. [`MinPowerSelector`] sorts the profiled `(Nc, Nt, f)` space by power
//!    and picks the first configuration meeting the QoS constraint,
//! 3. [`heat::breakdown_for_mapping`] estimates per-component heat,
//! 4. a [`MappingPolicy`] places the threads: the paper's C-state-aware
//!    [`ProposedMapping`], or the baselines — [`CoskunBalancing`] \[9\],
//!    [`InletFirstMapping`] \[7\], [`PackedMapping`] (the naive scenario 3),
//! 5. [`Server::run`] closes the loop through the coupled
//!    thermosyphon/thermal simulation and reports the die/package metrics
//!    of Table II,
//! 6. at runtime, [`RuntimeController`] reacts to `T_CASE` emergencies:
//!    lower the frequency if QoS allows, otherwise open the water valve
//!    (Fig. 4).
//!
//! Above the single server, [`plan_rack`] and [`RunOutcome::cooling_load`]
//! feed rack-level accounting (`tps-cooling`), and the `tps-cluster` crate
//! drives whole fleets of these servers through job-arrival traces.
//!
//! ```no_run
//! use tps_core::{MinPowerSelector, ProposedMapping, Server};
//! use tps_workload::{Benchmark, QosClass};
//!
//! let server = Server::xeon(1.0); // 1 mm simulation grid
//! let outcome = server.run(
//!     Benchmark::X264,
//!     QosClass::TwoX,
//!     &MinPowerSelector,
//!     &ProposedMapping,
//! )?;
//! println!("die: {}", outcome.die);
//! # Ok::<(), tps_core::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colocate;
mod controller;
pub mod heat;
mod mapping;
mod rack;
mod select;
mod server;

pub use colocate::{AppAssignment, ColocatedOutcome};
pub use controller::{ControlAction, RuntimeController};
pub use mapping::{
    CoskunBalancing, InletFirstMapping, MappingContext, MappingPolicy, PackedMapping,
    ProposedMapping,
};
pub use rack::{plan_rack, rack_cooling_loads};
pub use select::{ConfigSelector, MinPowerSelector, PackAndCapSelector};
pub use server::{RunError, RunOutcome, Server, ServerBuilder};

/// The paper's case-temperature constraint `T_CASE_MAX` (Sec. VI-B).
pub const T_CASE_MAX: tps_units::Celsius = tps_units::Celsius::new(85.0);
