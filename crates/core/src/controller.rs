//! The runtime thermal controller of Fig. 4 / Sec. VII (last paragraph).

use tps_thermosyphon::FlowValve;
use tps_units::{Celsius, KgPerHour, TempDelta};
use tps_workload::{Benchmark, QosClass, WorkloadConfig};

/// What the controller decided in one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Everything nominal.
    NoAction,
    /// Frequency lowered to the contained level (QoS still holds).
    LoweredFrequency(WorkloadConfig),
    /// Valve opened; the new water flow.
    IncreasedFlow(KgPerHour),
    /// Valve eased back after sustained headroom; the new water flow.
    RelaxedFlow(KgPerHour),
    /// All actuators exhausted — the job must be migrated or throttled
    /// beyond QoS.
    Emergency,
}

/// Per-thermosyphon runtime controller.
///
/// The paper: "during runtime, we increase water flow rate only if a
/// thermal emergency (T_CASE ≥ T_CASE_MAX) occurs and lowering the
/// frequency violates the QoS requirement" — i.e. DVFS is the first
/// responder, the valve the second, and both act only on emergencies.
/// A hysteresis band eases the valve back once the package runs cold.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeController {
    t_case_max: Celsius,
    hysteresis: TempDelta,
    valve: FlowValve,
}

impl RuntimeController {
    /// A controller with the paper's 85 °C limit, an 8 K relax band and the
    /// prototype valve.
    pub fn paper() -> Self {
        Self::new(crate::T_CASE_MAX, TempDelta::new(8.0), FlowValve::paper())
    }

    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the hysteresis band is negative.
    pub fn new(t_case_max: Celsius, hysteresis: TempDelta, valve: FlowValve) -> Self {
        assert!(hysteresis.value() >= 0.0, "hysteresis must be non-negative");
        Self {
            t_case_max,
            hysteresis,
            valve,
        }
    }

    /// The configured case-temperature limit.
    pub fn t_case_max(&self) -> Celsius {
        self.t_case_max
    }

    /// Current valve flow.
    pub fn flow(&self) -> KgPerHour {
        self.valve.flow()
    }

    /// `true` if `t_case` constitutes a thermal emergency.
    pub fn is_emergency(&self, t_case: Celsius) -> bool {
        t_case >= self.t_case_max
    }

    /// One control epoch.
    ///
    /// On an emergency: lower the core frequency if the resulting
    /// configuration still meets QoS; otherwise open the valve; if the
    /// valve is already fully open, report [`ControlAction::Emergency`].
    /// Far below the limit, ease the valve back one step.
    pub fn evaluate(
        &mut self,
        t_case: Celsius,
        bench: Benchmark,
        qos: QosClass,
        config: WorkloadConfig,
    ) -> ControlAction {
        if self.is_emergency(t_case) {
            if let Some(lower) = config.frequency().lower() {
                let candidate = config.with_frequency(lower);
                let slowdown = bench.profile().normalized_time(candidate);
                if qos.is_met_by(slowdown) {
                    return ControlAction::LoweredFrequency(candidate);
                }
            }
            if self.valve.increase() {
                return ControlAction::IncreasedFlow(self.valve.flow());
            }
            return ControlAction::Emergency;
        }
        if t_case < self.t_case_max - self.hysteresis && self.valve.decrease() {
            return ControlAction::RelaxedFlow(self.valve.flow());
        }
        ControlAction::NoAction
    }
}

impl Default for RuntimeController {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_power::CoreFrequency;

    fn cfg(f: CoreFrequency) -> WorkloadConfig {
        WorkloadConfig::new(8, 2, f).unwrap()
    }

    #[test]
    fn nominal_temperature_no_action() {
        let mut c = RuntimeController::paper();
        let a = c.evaluate(
            Celsius::new(80.0),
            Benchmark::X264,
            QosClass::TwoX,
            cfg(CoreFrequency::F3_2),
        );
        assert_eq!(a, ControlAction::NoAction);
    }

    #[test]
    fn emergency_prefers_dvfs_when_qos_allows() {
        let mut c = RuntimeController::paper();
        let a = c.evaluate(
            Celsius::new(86.0),
            Benchmark::X264,
            QosClass::TwoX, // 2× slack: 2.9 GHz still fine
            cfg(CoreFrequency::F3_2),
        );
        match a {
            ControlAction::LoweredFrequency(new_cfg) => {
                assert_eq!(new_cfg.frequency(), CoreFrequency::F2_9);
            }
            other => panic!("expected a DVFS step, got {other:?}"),
        }
        // The valve did not move.
        assert_eq!(c.flow(), KgPerHour::new(7.0));
    }

    #[test]
    fn emergency_opens_valve_when_qos_is_tight() {
        let mut c = RuntimeController::paper();
        // 1× QoS: any slowdown violates it, so DVFS is off the table.
        let a = c.evaluate(
            Celsius::new(86.0),
            Benchmark::X264,
            QosClass::OneX,
            cfg(CoreFrequency::F3_2),
        );
        assert_eq!(a, ControlAction::IncreasedFlow(KgPerHour::new(8.5)));
    }

    #[test]
    fn exhausted_actuators_escalate() {
        let mut c = RuntimeController::paper();
        // Drain the valve.
        for _ in 0..10 {
            let _ = c.evaluate(
                Celsius::new(90.0),
                Benchmark::X264,
                QosClass::OneX,
                cfg(CoreFrequency::F2_6), // already at the floor
            );
        }
        let a = c.evaluate(
            Celsius::new(90.0),
            Benchmark::X264,
            QosClass::OneX,
            cfg(CoreFrequency::F2_6),
        );
        assert_eq!(a, ControlAction::Emergency);
    }

    #[test]
    fn cold_package_relaxes_the_valve() {
        let mut c = RuntimeController::paper();
        // Open once.
        let _ = c.evaluate(
            Celsius::new(86.0),
            Benchmark::X264,
            QosClass::OneX,
            cfg(CoreFrequency::F3_2),
        );
        assert_eq!(c.flow(), KgPerHour::new(8.5));
        // Deep below the band: relax.
        let a = c.evaluate(
            Celsius::new(60.0),
            Benchmark::X264,
            QosClass::OneX,
            cfg(CoreFrequency::F3_2),
        );
        assert_eq!(a, ControlAction::RelaxedFlow(KgPerHour::new(7.0)));
        // At the floor it stays put.
        let a = c.evaluate(
            Celsius::new(60.0),
            Benchmark::X264,
            QosClass::OneX,
            cfg(CoreFrequency::F3_2),
        );
        assert_eq!(a, ControlAction::NoAction);
    }
}
