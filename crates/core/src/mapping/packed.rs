//! The naive consecutive-core mapping (Fig. 6 scenario 3).

use super::{check_core_count, MappingContext, MappingPolicy};

/// Fill physical core slots consecutively down the west column, then the
/// centre column — what an OS scheduler does with a linear core list and
/// no thermal awareness. Produces the dense hot cluster of Fig. 6
/// scenario 3 and serves as the "no policy" control in the ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedMapping;

/// West column top-to-bottom (5, 6, 7, 8), then centre column (1, 2, 3, 4).
const PACK_ORDER: [u8; 8] = [5, 6, 7, 8, 1, 2, 3, 4];

impl MappingPolicy for PackedMapping {
    fn name(&self) -> &'static str {
        "packed (scenario 3)"
    }

    fn select_cores(&self, n: usize, ctx: &MappingContext<'_>) -> Vec<u8> {
        check_core_count(n);
        let free: Vec<u8> = PACK_ORDER
            .into_iter()
            .filter(|c| !ctx.occupied.contains(c))
            .collect();
        assert!(free.len() >= n, "not enough free cores for {n} threads");
        free[..n].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::test_util::exhaustive_contract;
    use tps_floorplan::CoreTopology;
    use tps_power::CState;
    use tps_thermosyphon::Orientation;

    #[test]
    fn contract() {
        exhaustive_contract(&PackedMapping);
    }

    #[test]
    fn packs_adjacent_rows_of_one_column() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::Poll);
        let four = PackedMapping.select_cores(4, &ctx);
        assert_eq!(four, vec![5, 6, 7, 8]);
        // Worst case for heat exchange: every pair of consecutive picks is
        // a direct vertical neighbour.
        for w in four.windows(2) {
            assert!((topo.distance(w[0], w[1]) - 2.254e-3).abs() < 1e-5);
        }
    }
}
