//! Thread-to-core mapping policies (Sec. VII and the Fig. 6 scenarios).

mod coskun;
mod inlet_first;
mod packed;
mod proposed;

pub use coskun::CoskunBalancing;
pub use inlet_first::InletFirstMapping;
pub use packed::PackedMapping;
pub use proposed::ProposedMapping;

use tps_floorplan::CoreTopology;
use tps_power::CState;
use tps_thermosyphon::Orientation;

/// Everything a mapping policy may consult when placing threads.
#[derive(Debug, Clone)]
pub struct MappingContext<'a> {
    /// The core-slot lattice of the die.
    pub topology: &'a CoreTopology,
    /// The thermosyphon's channel orientation (which cores share channels).
    pub orientation: Orientation,
    /// The C-state idle cores will sit in (drives the paper's policy).
    pub idle_cstate: CState,
    /// Most recent per-core temperatures (°C, index 0 = Core1), when the
    /// runtime has them — used by temperature-history policies like \[9\].
    pub core_temps: Option<[f64; 8]>,
    /// Cores already running other applications (co-scheduling): policies
    /// must not select them and should treat them as active heat sources.
    pub occupied: Vec<u8>,
}

impl<'a> MappingContext<'a> {
    /// A context with no temperature history and no occupied cores.
    pub fn new(topology: &'a CoreTopology, orientation: Orientation, idle_cstate: CState) -> Self {
        Self {
            topology,
            orientation,
            idle_cstate,
            core_temps: None,
            occupied: Vec::new(),
        }
    }

    /// This context with cores already claimed by other applications.
    ///
    /// # Panics
    ///
    /// Panics if `occupied` holds duplicates or indices outside `1..=8`.
    pub fn with_occupied(mut self, occupied: Vec<u8>) -> Self {
        let mut seen = [false; 8];
        for &c in &occupied {
            assert!((1..=8).contains(&c), "occupied core {c} outside 1..=8");
            assert!(!seen[c as usize - 1], "occupied core {c} duplicated");
            seen[c as usize - 1] = true;
        }
        self.occupied = occupied;
        self
    }

    /// The channel band a core belongs to: its row for east–west channels,
    /// its column for north–south channels.
    pub fn band_of(&self, core: u8) -> usize {
        let slot = self.topology.slot_of(core);
        if self.orientation.is_horizontal() {
            slot.row
        } else {
            slot.col
        }
    }
}

/// A strategy placing `n` threads' worth of active cores on the die.
pub trait MappingPolicy {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Picks `n` distinct cores (1-based indices).
    ///
    /// # Panics
    ///
    /// Implementations panic if `n` is outside `1..=8`.
    fn select_cores(&self, n: usize, ctx: &MappingContext<'_>) -> Vec<u8>;
}

/// Shared helper: asserts `n` is mappable.
pub(crate) fn check_core_count(n: usize) {
    assert!((1..=8).contains(&n), "cannot map {n} cores onto 8 slots");
}

/// Shared helper: greedy spreading. Repeatedly picks, among the unmapped
/// cores, the one minimising the key tuple
/// `(band-occupancy-after [if banded], non-corner,
/// −min-distance-to-active, index)` — corners outrank raw distance, which
/// matches the paper's "starting from the corners" and avoids µm-scale
/// distance ties deciding the placement.
///
/// With `banded = false` this is the classic corner-first balanced spread
/// (Fig. 6 scenario 2); with `banded = true` it first exhausts empty
/// channel bands (scenario 1: "fewer active cores on the same horizontal
/// line").
pub(crate) fn greedy_spread(n: usize, ctx: &MappingContext<'_>, banded: bool) -> Vec<u8> {
    check_core_count(n);
    assert!(
        n + ctx.occupied.len() <= 8,
        "cannot place {n} cores with {} already occupied",
        ctx.occupied.len()
    );
    let topo = ctx.topology;
    // Occupied cores seed the active set: they are heat sources to avoid
    // and they already load their channel bands.
    let mut active: Vec<u8> = ctx.occupied.clone();
    let mut band_occupancy = [0usize; 5];
    for &c in &ctx.occupied {
        band_occupancy[ctx.band_of(c)] += 1;
    }
    let target = n + ctx.occupied.len();
    while active.len() < target {
        let best = topo
            .cores()
            .filter(|c| !active.contains(c))
            .min_by(|&a, &b| {
                let key = |c: u8| {
                    let occ = if banded {
                        band_occupancy[ctx.band_of(c)]
                    } else {
                        0
                    };
                    let min_dist = active
                        .iter()
                        .map(|&o| topo.distance(c, o))
                        .fold(f64::INFINITY, f64::min);
                    let corner_penalty = usize::from(!topo.is_corner(topo.slot_of(c)));
                    (occ, corner_penalty, -min_dist, c)
                };
                let (ao, ac, ad, ai) = key(a);
                let (bo, bc, bd, bi) = key(b);
                ao.cmp(&bo)
                    .then(ac.cmp(&bc))
                    .then(ad.total_cmp(&bd))
                    .then(ai.cmp(&bi))
            })
            .expect("fewer than 8 cores mapped, so a candidate exists");
        band_occupancy[ctx.band_of(best)] += 1;
        active.push(best);
    }
    active.split_off(ctx.occupied.len())
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Validates the fundamental mapping contract.
    pub fn assert_valid_mapping(cores: &[u8], n: usize) {
        assert_eq!(cores.len(), n, "mapping must return exactly n cores");
        let mut seen = std::collections::HashSet::new();
        for &c in cores {
            assert!((1..=8).contains(&c), "core {c} out of range");
            assert!(seen.insert(c), "core {c} duplicated");
        }
    }

    /// Exercises a policy across all n, orientations and C-states.
    pub fn exhaustive_contract(policy: &dyn MappingPolicy) {
        let topo = CoreTopology::xeon();
        for orientation in Orientation::ALL {
            for cstate in [CState::Poll, CState::C1, CState::C6] {
                let ctx = MappingContext::new(&topo, orientation, cstate);
                for n in 1..=8 {
                    let cores = policy.select_cores(n, &ctx);
                    assert_valid_mapping(&cores, n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_follows_orientation() {
        let topo = CoreTopology::xeon();
        let horizontal = MappingContext::new(&topo, Orientation::InletEast, CState::Poll);
        let vertical = MappingContext::new(&topo, Orientation::InletNorth, CState::Poll);
        // Core 1 sits at (col 1, row 0).
        assert_eq!(horizontal.band_of(1), 0);
        assert_eq!(vertical.band_of(1), 1);
        // Core 8 sits at (col 0, row 3).
        assert_eq!(horizontal.band_of(8), 3);
        assert_eq!(vertical.band_of(8), 0);
    }

    #[test]
    fn greedy_banded_fills_distinct_rows_first() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::C1);
        let four = greedy_spread(4, &ctx, true);
        assert_eq!(topo.row_occupancy(&four), [1, 1, 1, 1]);
    }

    #[test]
    fn greedy_unbanded_takes_the_corners() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::Poll);
        let mut four = greedy_spread(4, &ctx, false);
        four.sort_unstable();
        assert_eq!(four, vec![1, 4, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "cannot map")]
    fn zero_cores_rejected() {
        check_core_count(0);
    }
}
