//! The inlet-first mapping baseline of Sabry et al. (TCAD'11, the paper's
//! reference [7]), designed for inter-layer liquid-cooled 3-D stacks.

use super::{check_core_count, MappingContext, MappingPolicy};
use tps_thermosyphon::Orientation;

/// Map threads to the cores closest to the coolant inlet first.
///
/// For inter-layer liquid cooling this is sound: the coolant heats up along
/// its path, so inlet-side cores see the coldest fluid. For a gravity-driven
/// two-phase thermosyphon it backfires (Sec. VIII-A): boiling heat removal
/// *improves* with moderate vapour quality, the package/spreader blur the
/// inlet advantage, and packing all threads against one edge creates a
/// dense cluster of hot spots — the paper's worst baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InletFirstMapping;

impl MappingPolicy for InletFirstMapping {
    fn name(&self) -> &'static str {
        "inlet-first [7]"
    }

    fn select_cores(&self, n: usize, ctx: &MappingContext<'_>) -> Vec<u8> {
        check_core_count(n);
        let topo = ctx.topology;
        let mut cores: Vec<u8> = (1..=8).filter(|c| !ctx.occupied.contains(c)).collect();
        assert!(cores.len() >= n, "not enough free cores for {n} threads");
        // Distance from the inlet along the flow axis, ascending; ties by
        // the perpendicular coordinate then index for determinism.
        cores.sort_by(|&a, &b| {
            let key = |c: u8| {
                let (x, y) = topo.center_of(c);
                match ctx.orientation {
                    Orientation::InletEast => -x,
                    Orientation::InletWest => x,
                    Orientation::InletNorth => -y,
                    Orientation::InletSouth => y,
                }
            };
            key(a).total_cmp(&key(b)).then(a.cmp(&b))
        });
        cores.truncate(n);
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::test_util::exhaustive_contract;
    use tps_floorplan::CoreTopology;
    use tps_power::CState;

    #[test]
    fn contract() {
        exhaustive_contract(&InletFirstMapping);
    }

    #[test]
    fn inlet_east_packs_the_center_column() {
        // Cores 1–4 (column 1) sit closest to the east inlet.
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::Poll);
        let mut four = InletFirstMapping.select_cores(4, &ctx);
        four.sort_unstable();
        assert_eq!(four, vec![1, 2, 3, 4], "a packed column: scenario-3-like");
        // All four share a single column — maximally co-channel under
        // Design 2 and maximally clustered under Design 1.
        let cols: std::collections::HashSet<usize> =
            four.iter().map(|&c| topo.slot_of(c).col).collect();
        assert_eq!(cols.len(), 1);
    }

    #[test]
    fn inlet_north_packs_the_top_rows() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletNorth, CState::Poll);
        let four = InletFirstMapping.select_cores(4, &ctx);
        // Rows 0 and 1 (cores 1, 5, 2, 6) are closest to the north inlet.
        let rows: Vec<usize> = four.iter().map(|&c| topo.slot_of(c).row).collect();
        assert!(rows.iter().all(|&r| r <= 1), "rows {rows:?}");
    }

    #[test]
    fn order_is_deterministic() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::C1);
        assert_eq!(
            InletFirstMapping.select_cores(8, &ctx),
            InletFirstMapping.select_cores(8, &ctx)
        );
    }
}
