//! The temperature-aware MPSoC scheduling baseline of Coskun et al.
//! (DATE'07, the paper's reference [9]).

use super::{check_core_count, greedy_spread, MappingContext, MappingPolicy};

/// Conventional thermal-aware balancing: spread load from the corners and
/// prefer historically cool cores, *independent of the idle C-state and of
/// the cooling technology*. This is Fig. 6 scenario 2 applied always —
/// optimal when idle cores poll, but blind to the micro-channel bands that
/// matter once idle cores are clock-gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoskunBalancing;

impl MappingPolicy for CoskunBalancing {
    fn name(&self) -> &'static str {
        "coskun balancing [9]"
    }

    fn select_cores(&self, n: usize, ctx: &MappingContext<'_>) -> Vec<u8> {
        check_core_count(n);
        match ctx.core_temps {
            // Temperature history available: coolest cores first
            // (0.5 °C buckets), ties broken by the balanced spread order.
            Some(temps) => {
                let spread_order = greedy_spread(8, ctx, false);
                let rank = |c: u8| {
                    spread_order
                        .iter()
                        .position(|&o| o == c)
                        .expect("spread order covers all cores")
                };
                let mut cores: Vec<u8> = (1..=8).collect();
                cores.sort_by_key(|&c| {
                    let bucket = (temps[c as usize - 1] * 2.0).round() as i64;
                    (bucket, rank(c))
                });
                cores.truncate(n);
                cores
            }
            None => greedy_spread(n, ctx, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::test_util::exhaustive_contract;
    use tps_floorplan::CoreTopology;
    use tps_power::CState;
    use tps_thermosyphon::Orientation;

    #[test]
    fn contract() {
        exhaustive_contract(&CoskunBalancing);
    }

    #[test]
    fn cstate_blind() {
        // The baseline ignores the idle C-state: same mapping under POLL
        // and C1 — this is exactly what the proposed policy improves on.
        let topo = CoreTopology::xeon();
        for n in 1..=8 {
            let poll = CoskunBalancing.select_cores(
                n,
                &MappingContext::new(&topo, Orientation::InletEast, CState::Poll),
            );
            let c1 = CoskunBalancing.select_cores(
                n,
                &MappingContext::new(&topo, Orientation::InletEast, CState::C1),
            );
            assert_eq!(poll, c1, "n={n}");
        }
    }

    #[test]
    fn four_cores_take_the_corners() {
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletEast, CState::C1);
        let mut four = CoskunBalancing.select_cores(4, &ctx);
        four.sort_unstable();
        assert_eq!(four, vec![1, 4, 5, 8]);
    }

    #[test]
    fn prefers_cool_cores_when_history_is_available() {
        let topo = CoreTopology::xeon();
        let mut ctx = MappingContext::new(&topo, Orientation::InletEast, CState::Poll);
        // Cores 1, 4, 5, 8 (the corners) are hot; 2, 6 are coolest.
        let mut temps = [60.0; 8];
        temps[1] = 45.0; // core 2
        temps[5] = 45.0; // core 6
        ctx.core_temps = Some(temps);
        let two = CoskunBalancing.select_cores(2, &ctx);
        let mut sorted = two.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 6], "coolest cores must be picked: {two:?}");
    }
}
