//! The paper's C-state-aware thermal mapping (Sec. VII).

use super::{greedy_spread, MappingContext, MappingPolicy};

/// The proposed policy:
///
/// * **idle cores in POLL** — they still burn near-dynamic power, so the
///   best move is the conventional corner-first balanced spread (Fig. 6
///   scenario 2): maximise distance between heat sources so they can
///   exchange heat with cool silicon;
/// * **idle cores clock-gated (C1 or deeper)** — idle slots are thermally
///   dark, so the winning move is to keep *at most one active core per
///   micro-channel band* (Fig. 6 scenario 1): a band that heats only one
///   core keeps its vapour quality low and its boiling coefficient high.
///   Past `n = 4` (or 5, as the paper notes) doubling up is unavoidable;
///   the greedy then still minimises per-band occupancy first, corners
///   first.
///
/// The band notion follows the thermosyphon orientation, so the same policy
/// adapts to Design 1 (rows) and Design 2 (columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProposedMapping;

impl MappingPolicy for ProposedMapping {
    fn name(&self) -> &'static str {
        "proposed (C-state-aware)"
    }

    fn select_cores(&self, n: usize, ctx: &MappingContext<'_>) -> Vec<u8> {
        let banded = !ctx.idle_cstate.is_polling();
        greedy_spread(n, ctx, banded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::test_util::exhaustive_contract;
    use tps_floorplan::CoreTopology;
    use tps_power::CState;
    use tps_thermosyphon::Orientation;

    fn ctx(topo: &CoreTopology, cstate: CState) -> MappingContext<'_> {
        MappingContext::new(topo, Orientation::InletEast, cstate)
    }

    #[test]
    fn contract() {
        exhaustive_contract(&ProposedMapping);
    }

    #[test]
    fn poll_idles_get_corner_spread() {
        let topo = CoreTopology::xeon();
        let mut four = ProposedMapping.select_cores(4, &ctx(&topo, CState::Poll));
        four.sort_unstable();
        assert_eq!(four, vec![1, 4, 5, 8], "scenario 2: the four corners");
    }

    #[test]
    fn gated_idles_get_row_exclusive_mapping() {
        let topo = CoreTopology::xeon();
        for cstate in [CState::C1, CState::C1e, CState::C6] {
            let four = ProposedMapping.select_cores(4, &ctx(&topo, cstate));
            assert_eq!(
                topo.row_occupancy(&four),
                [1, 1, 1, 1],
                "scenario 1: one active core per horizontal line"
            );
            // And the columns are staggered, not a single packed column.
            let cols: std::collections::HashSet<usize> =
                four.iter().map(|&c| topo.slot_of(c).col).collect();
            assert_eq!(cols.len(), 2, "columns must alternate");
        }
    }

    #[test]
    fn beyond_four_rows_stay_balanced() {
        let topo = CoreTopology::xeon();
        for n in 5..=8 {
            let cores = ProposedMapping.select_cores(n, &ctx(&topo, CState::C1));
            let occ = topo.row_occupancy(&cores);
            let max = occ.iter().max().unwrap();
            let min = occ.iter().min().unwrap();
            assert!(max - min <= 1, "n={n}: unbalanced rows {occ:?}");
        }
    }

    #[test]
    fn orientation_redefines_bands() {
        // Under Design 2 (vertical channels) with 2 cores, the policy must
        // use both columns — one per vertical band.
        let topo = CoreTopology::xeon();
        let ctx = MappingContext::new(&topo, Orientation::InletNorth, CState::C1);
        let two = ProposedMapping.select_cores(2, &ctx);
        let cols: Vec<usize> = two.iter().map(|&c| topo.slot_of(c).col).collect();
        assert_ne!(cols[0], cols[1], "two cores must use distinct columns");
    }

    #[test]
    fn full_load_uses_all_cores() {
        let topo = CoreTopology::xeon();
        let mut all = ProposedMapping.select_cores(8, &ctx(&topo, CState::Poll));
        all.sort_unstable();
        assert_eq!(all, (1..=8).collect::<Vec<u8>>());
    }
}
