//! Rack-level planning: workload-to-server allocation and the shared
//! chiller loop (Sec. V).
//!
//! This module is the bridge between one server's coupled physics and the
//! rack (and, through `tps-cluster`, the fleet): [`plan_rack`] spreads a
//! batch of applications over servers, and [`RunOutcome::cooling_load`] /
//! [`rack_cooling_loads`] convert solved outcomes into the
//! [`ServerCoolingLoad`]s that `tps-cooling`'s shared-loop accounting
//! consumes.
//!
//! ```no_run
//! use tps_core::{MinPowerSelector, ProposedMapping, Server, T_CASE_MAX};
//! use tps_workload::{Benchmark, QosClass};
//!
//! let server = Server::xeon(2.0);
//! let outcome = server.run(
//!     Benchmark::X264,
//!     QosClass::TwoX,
//!     &MinPowerSelector,
//!     &ProposedMapping,
//! )?;
//! let load = outcome.cooling_load(server.simulation().operating_point(), T_CASE_MAX);
//! assert!(load.max_water_temp > server.simulation().operating_point().water_inlet());
//! # Ok::<(), tps_core::RunError>(())
//! ```

use crate::server::RunOutcome;
use tps_cooling::ServerCoolingLoad;
use tps_thermosyphon::OperatingPoint;
use tps_units::{Celsius, TempDelta};
use tps_workload::{Benchmark, QosClass};

/// Distributes applications across `n_servers` balancing the *estimated
/// package power* per server (greedy least-loaded-first, like the VM
/// allocation heuristics the authors build on in \[3\]).
///
/// Returns one application list per server.
///
/// # Panics
///
/// Panics if `n_servers` is zero.
pub fn plan_rack(
    apps: &[(Benchmark, QosClass)],
    n_servers: usize,
) -> Vec<Vec<(Benchmark, QosClass)>> {
    assert!(n_servers > 0, "a rack needs at least one server");
    let mut plan: Vec<Vec<(Benchmark, QosClass)>> = vec![Vec::new(); n_servers];
    let mut load = vec![0.0f64; n_servers];
    // Heaviest applications first, each to the least-loaded server.
    let mut jobs: Vec<(Benchmark, QosClass, f64)> = apps
        .iter()
        .map(|&(b, q)| {
            let est = crate::select::MinPowerSelector;
            use crate::select::ConfigSelector as _;
            let power = est
                .select(
                    b,
                    q,
                    tps_power::CState::deepest_within(q.idle_delay_tolerance()),
                )
                .map_or(80.0, |row| row.package_power.value());
            (b, q, power)
        })
        .collect();
    jobs.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (bench, qos, power) in jobs {
        let (idx, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("n_servers > 0");
        plan[idx].push((bench, qos));
        load[idx] += power;
    }
    plan
}

impl RunOutcome {
    /// The cooling demand this outcome places on a shared water loop.
    ///
    /// The warmest tolerable water is estimated from the case-temperature
    /// margin: die/case temperatures shift ≈ 1:1 with the water inlet
    /// (validated by the coupling tests), so a server running at `T_case`
    /// with water at `T_w` tolerates `T_w + (t_case_max − T_case)`. A
    /// negative margin (an overloaded server) therefore yields a tolerable
    /// temperature *below* the loop's design inlet — the signal the fleet
    /// dispatchers in `tps-cluster` react to.
    pub fn cooling_load(&self, op: OperatingPoint, t_case_max: Celsius) -> ServerCoolingLoad {
        let margin: TempDelta = t_case_max - self.solution.t_case;
        ServerCoolingLoad {
            heat: self.solution.q_total,
            max_water_temp: op.water_inlet() + margin,
            flow: op.water_flow(),
        }
    }
}

/// Converts per-server run outcomes into the cooling loads of the shared
/// rack loop (see [`RunOutcome::cooling_load`] for the margin model).
pub fn rack_cooling_loads(
    outcomes: &[&RunOutcome],
    op: OperatingPoint,
    t_case_max: Celsius,
) -> Vec<ServerCoolingLoad> {
    outcomes
        .iter()
        .map(|o| o.cooling_load(op, t_case_max))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_balances_load() {
        let apps: Vec<(Benchmark, QosClass)> = Benchmark::ALL
            .into_iter()
            .map(|b| (b, QosClass::TwoX))
            .collect();
        let plan = plan_rack(&apps, 4);
        assert_eq!(plan.len(), 4);
        let total: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(total, 13);
        // Balanced: no server holds more than ⌈13/4⌉ + 1 apps.
        assert!(plan.iter().all(|s| s.len() <= 5));
        // And no server is empty.
        assert!(plan.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn single_server_takes_everything() {
        let apps = [(Benchmark::X264, QosClass::OneX)];
        let plan = plan_rack(&apps, 1);
        assert_eq!(plan[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = plan_rack(&[], 0);
    }
}
