//! The end-to-end server simulation driver.

use crate::heat::breakdown_for_mapping;
use crate::mapping::{MappingContext, MappingPolicy};
use crate::select::ConfigSelector;
use core::fmt;
use tps_floorplan::{xeon_e5_v4, CoreTopology, Floorplan, PackageGeometry, ScalarField};
use tps_power::{power_field, CState, DiePowerBreakdown};
use tps_thermal::ThermalMetrics;
use tps_thermosyphon::{
    CoupledSimulation, CoupledSolution, CouplingError, OperatingPoint, ThermosyphonDesign,
};
use tps_workload::{Benchmark, ConfigProfile, QosClass};

/// A thermosyphon-cooled Xeon server: floorplan + package + coupled
/// thermal/thermosyphon simulation, ready to run workloads end to end.
#[derive(Debug, Clone)]
pub struct Server {
    floorplan: Floorplan,
    topology: CoreTopology,
    package: PackageGeometry,
    sim: CoupledSimulation,
}

/// Builder for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    design: Option<ThermosyphonDesign>,
    op: OperatingPoint,
    grid_pitch_mm: f64,
}

/// Error running a workload on a server.
#[derive(Debug)]
pub enum RunError {
    /// No configuration satisfies the QoS constraint.
    NoFeasibleConfig {
        /// The application.
        bench: Benchmark,
        /// The violated constraint.
        qos: QosClass,
    },
    /// The coupled thermosyphon/thermal solve failed.
    Coupling(CouplingError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NoFeasibleConfig { bench, qos } => {
                write!(
                    f,
                    "no configuration of `{bench}` meets the {qos} QoS constraint"
                )
            }
            RunError::Coupling(e) => write!(f, "coupled simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Coupling(e) => Some(e),
            RunError::NoFeasibleConfig { .. } => None,
        }
    }
}

impl From<CouplingError> for RunError {
    fn from(e: CouplingError) -> Self {
        RunError::Coupling(e)
    }
}

/// The result of running one application on a [`Server`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The selected configuration and its profiled power/QoS row.
    pub profile: ConfigProfile,
    /// The cores the threads were mapped to (1-based).
    pub mapping: Vec<u8>,
    /// The C-state idle cores were parked in.
    pub idle_cstate: CState,
    /// The per-component heat estimate fed to the thermal model.
    pub breakdown: DiePowerBreakdown,
    /// The converged coupled solution (temperature fields, T_sat, T_case…).
    pub solution: CoupledSolution,
    /// Die metrics (die layer, die outline): the paper's "Die" rows.
    pub die: ThermalMetrics,
    /// Package metrics (spreader layer, spreader outline): "Package" rows.
    pub package: ThermalMetrics,
}

impl Server {
    /// Starts a builder with the paper defaults (paper thermosyphon design,
    /// 7 kg/h @ 30 °C water, 0.5 mm grid).
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            design: None,
            op: OperatingPoint::paper(),
            grid_pitch_mm: 0.5,
        }
    }

    /// The paper's server at a given simulation grid pitch (mm).
    pub fn xeon(grid_pitch_mm: f64) -> Self {
        Self::builder().grid_pitch_mm(grid_pitch_mm).build()
    }

    /// The die floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The core-slot topology.
    pub fn topology(&self) -> &CoreTopology {
        &self.topology
    }

    /// The package geometry.
    pub fn package(&self) -> &PackageGeometry {
        &self.package
    }

    /// The coupled simulation (design, operating point, thermal model).
    pub fn simulation(&self) -> &CoupledSimulation {
        &self.sim
    }

    /// Returns a server identical to this one at a different operating
    /// point (shares the assembled thermal model).
    pub fn with_operating_point(&self, op: OperatingPoint) -> Self {
        Self {
            sim: self.sim.with_operating_point(op),
            floorplan: self.floorplan.clone(),
            topology: self.topology.clone(),
            package: self.package.clone(),
        }
    }

    /// Runs one application end to end: C-state choice → configuration
    /// selection → mapping → heat estimation → coupled thermal solve.
    ///
    /// # Errors
    ///
    /// [`RunError::NoFeasibleConfig`] if the selector finds nothing;
    /// [`RunError::Coupling`] if the physics solve fails.
    pub fn run(
        &self,
        bench: Benchmark,
        qos: QosClass,
        selector: &dyn ConfigSelector,
        policy: &dyn MappingPolicy,
    ) -> Result<RunOutcome, RunError> {
        let idle_cstate = CState::deepest_within(qos.idle_delay_tolerance());
        // The P_i vectors come from offline profiling, where idle cores sit
        // in the default POLL state (this reproduces the paper's
        // 40.5–79.3 W configuration power band); the *runtime* then parks
        // idle cores in the deepest C-state the QoS delay tolerance allows.
        let selected = selector
            .select(bench, qos, CState::Poll)
            .ok_or(RunError::NoFeasibleConfig { bench, qos })?;
        let profile = tps_workload::profile_config(bench, selected.config, idle_cstate);
        let ctx = MappingContext::new(&self.topology, self.sim.design().orientation(), idle_cstate);
        let mapping = policy.select_cores(profile.config.n_cores() as usize, &ctx);
        let breakdown = breakdown_for_mapping(&profile, &mapping);
        let (solution, die, package) = self.solve_breakdown(&breakdown)?;
        Ok(RunOutcome {
            profile,
            mapping,
            idle_cstate,
            breakdown,
            solution,
            die,
            package,
        })
    }

    /// Solves the coupled problem for an explicit per-component power
    /// breakdown (used by the figure binaries that bypass the scheduler).
    ///
    /// # Errors
    ///
    /// Propagates [`CouplingError`] from the physics solve.
    pub fn solve_breakdown(
        &self,
        breakdown: &DiePowerBreakdown,
    ) -> Result<(CoupledSolution, ThermalMetrics, ThermalMetrics), RunError> {
        let power = self.power_field(breakdown);
        let solution = self.sim.solve(&power)?;
        let die = self.die_metrics(&solution);
        let package = self.package_metrics(&solution);
        Ok((solution, die, package))
    }

    /// Rasterizes a breakdown onto the simulation grid (die coordinates are
    /// offset into the package).
    pub fn power_field(&self, breakdown: &DiePowerBreakdown) -> ScalarField {
        power_field(
            &self.floorplan,
            self.sim.grid(),
            self.package.die_offset(),
            breakdown,
        )
    }

    /// Die metrics: die layer restricted to the die outline.
    pub fn die_metrics(&self, solution: &CoupledSolution) -> ThermalMetrics {
        ThermalMetrics::in_rect(solution.thermal.die_layer(), &self.package.die_rect())
    }

    /// Package metrics: spreader layer over the whole spreader.
    pub fn package_metrics(&self, solution: &CoupledSolution) -> ThermalMetrics {
        let layer = solution
            .thermal
            .layer_by_name("spreader")
            .unwrap_or_else(|| solution.thermal.top_layer());
        ThermalMetrics::of_field(layer)
    }

    /// Mean temperature of each core's footprint on the die layer
    /// (°C, index 0 = Core1) — the history input for \[9\]-style policies.
    pub fn core_temperatures(&self, solution: &CoupledSolution) -> [f64; 8] {
        let die = solution.thermal.die_layer();
        let (ox, oy) = self.package.die_offset();
        let mut out = [0.0; 8];
        for (i, t) in out.iter_mut().enumerate() {
            let rect = self
                .floorplan
                .core(i as u8 + 1)
                .expect("xeon floorplan has cores 1..=8")
                .rect()
                .translated(ox, oy);
            *t = die.mean_in_rect(&rect).expect("core rect lies on the grid");
        }
        out
    }
}

impl ServerBuilder {
    /// Overrides the thermosyphon design (default: the paper design).
    pub fn design(mut self, design: ThermosyphonDesign) -> Self {
        self.design = Some(design);
        self
    }

    /// Sets the water-side operating point.
    pub fn operating_point(mut self, op: OperatingPoint) -> Self {
        self.op = op;
        self
    }

    /// Sets the simulation grid pitch in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if non-positive.
    pub fn grid_pitch_mm(mut self, pitch: f64) -> Self {
        assert!(pitch > 0.0, "grid pitch must be positive");
        self.grid_pitch_mm = pitch;
        self
    }

    /// Assembles the server (builds the thermal model once).
    pub fn build(self) -> Server {
        let floorplan = xeon_e5_v4();
        let topology = CoreTopology::from_floorplan(&floorplan);
        let package = PackageGeometry::xeon(&floorplan);
        let design = self
            .design
            .unwrap_or_else(|| ThermosyphonDesign::paper_design(&package));
        let sim = CoupledSimulation::builder(design, self.op)
            .package(package.clone())
            .grid_pitch_mm(self.grid_pitch_mm)
            .build();
        Server {
            floorplan,
            topology,
            package,
            sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{CoskunBalancing, InletFirstMapping, ProposedMapping};
    use crate::select::MinPowerSelector;

    fn coarse_server() -> Server {
        Server::xeon(2.0)
    }

    #[test]
    fn run_pipeline_end_to_end() {
        let server = coarse_server();
        let out = server
            .run(
                Benchmark::X264,
                QosClass::TwoX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        assert_eq!(out.mapping.len(), out.profile.config.n_cores() as usize);
        assert!(QosClass::TwoX.is_met_by(out.profile.normalized_time));
        // Die runs hotter than package; both above the 30 °C water.
        assert!(out.die.max > out.package.max);
        assert!(out.package.avg.value() > 30.0);
        // The breakdown total matches the profiled package power.
        assert!((out.breakdown.total().value() - out.profile.package_power.value()).abs() < 1e-9);
    }

    #[test]
    fn one_x_qos_uses_poll_and_all_cores() {
        let server = coarse_server();
        let out = server
            .run(
                Benchmark::Ferret,
                QosClass::OneX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        assert_eq!(out.idle_cstate, CState::Poll);
        assert_eq!(out.profile.config.n_cores(), 8);
    }

    #[test]
    fn three_x_qos_uses_deep_sleep_and_fewer_cores() {
        let server = coarse_server();
        let out = server
            .run(
                Benchmark::Swaptions,
                QosClass::ThreeX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        assert_eq!(out.idle_cstate, CState::C6);
        assert!(out.profile.config.n_cores() < 8);
    }

    #[test]
    fn proposed_beats_inlet_first_on_hotspots() {
        // The headline ordering of Table II, at one representative point.
        let server = coarse_server();
        let ours = server
            .run(
                Benchmark::Fluidanimate,
                QosClass::ThreeX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        let sabry = server
            .run(
                Benchmark::Fluidanimate,
                QosClass::ThreeX,
                &MinPowerSelector,
                &InletFirstMapping,
            )
            .unwrap();
        assert!(
            ours.die.max < sabry.die.max,
            "proposed {} should beat inlet-first {}",
            ours.die,
            sabry.die
        );
    }

    #[test]
    fn proposed_matches_or_beats_coskun_at_three_x() {
        let server = coarse_server();
        let ours = server
            .run(
                Benchmark::Bodytrack,
                QosClass::ThreeX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        let coskun = server
            .run(
                Benchmark::Bodytrack,
                QosClass::ThreeX,
                &MinPowerSelector,
                &CoskunBalancing,
            )
            .unwrap();
        assert!(
            ours.die.max.value() <= coskun.die.max.value() + 0.05,
            "proposed {} should not lose to coskun {}",
            ours.die,
            coskun.die
        );
    }

    #[test]
    fn core_temperatures_reflect_the_mapping() {
        let server = coarse_server();
        let out = server
            .run(
                Benchmark::Raytrace,
                QosClass::ThreeX,
                &MinPowerSelector,
                &ProposedMapping,
            )
            .unwrap();
        let temps = server.core_temperatures(&out.solution);
        let active_mean: f64 = out
            .mapping
            .iter()
            .map(|&c| temps[c as usize - 1])
            .sum::<f64>()
            / out.mapping.len() as f64;
        let idle: Vec<f64> = (1..=8u8)
            .filter(|c| !out.mapping.contains(c))
            .map(|c| temps[c as usize - 1])
            .collect();
        let idle_mean: f64 = idle.iter().sum::<f64>() / idle.len() as f64;
        assert!(
            active_mean > idle_mean + 2.0,
            "active cores {active_mean:.1} °C vs idle {idle_mean:.1} °C"
        );
    }
}
