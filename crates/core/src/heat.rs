//! Per-component heat estimation (Algorithm 1, line 7).
//!
//! Given the selected configuration's power profile and a concrete core
//! mapping, build the [`DiePowerBreakdown`] the thermal model consumes:
//! active cores carry the active power, idle cores their C-state residual,
//! and the uncore power is split between the memory-controller and
//! uncore/IO strips.

use tps_power::DiePowerBreakdown;
use tps_units::Watts;
use tps_workload::ConfigProfile;

/// Share of the memory-controller + IO power attributed to the
/// memory-controller strip (the rest goes to the queue/uncore/IO strip).
const MEM_CTL_SHARE: f64 = 0.5;

/// Builds the die power breakdown for a configuration run on the cores in
/// `active` (1-based indices).
///
/// # Panics
///
/// Panics if `active` does not contain exactly the configuration's core
/// count, holds duplicates, or an index outside `1..=8`.
///
/// ```
/// use tps_core::heat::breakdown_for_mapping;
/// use tps_power::CState;
/// use tps_workload::{profile_config, Benchmark, WorkloadConfig};
/// # use tps_power::CoreFrequency;
///
/// let cfg = WorkloadConfig::new(4, 2, CoreFrequency::F3_2)?;
/// let row = profile_config(Benchmark::Ferret, cfg, CState::C1);
/// let breakdown = breakdown_for_mapping(&row, &[5, 2, 7, 4]);
/// assert!((breakdown.total().value() - row.package_power.value()).abs() < 1e-9);
/// # Ok::<(), tps_workload::ConfigError>(())
/// ```
pub fn breakdown_for_mapping(row: &ConfigProfile, active: &[u8]) -> DiePowerBreakdown {
    assert_eq!(
        active.len(),
        row.config.n_cores() as usize,
        "mapping has {} cores but the configuration needs {}",
        active.len(),
        row.config.n_cores()
    );
    let mut seen = [false; 8];
    for &c in active {
        assert!((1..=8).contains(&c), "core index {c} outside 1..=8");
        assert!(!seen[c as usize - 1], "core {c} mapped twice");
        seen[c as usize - 1] = true;
    }
    let mut breakdown = DiePowerBreakdown::zero();
    for (core, &active) in breakdown.core.iter_mut().zip(&seen) {
        *core = if active {
            row.active_core_power
        } else {
            row.idle_core_power
        };
    }
    breakdown.llc = row.llc_power;
    breakdown.mem_ctl = row.mem_io_power * MEM_CTL_SHARE;
    breakdown.uncore_io = row.mem_io_power * (1.0 - MEM_CTL_SHARE);
    breakdown
}

/// The total heat of a breakdown as a convenience (equals the profiled
/// package power by construction).
pub fn total_heat(breakdown: &DiePowerBreakdown) -> Watts {
    breakdown.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_power::{CState, CoreFrequency};
    use tps_workload::{profile_config, Benchmark, WorkloadConfig};

    fn row() -> ConfigProfile {
        profile_config(
            Benchmark::Vips,
            WorkloadConfig::new(3, 2, CoreFrequency::F2_9).unwrap(),
            CState::Poll,
        )
    }

    #[test]
    fn total_matches_package_power() {
        let r = row();
        let b = breakdown_for_mapping(&r, &[1, 5, 8]);
        assert!((b.total().value() - r.package_power.value()).abs() < 1e-9);
    }

    #[test]
    fn active_cores_get_active_power() {
        let r = row();
        let b = breakdown_for_mapping(&r, &[2, 6, 7]);
        assert_eq!(b.core[1], r.active_core_power);
        assert_eq!(b.core[0], r.idle_core_power);
        assert_eq!(b.llc, r.llc_power);
        assert!((b.mem_ctl + b.uncore_io - r.mem_io_power).abs().value() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn duplicate_core_panics() {
        let _ = breakdown_for_mapping(&row(), &[2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn out_of_range_core_panics() {
        let _ = breakdown_for_mapping(&row(), &[0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn wrong_count_panics() {
        let _ = breakdown_for_mapping(&row(), &[1, 2]);
    }
}
