//! Idle power states (C-states) of the target CPU.

use tps_units::Seconds;

/// A core idle state, ordered from shallowest to deepest.
///
/// The target Xeon E5 v4 exposes POLL, C1, C1E, C3 and C6 (Sec. IV-C1).
/// Deeper states consume less power but take longer to resume; the paper's
/// mapping policy chooses different thread placements depending on which
/// state idle cores can afford (Fig. 6), driven by the per-application
/// tolerable delay `d_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CState {
    /// Default busy-wait idle: no wake latency, near-active power.
    Poll,
    /// Clock-gated halt.
    C1,
    /// Clock-gated halt with reduced voltage/frequency.
    C1e,
    /// Sleep state with caches progressively flushed (power extrapolated —
    /// not listed in the paper's Table I).
    C3,
    /// Deep power-down (power extrapolated — not listed in Table I).
    C6,
}

impl CState {
    /// All states, shallowest first.
    pub const ALL: [CState; 5] = [
        CState::Poll,
        CState::C1,
        CState::C1e,
        CState::C3,
        CState::C6,
    ];

    /// Wake (resume) latency.
    ///
    /// POLL/C1/C1E use the paper's Table I values (0, 2, 10); the table's
    /// header prints "(s)" but the magnitudes are microseconds, consistent
    /// with the Linux `cpuidle` exit latencies for Broadwell — we interpret
    /// them as µs. C3/C6 use the Broadwell `cpuidle` table (40 µs, 133 µs).
    pub fn wake_latency(self) -> Seconds {
        match self {
            CState::Poll => Seconds::ZERO,
            CState::C1 => Seconds::from_us(2.0),
            CState::C1e => Seconds::from_us(10.0),
            CState::C3 => Seconds::from_us(40.0),
            CState::C6 => Seconds::from_us(133.0),
        }
    }

    /// Returns the deepest state whose wake latency does not exceed
    /// `tolerable_delay`, falling back to [`CState::Poll`].
    ///
    /// This is the `d_i`-driven selection of Algorithm 1's mapping step.
    ///
    /// ```
    /// use tps_power::CState;
    /// use tps_units::Seconds;
    /// assert_eq!(CState::deepest_within(Seconds::from_us(5.0)), CState::C1);
    /// assert_eq!(CState::deepest_within(Seconds::ZERO), CState::Poll);
    /// assert_eq!(CState::deepest_within(Seconds::new(1.0)), CState::C6);
    /// ```
    pub fn deepest_within(tolerable_delay: Seconds) -> CState {
        CState::ALL
            .into_iter()
            .rev()
            .find(|s| s.wake_latency() <= tolerable_delay)
            .unwrap_or(CState::Poll)
    }

    /// `true` if this state keeps the core's clock running (only POLL).
    ///
    /// POLL idles still burn near-dynamic power, which is why the paper's
    /// mapping treats them as heat sources (Sec. VII).
    pub fn is_polling(self) -> bool {
        matches!(self, CState::Poll)
    }
}

impl core::fmt::Display for CState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CState::Poll => "POLL",
            CState::C1 => "C1",
            CState::C1e => "C1E",
            CState::C3 => "C3",
            CState::C6 => "C6",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_depth() {
        assert!(CState::Poll < CState::C1);
        assert!(CState::C1 < CState::C1e);
        assert!(CState::C1e < CState::C3);
        assert!(CState::C3 < CState::C6);
    }

    #[test]
    fn latency_matches_table_i() {
        assert_eq!(CState::Poll.wake_latency(), Seconds::ZERO);
        assert_eq!(CState::C1.wake_latency(), Seconds::from_us(2.0));
        assert_eq!(CState::C1e.wake_latency(), Seconds::from_us(10.0));
    }

    #[test]
    fn deepest_within_boundaries() {
        assert_eq!(CState::deepest_within(Seconds::from_us(1.9)), CState::Poll);
        assert_eq!(CState::deepest_within(Seconds::from_us(2.0)), CState::C1);
        assert_eq!(CState::deepest_within(Seconds::from_us(10.0)), CState::C1e);
        assert_eq!(CState::deepest_within(Seconds::from_us(132.0)), CState::C3);
        assert_eq!(CState::deepest_within(Seconds::from_us(133.0)), CState::C6);
    }

    #[test]
    fn polling_flag() {
        assert!(CState::Poll.is_polling());
        assert!(!CState::C1.is_polling());
    }

    #[test]
    fn display_matches_paper_names() {
        let names: Vec<String> = CState::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["POLL", "C1", "C1E", "C3", "C6"]);
    }
}
