//! A simulated RAPL (running average power limit) energy-counter interface.
//!
//! The paper measures power through RAPL (Sec. IV-C). Our substitute exposes
//! the same *shape* of interface — monotonically increasing energy counters
//! per domain, sampled over time — so that control code written against it
//! would port to a real `/sys/class/powercap` backend unchanged.

use tps_units::{Seconds, Watts};

/// A RAPL energy domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// Whole package (cores + uncore).
    Package,
    /// Core region only (PP0).
    Cores,
    /// Uncore region (derived: package − cores).
    Uncore,
}

/// Accumulating energy counters fed by the simulation loop.
///
/// ```
/// use tps_power::{RaplCounter, RaplDomain};
/// use tps_units::{Seconds, Watts};
///
/// let mut rapl = RaplCounter::new();
/// rapl.advance(Seconds::new(2.0), Watts::new(50.0), Watts::new(35.0));
/// assert_eq!(rapl.energy_joules(RaplDomain::Package), 100.0);
/// assert_eq!(rapl.energy_joules(RaplDomain::Uncore), 30.0);
/// let avg = rapl.average_power(RaplDomain::Cores);
/// assert_eq!(avg, Watts::new(35.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaplCounter {
    elapsed_s: f64,
    pkg_j: f64,
    cores_j: f64,
}

impl RaplCounter {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the counters by `dt` at the given package and core powers.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or core power exceeds package power.
    pub fn advance(&mut self, dt: Seconds, package: Watts, cores: Watts) {
        assert!(dt.value() >= 0.0, "time must not run backwards");
        assert!(
            cores.value() <= package.value() + 1e-9,
            "core power {cores} exceeds package power {package}"
        );
        self.elapsed_s += dt.value();
        self.pkg_j += package.value() * dt.value();
        self.cores_j += cores.value() * dt.value();
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed_s)
    }

    /// Accumulated energy of a domain, in joules.
    pub fn energy_joules(&self, domain: RaplDomain) -> f64 {
        match domain {
            RaplDomain::Package => self.pkg_j,
            RaplDomain::Cores => self.cores_j,
            RaplDomain::Uncore => self.pkg_j - self.cores_j,
        }
    }

    /// Lifetime average power of a domain (zero if no time has elapsed).
    pub fn average_power(&self, domain: RaplDomain) -> Watts {
        if self.elapsed_s == 0.0 {
            Watts::ZERO
        } else {
            Watts::new(self.energy_joules(domain) / self.elapsed_s)
        }
    }

    /// Difference to an earlier snapshot, as a window-average power.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier.
    pub fn window_power(&self, earlier: &RaplCounter, domain: RaplDomain) -> Watts {
        let dt = self.elapsed_s - earlier.elapsed_s;
        assert!(dt > 0.0, "window must have positive duration");
        Watts::new((self.energy_joules(domain) - earlier.energy_joules(domain)) / dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let mut r = RaplCounter::new();
        r.advance(Seconds::new(1.0), Watts::new(40.0), Watts::new(30.0));
        let e1 = r.energy_joules(RaplDomain::Package);
        r.advance(Seconds::new(1.0), Watts::new(40.0), Watts::new(30.0));
        assert!(r.energy_joules(RaplDomain::Package) > e1);
        assert_eq!(r.elapsed(), Seconds::new(2.0));
    }

    #[test]
    fn window_power() {
        let mut r = RaplCounter::new();
        r.advance(Seconds::new(1.0), Watts::new(40.0), Watts::new(30.0));
        let snap = r.clone();
        r.advance(Seconds::new(2.0), Watts::new(70.0), Watts::new(55.0));
        assert_eq!(r.window_power(&snap, RaplDomain::Package), Watts::new(70.0));
        assert_eq!(r.window_power(&snap, RaplDomain::Cores), Watts::new(55.0));
        assert_eq!(r.window_power(&snap, RaplDomain::Uncore), Watts::new(15.0));
    }

    #[test]
    #[should_panic(expected = "exceeds package power")]
    fn cores_cannot_exceed_package() {
        RaplCounter::new().advance(Seconds::new(1.0), Watts::new(10.0), Watts::new(20.0));
    }

    #[test]
    fn zero_time_average_is_zero() {
        assert_eq!(
            RaplCounter::new().average_power(RaplDomain::Package),
            Watts::ZERO
        );
    }
}
