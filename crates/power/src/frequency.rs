//! DVFS operating points of the target Xeon E5 v4.

use tps_units::{GigaHertz, Volts};

/// The three core-domain frequency levels the paper evaluates
/// (Sec. IV-C1: "we consider three frequency levels: 2.6, 2.9, and 3.2 GHz").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreFrequency {
    /// 2.6 GHz — the lowest level meeting any paper QoS target.
    F2_6,
    /// 2.9 GHz.
    F2_9,
    /// 3.2 GHz — `f_max` of the target CPU.
    F3_2,
}

impl CoreFrequency {
    /// All levels, ascending.
    pub const ALL: [CoreFrequency; 3] = [
        CoreFrequency::F2_6,
        CoreFrequency::F2_9,
        CoreFrequency::F3_2,
    ];

    /// The maximum frequency (`f_max`).
    pub const MAX: CoreFrequency = CoreFrequency::F3_2;

    /// The clock frequency.
    pub fn ghz(self) -> GigaHertz {
        match self {
            CoreFrequency::F2_6 => GigaHertz::new(2.6),
            CoreFrequency::F2_9 => GigaHertz::new(2.9),
            CoreFrequency::F3_2 => GigaHertz::new(3.2),
        }
    }

    /// The core supply voltage at this operating point (approximate
    /// Broadwell-EP V/f curve; used only through the relative
    /// [`CoreFrequency::dvfs_scale`]).
    pub fn voltage(self) -> Volts {
        match self {
            CoreFrequency::F2_6 => Volts::new(0.95),
            CoreFrequency::F2_9 => Volts::new(1.05),
            CoreFrequency::F3_2 => Volts::new(1.15),
        }
    }

    /// Dynamic-power scale relative to `f_max`: `(f·V²) / (f_max·V_max²)`.
    ///
    /// ```
    /// use tps_power::CoreFrequency;
    /// assert_eq!(CoreFrequency::F3_2.dvfs_scale(), 1.0);
    /// assert!(CoreFrequency::F2_6.dvfs_scale() < 0.6);
    /// ```
    pub fn dvfs_scale(self) -> f64 {
        let fv2 = |f: CoreFrequency| f.ghz().value() * f.voltage().value().powi(2);
        fv2(self) / fv2(CoreFrequency::MAX)
    }

    /// The next lower level, if any (used by the runtime DVFS controller).
    pub fn lower(self) -> Option<CoreFrequency> {
        match self {
            CoreFrequency::F2_6 => None,
            CoreFrequency::F2_9 => Some(CoreFrequency::F2_6),
            CoreFrequency::F3_2 => Some(CoreFrequency::F2_9),
        }
    }

    /// The next higher level, if any.
    pub fn higher(self) -> Option<CoreFrequency> {
        match self {
            CoreFrequency::F2_6 => Some(CoreFrequency::F2_9),
            CoreFrequency::F2_9 => Some(CoreFrequency::F3_2),
            CoreFrequency::F3_2 => None,
        }
    }
}

impl core::fmt::Display for CoreFrequency {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} GHz", self.ghz().value())
    }
}

/// An uncore-domain frequency, clamped to the paper's 1.2–2.8 GHz range.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct UncoreFrequency(GigaHertz);

impl UncoreFrequency {
    /// Lowest uncore frequency (1.2 GHz).
    pub const MIN_GHZ: f64 = 1.2;
    /// Highest uncore frequency (2.8 GHz).
    pub const MAX_GHZ: f64 = 2.8;

    /// Creates an uncore frequency, clamping into `[1.2, 2.8]` GHz.
    pub fn new(ghz: GigaHertz) -> Self {
        Self(GigaHertz::new(
            ghz.value().clamp(Self::MIN_GHZ, Self::MAX_GHZ),
        ))
    }

    /// The lowest operating point.
    pub fn min() -> Self {
        Self(GigaHertz::new(Self::MIN_GHZ))
    }

    /// The highest operating point.
    pub fn max() -> Self {
        Self(GigaHertz::new(Self::MAX_GHZ))
    }

    /// The clock frequency.
    pub fn ghz(self) -> GigaHertz {
        self.0
    }

    /// Position of this frequency within the range, in `[0, 1]`.
    pub fn range_fraction(self) -> f64 {
        (self.0.value() - Self::MIN_GHZ) / (Self::MAX_GHZ - Self::MIN_GHZ)
    }
}

impl Default for UncoreFrequency {
    fn default() -> Self {
        Self::max()
    }
}

impl core::fmt::Display for UncoreFrequency {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "uncore {:.1} GHz", self.0.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_scale_is_monotonic_and_normalised() {
        let s: Vec<f64> = CoreFrequency::ALL.iter().map(|f| f.dvfs_scale()).collect();
        assert!(s[0] < s[1] && s[1] < s[2]);
        assert_eq!(s[2], 1.0);
        // f·V² at 2.6 GHz/0.95 V is ≈ 55 % of the 3.2 GHz/1.15 V point.
        assert!((s[0] - 0.554).abs() < 0.01);
    }

    #[test]
    fn lower_higher_walk() {
        assert_eq!(CoreFrequency::F3_2.lower(), Some(CoreFrequency::F2_9));
        assert_eq!(CoreFrequency::F2_6.lower(), None);
        assert_eq!(CoreFrequency::F2_6.higher(), Some(CoreFrequency::F2_9));
        assert_eq!(CoreFrequency::F3_2.higher(), None);
    }

    #[test]
    fn uncore_clamps() {
        assert_eq!(UncoreFrequency::new(GigaHertz::new(5.0)).ghz().value(), 2.8);
        assert_eq!(UncoreFrequency::new(GigaHertz::new(0.5)).ghz().value(), 1.2);
        assert_eq!(UncoreFrequency::min().range_fraction(), 0.0);
        assert_eq!(UncoreFrequency::max().range_fraction(), 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(CoreFrequency::F2_9.to_string(), "2.9 GHz");
        assert_eq!(UncoreFrequency::min().to_string(), "uncore 1.2 GHz");
    }
}
