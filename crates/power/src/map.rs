//! Rasterizing component powers onto simulation grids.

use tps_floorplan::{rasterize_rect, ComponentKind, Floorplan, GridSpec, Rect, ScalarField};
use tps_units::Watts;

/// Width fraction of a core occupied by its execution cluster (ALU/FPU/
/// register files — the within-core hot spot visible in die thermography).
const CORE_HOT_WIDTH_FRACTION: f64 = 0.40;

/// Share of the core's power dissipated inside the execution cluster.
///
/// Broadwell-class cores concentrate roughly two thirds of their power in
/// about 40 % of the core area; modelling this is what keeps die hot spots
/// high even for low-core-count configurations (the paper's Table II shows
/// only a ~10 °C drop from 1× to 3× QoS despite halving the package power).
const CORE_HOT_POWER_FRACTION: f64 = 0.65;

/// Power dissipated by each die component — the `H_i` heat-source vector of
/// Algorithm 1 (line 7), before rasterization onto the thermal grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DiePowerBreakdown {
    /// Power of cores 1–8 (index 0 = Core1). Idle cores carry their C-state
    /// residual power, not zero.
    pub core: [Watts; 8],
    /// Last-level cache power.
    pub llc: Watts,
    /// Memory-controller strip power.
    pub mem_ctl: Watts,
    /// Queue/uncore/IO strip power.
    pub uncore_io: Watts,
}

impl DiePowerBreakdown {
    /// An all-zero breakdown.
    pub fn zero() -> Self {
        Self {
            core: [Watts::ZERO; 8],
            llc: Watts::ZERO,
            mem_ctl: Watts::ZERO,
            uncore_io: Watts::ZERO,
        }
    }

    /// Total die power.
    pub fn total(&self) -> Watts {
        self.core.iter().copied().sum::<Watts>() + self.llc + self.mem_ctl + self.uncore_io
    }

    /// The power assigned to a component kind.
    pub fn power_of(&self, kind: ComponentKind) -> Watts {
        match kind {
            ComponentKind::Core(i) if (1..=8).contains(&i) => self.core[i as usize - 1],
            ComponentKind::Core(_) => Watts::ZERO,
            ComponentKind::LastLevelCache => self.llc,
            ComponentKind::MemoryController => self.mem_ctl,
            ComponentKind::UncoreIo => self.uncore_io,
            ComponentKind::ReservedCore | ComponentKind::Filler => Watts::ZERO,
        }
    }
}

impl core::fmt::Display for DiePowerBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "die power {:.1} (cores", self.total())?;
        for c in &self.core {
            write!(f, " {:.1}", c.value())?;
        }
        write!(
            f,
            " W; llc {:.1}, mem {:.1}, io {:.1})",
            self.llc.value(),
            self.mem_ctl.value(),
            self.uncore_io.value()
        )
    }
}

/// Rasterizes a [`DiePowerBreakdown`] onto `grid` (watts per cell).
///
/// `offset` translates die coordinates into grid coordinates (the die origin
/// within the package). The rasterization is conservative: the field total
/// equals [`DiePowerBreakdown::total`].
///
/// ```
/// use tps_floorplan::{xeon_e5_v4, GridSpec, Rect};
/// use tps_power::{power_field, DiePowerBreakdown};
/// use tps_units::Watts;
///
/// let fp = xeon_e5_v4();
/// let grid = GridSpec::new(36, 28, *fp.outline());
/// let mut powers = DiePowerBreakdown::zero();
/// powers.core[0] = Watts::new(8.0);
/// let field = power_field(&fp, &grid, (0.0, 0.0), &powers);
/// assert!((field.total() - 8.0).abs() < 1e-9);
/// ```
pub fn power_field(
    fp: &Floorplan,
    grid: &GridSpec,
    offset: (f64, f64),
    powers: &DiePowerBreakdown,
) -> ScalarField {
    let mut field = ScalarField::zeros(grid.clone());
    for block in fp.blocks() {
        let total = powers.power_of(block.kind()).value();
        if total == 0.0 {
            continue;
        }
        let rect = block.rect().translated(offset.0, offset.1);
        if matches!(block.kind(), ComponentKind::Core(_)) {
            // Within-core structure: a centred execution-cluster strip
            // carries most of the power, the caches the rest.
            let hot_w = rect.width().value() * CORE_HOT_WIDTH_FRACTION;
            let hot = Rect::from_m(
                rect.x_min() + (rect.width().value() - hot_w) / 2.0,
                rect.y_min(),
                hot_w,
                rect.height().value(),
            );
            rasterize_rect(&mut field, &hot, total * CORE_HOT_POWER_FRACTION);
            rasterize_rect(&mut field, &rect, total * (1.0 - CORE_HOT_POWER_FRACTION));
        } else {
            rasterize_rect(&mut field, &rect, total);
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_floorplan::{xeon_e5_v4, Rect};

    fn uniform_breakdown() -> DiePowerBreakdown {
        DiePowerBreakdown {
            core: [Watts::new(5.0); 8],
            llc: Watts::new(2.0),
            mem_ctl: Watts::new(4.0),
            uncore_io: Watts::new(5.0),
        }
    }

    #[test]
    fn total_sums_all_components() {
        assert_eq!(uniform_breakdown().total(), Watts::new(51.0));
        assert_eq!(DiePowerBreakdown::zero().total(), Watts::ZERO);
    }

    #[test]
    fn power_of_kind() {
        let b = uniform_breakdown();
        assert_eq!(b.power_of(ComponentKind::Core(3)), Watts::new(5.0));
        assert_eq!(b.power_of(ComponentKind::ReservedCore), Watts::ZERO);
        assert_eq!(b.power_of(ComponentKind::LastLevelCache), Watts::new(2.0));
        assert_eq!(b.power_of(ComponentKind::Core(9)), Watts::ZERO);
    }

    #[test]
    fn field_conserves_power() {
        let fp = xeon_e5_v4();
        let grid = GridSpec::new(45, 40, *fp.outline());
        let b = uniform_breakdown();
        let f = power_field(&fp, &grid, (0.0, 0.0), &b);
        assert!((f.total() - b.total().value()).abs() < 1e-9);
    }

    #[test]
    fn west_side_is_hotter_than_llc_side() {
        // Cores dissipate on the west half; the LLC east half is nearly dark.
        let fp = xeon_e5_v4();
        let grid = GridSpec::new(36, 28, *fp.outline());
        let f = power_field(&fp, &grid, (0.0, 0.0), &uniform_breakdown());
        let west = Rect::from_mm(0.0, 2.4, 9.0, 11.27);
        let east = Rect::from_mm(9.0, 2.4, 9.0, 11.27);
        assert!(f.mean_in_rect(&west).unwrap() > 4.0 * f.mean_in_rect(&east).unwrap());
    }

    #[test]
    fn reserved_slots_get_no_power() {
        let fp = xeon_e5_v4();
        let grid = GridSpec::new(36, 28, *fp.outline());
        let f = power_field(&fp, &grid, (0.0, 0.0), &uniform_breakdown());
        // South-west corner of the core region = reserved-w slot (row 4).
        // Its cells receive zero power.
        let reserved = Rect::from_mm(0.5, 2.6, 3.5, 1.5);
        assert!(f.max_in_rect(&reserved).unwrap() < 1e-12);
    }
}
