//! Decomposed package power: uncore, idle cores, active cores.

use crate::cstate::CState;
use crate::frequency::{CoreFrequency, UncoreFrequency};
use tps_units::{GigaHertz, Watts};

/// Number of cores in the target package.
pub(crate) const N_CORES: usize = 8;

/// The paper's Table I: package power with all 8 cores in the given C-state,
/// at core frequency 2.6 / 2.9 / 3.2 GHz.
const TABLE_I: [(CState, [f64; 3]); 3] = [
    (CState::Poll, [27.0, 32.0, 40.0]),
    (CState::C1, [14.0, 15.0, 17.0]),
    (CState::C1e, [9.0, 9.0, 9.0]),
];

fn freq_column(freq: CoreFrequency) -> usize {
    match freq {
        CoreFrequency::F2_6 => 0,
        CoreFrequency::F2_9 => 1,
        CoreFrequency::F3_2 => 2,
    }
}

/// Uncore power: LLC + memory controller + IO (Sec. IV-C2).
///
/// "a constant component … 9 W overhead in all operating points" plus a
/// component "proportional to the … uncore frequency" providing "an 8 W
/// variation from the minimum to maximum uncore frequency", plus the LLC
/// model "2 W in the worst case".
#[derive(Debug, Clone, PartialEq)]
pub struct UncorePowerModel {
    static_w: f64,
    prop_span_w: f64,
    llc_max_w: f64,
}

impl UncorePowerModel {
    /// The Xeon E5 v4 parameters measured in the paper.
    pub fn xeon_e5_v4() -> Self {
        Self {
            static_w: 9.0,
            prop_span_w: 8.0,
            llc_max_w: 2.0,
        }
    }

    /// The constant (static) uncore component.
    pub fn static_power(&self) -> Watts {
        Watts::new(self.static_w)
    }

    /// The worst-case LLC power.
    pub fn llc_max_power(&self) -> Watts {
        Watts::new(self.llc_max_w)
    }

    /// Memory-controller + IO power at an uncore operating point
    /// (excluding the LLC contribution).
    pub fn mem_io_power(&self, freq: UncoreFrequency) -> Watts {
        Watts::new(self.static_w + self.prop_span_w * freq.range_fraction())
    }

    /// LLC power at a given activity level in `[0, 1]`
    /// (1.0 = the paper's 2 W worst case).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn llc_power(&self, activity: f64) -> Watts {
        assert!(
            (0.0..=1.0).contains(&activity),
            "LLC activity {activity} outside [0, 1]"
        );
        Watts::new(self.llc_max_w * activity)
    }

    /// Total uncore power: memory controller + IO + LLC.
    pub fn total_power(&self, freq: UncoreFrequency, llc_activity: f64) -> Watts {
        self.mem_io_power(freq) + self.llc_power(llc_activity)
    }
}

impl Default for UncorePowerModel {
    fn default() -> Self {
        Self::xeon_e5_v4()
    }
}

/// Idle-power model reproducing the paper's Table I by construction.
///
/// The decomposition assumes that with the whole package idle, the uncore
/// clocks down with the core frequency (1.2/1.6/2.0 GHz at core
/// 2.6/2.9/3.2 GHz; pinned at 1.2 GHz for C1E and deeper); the per-core
/// share is then `(Table I − uncore) / 8`. Re-composing 8 cores + uncore
/// reproduces Table I exactly, which `table1_cstates` verifies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdlePowerModel {
    uncore: UncorePowerModel,
}

impl IdlePowerModel {
    /// The Xeon E5 v4 model.
    pub fn xeon_e5_v4() -> Self {
        Self {
            uncore: UncorePowerModel::xeon_e5_v4(),
        }
    }

    /// The uncore sub-model.
    pub fn uncore(&self) -> &UncorePowerModel {
        &self.uncore
    }

    /// Uncore frequency assumed while the package idles in `cstate`.
    pub fn idle_uncore_frequency(&self, cstate: CState, freq: CoreFrequency) -> UncoreFrequency {
        match cstate {
            CState::Poll | CState::C1 => {
                let ghz = match freq {
                    CoreFrequency::F2_6 => 1.2,
                    CoreFrequency::F2_9 => 1.6,
                    CoreFrequency::F3_2 => 2.0,
                };
                UncoreFrequency::new(GigaHertz::new(ghz))
            }
            _ => UncoreFrequency::min(),
        }
    }

    /// Uncore power while the package idles in `cstate`.
    pub fn uncore_idle_power(&self, cstate: CState, freq: CoreFrequency) -> Watts {
        self.uncore
            .total_power(self.idle_uncore_frequency(cstate, freq), 0.0)
    }

    /// Per-core idle power in `cstate` at core frequency `freq`.
    ///
    /// POLL/C1/C1E derive from Table I; C3/C6 are extrapolated to zero core
    /// power (deep states matter through wake latency, not residual power).
    pub fn core_idle_power(&self, cstate: CState, freq: CoreFrequency) -> Watts {
        let table_pkg = TABLE_I
            .iter()
            .find(|(s, _)| *s == cstate)
            .map(|(_, row)| row[freq_column(freq)]);
        match table_pkg {
            Some(pkg) => {
                let uncore = self.uncore_idle_power(cstate, freq).value();
                Watts::new(((pkg - uncore) / N_CORES as f64).max(0.0))
            }
            None => Watts::ZERO,
        }
    }

    /// Package power with all 8 cores idle in `cstate`.
    ///
    /// For POLL/C1/C1E this equals the paper's Table I.
    pub fn package_idle_power(&self, cstate: CState, freq: CoreFrequency) -> Watts {
        self.core_idle_power(cstate, freq) * N_CORES as f64 + self.uncore_idle_power(cstate, freq)
    }

    /// The paper's Table I value, if the state is listed there.
    pub fn table_i(cstate: CState, freq: CoreFrequency) -> Option<Watts> {
        TABLE_I
            .iter()
            .find(|(s, _)| *s == cstate)
            .map(|(_, row)| Watts::new(row[freq_column(freq)]))
    }
}

/// Active-core power: POLL baseline plus workload dynamic power.
///
/// `P_active = P_idle,POLL(f) + P_dyn,fmax · dvfs_scale(f) · util · smt`,
/// where `P_dyn,fmax` is the benchmark's per-core dynamic power at `f_max`
/// (provided by `tps-workload`) and the SMT factor models the extra
/// switching activity of a second hardware thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActiveCorePower {
    idle: IdlePowerModel,
}

impl ActiveCorePower {
    /// SMT activity factor for two hardware threads per core.
    pub const SMT_FACTOR: f64 = 1.15;

    /// The Xeon E5 v4 model.
    pub fn xeon_e5_v4() -> Self {
        Self {
            idle: IdlePowerModel::xeon_e5_v4(),
        }
    }

    /// The idle sub-model.
    pub fn idle(&self) -> &IdlePowerModel {
        &self.idle
    }

    /// Power of one active core.
    ///
    /// * `dyn_fmax` — the benchmark's per-core dynamic power at `f_max`
    ///   with one thread,
    /// * `utilization` — busy fraction in `[0, 1]`,
    /// * `threads` — hardware threads on this core (1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]` or `threads` not 1/2.
    pub fn power(
        &self,
        freq: CoreFrequency,
        dyn_fmax: Watts,
        utilization: f64,
        threads: u8,
    ) -> Watts {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization {utilization} outside [0, 1]"
        );
        assert!(threads == 1 || threads == 2, "threads must be 1 or 2");
        let smt = if threads == 2 { Self::SMT_FACTOR } else { 1.0 };
        self.idle.core_idle_power(CState::Poll, freq)
            + dyn_fmax * freq.dvfs_scale() * utilization * smt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_idle_reproduces_table_i_exactly() {
        let m = IdlePowerModel::xeon_e5_v4();
        for (state, row) in TABLE_I {
            for (col, freq) in CoreFrequency::ALL.into_iter().enumerate() {
                let pkg = m.package_idle_power(state, freq);
                assert!(
                    (pkg.value() - row[col]).abs() < 1e-9,
                    "{state} @ {freq}: {pkg} != {} W",
                    row[col]
                );
            }
        }
    }

    #[test]
    fn deeper_states_use_less_power() {
        let m = IdlePowerModel::xeon_e5_v4();
        for freq in CoreFrequency::ALL {
            let poll = m.package_idle_power(CState::Poll, freq);
            let c1 = m.package_idle_power(CState::C1, freq);
            let c1e = m.package_idle_power(CState::C1e, freq);
            let c6 = m.package_idle_power(CState::C6, freq);
            assert!(poll > c1 && c1 > c1e && c1e >= c6);
        }
    }

    #[test]
    fn poll_core_power_is_significant() {
        // Sec. VII: "the static power of idle [POLL] cores is comparable to
        // the dynamic power consumption of active ones".
        let m = IdlePowerModel::xeon_e5_v4();
        let poll = m.core_idle_power(CState::Poll, CoreFrequency::F3_2);
        assert!(poll.value() > 3.0, "POLL core power {poll} too small");
        let c1 = m.core_idle_power(CState::C1, CoreFrequency::F3_2);
        assert!(c1.value() < 1.0, "C1 core power {c1} too large");
    }

    #[test]
    fn uncore_span_is_8w() {
        let u = UncorePowerModel::xeon_e5_v4();
        let span = u.mem_io_power(UncoreFrequency::max()) - u.mem_io_power(UncoreFrequency::min());
        assert_eq!(span, Watts::new(8.0));
        assert_eq!(u.mem_io_power(UncoreFrequency::min()), Watts::new(9.0));
        assert_eq!(u.llc_power(1.0), Watts::new(2.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn llc_activity_validated() {
        let _ = UncorePowerModel::xeon_e5_v4().llc_power(1.5);
    }

    #[test]
    fn active_power_scales_with_frequency_and_smt() {
        let a = ActiveCorePower::xeon_e5_v4();
        let dyn_fmax = Watts::new(4.0);
        let low = a.power(CoreFrequency::F2_6, dyn_fmax, 1.0, 1);
        let high = a.power(CoreFrequency::F3_2, dyn_fmax, 1.0, 1);
        let smt = a.power(CoreFrequency::F3_2, dyn_fmax, 1.0, 2);
        assert!(low < high && high < smt);
        // At f_max, 1 thread, full utilization: POLL idle + dyn.
        let expected = a.idle().core_idle_power(CState::Poll, CoreFrequency::F3_2) + dyn_fmax;
        assert!((high.value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn full_load_package_power_is_in_paper_range() {
        // 8 power-hungry cores at f_max + busy uncore ⇒ close to the paper's
        // 79.3 W maximum, and never above ~85 W.
        let a = ActiveCorePower::xeon_e5_v4();
        let u = UncorePowerModel::xeon_e5_v4();
        let per_core = a.power(CoreFrequency::F3_2, Watts::new(4.2), 1.0, 2);
        let pkg = per_core * 8.0 + u.total_power(UncoreFrequency::max(), 1.0);
        assert!(
            pkg.value() > 70.0 && pkg.value() < 90.0,
            "full-load package power {pkg} outside the expected band"
        );
    }
}
