//! Server CPU power models for the Xeon E5 v4 target of the paper.
//!
//! The crate decomposes the package power into the two contributors of
//! Sec. IV-C: the **core region** (cores + L1/L2, dependent on the DVFS
//! operating point, the C-state of idle cores and the workload's dynamic
//! power) and the **uncore** (LLC + memory controller + IO, with a 9 W static
//! component and an uncore-frequency-proportional component spanning 8 W over
//! 1.2–2.8 GHz, plus up to 2 W of LLC power).
//!
//! The paper's Table I (package idle power for POLL/C1/C1E at 2.6/2.9/3.2 GHz)
//! is stored as ground truth; [`IdlePowerModel`] decomposes it into per-core
//! and uncore parts such that re-composing reproduces the table exactly —
//! this is what the `table1_cstates` experiment binary checks.
//!
//! ```
//! use tps_power::{CState, CoreFrequency, IdlePowerModel};
//!
//! let model = IdlePowerModel::xeon_e5_v4();
//! let pkg = model.package_idle_power(CState::Poll, CoreFrequency::F3_2);
//! assert_eq!(pkg, tps_units::Watts::new(40.0)); // Table I, POLL @ 3.2 GHz
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cstate;
mod frequency;
mod map;
mod model;
mod rapl;

pub use cstate::CState;
pub use frequency::{CoreFrequency, UncoreFrequency};
pub use map::{power_field, DiePowerBreakdown};
pub use model::{ActiveCorePower, IdlePowerModel, UncorePowerModel};
pub use rapl::{RaplCounter, RaplDomain};
