//! Heat-transfer and pressure-drop correlations for the evaporator and
//! condenser models.
//!
//! All correlations are standard textbook forms; each documents its source
//! and validity envelope. The flow-boiling model is deliberately simple —
//! Cooper pool boiling with a quality-dependent enhancement/dryout factor —
//! because what the paper's mapping exploits is its *shape*: boiling improves
//! with vapour quality up to a critical quality and then collapses
//! (dryout), which makes the channel outlet run hotter than the inlet and
//! penalizes co-linear hot spots that share channels.

use tps_units::{
    Density, DynamicViscosity, Fraction, HeatFlux, HeatTransferCoeff, SpecificHeat,
    ThermalConductivity,
};

/// Cooper's pool-boiling correlation (1984):
/// `h = 55 · p_r^(0.12−0.2·log10 Rp) · (−log10 p_r)^(−0.55) · M^(−0.5) · q″^0.67`
/// with surface roughness `Rp` in µm and molar mass `M` in kg/kmol.
///
/// Valid for `0.001 < p_r < 0.9` and fluxes up to several hundred kW/m² —
/// comfortably covering the evaporator's ~10–200 kW/m² envelope.
///
/// # Panics
///
/// Panics if `p_reduced` is outside `(0, 1)` or inputs are non-positive.
pub fn cooper_pool_boiling(
    p_reduced: f64,
    molar_mass: f64,
    q: HeatFlux,
    roughness_um: f64,
) -> HeatTransferCoeff {
    assert!(
        p_reduced > 0.0 && p_reduced < 1.0,
        "reduced pressure {p_reduced} outside (0, 1)"
    );
    assert!(molar_mass > 0.0 && roughness_um > 0.0);
    let q = q.value().max(1.0); // floor avoids h = 0 at zero flux
    let exp_pr = 0.12 - 0.2 * roughness_um.log10();
    let h = 55.0
        * p_reduced.powf(exp_pr)
        * (-p_reduced.log10()).powf(-0.55)
        * molar_mass.powf(-0.5)
        * q.powf(0.67);
    HeatTransferCoeff::new(h)
}

/// Flow-boiling enhancement/suppression factor `S(x)` applied to the Cooper
/// pool-boiling coefficient in micro-channels.
///
/// Convective contribution grows with vapour quality
/// (`1 + 1.8·x^0.8`, after Kandlikar's convective term) until the local
/// quality approaches the dryout threshold `x_crit`, past which the wetted
/// fraction — and with it the coefficient — collapses exponentially towards
/// a vapour-convection floor of 5 %.
pub fn flow_boiling_factor(x: Fraction, x_crit: Fraction) -> f64 {
    let x = x.value();
    let enhancement = 1.0 + 1.8 * x.powf(0.8);
    let dry = if x <= x_crit.value() {
        1.0
    } else {
        (-12.0 * (x - x_crit.value())).exp()
    };
    (enhancement * dry).max(0.05)
}

/// Fully developed laminar Nusselt number for a circular duct with constant
/// heat flux (`Nu = 4.36`); micro-channel liquid flow is laminar
/// (`Re ~ 100–1000`).
pub fn laminar_nusselt() -> f64 {
    4.36
}

/// Single-phase convective coefficient `h = Nu·k/D_h` for laminar duct flow.
///
/// # Panics
///
/// Panics if the hydraulic diameter is not positive.
pub fn laminar_htc(k: ThermalConductivity, hydraulic_diameter_m: f64) -> HeatTransferCoeff {
    assert!(
        hydraulic_diameter_m > 0.0,
        "hydraulic diameter must be positive"
    );
    HeatTransferCoeff::new(laminar_nusselt() * k.value() / hydraulic_diameter_m)
}

/// Dittus–Boelter correlation `Nu = 0.023·Re^0.8·Pr^0.4` (heating) for
/// turbulent duct flow (`Re > 4000`), used on the condenser's water side
/// when the flow turns turbulent.
///
/// # Panics
///
/// Panics if `re` or `pr` is not positive.
pub fn dittus_boelter_nusselt(re: f64, pr: f64) -> f64 {
    assert!(re > 0.0 && pr > 0.0, "Re and Pr must be positive");
    0.023 * re.powf(0.8) * pr.powf(0.4)
}

/// Reynolds number from mass flux `G` (kg/m²s), hydraulic diameter and
/// viscosity.
///
/// # Panics
///
/// Panics if the viscosity is not positive.
pub fn reynolds(mass_flux: f64, hydraulic_diameter_m: f64, mu: DynamicViscosity) -> f64 {
    assert!(mu.value() > 0.0, "viscosity must be positive");
    mass_flux * hydraulic_diameter_m / mu.value()
}

/// Prandtl number `c_p·μ/k`.
pub fn prandtl(cp: SpecificHeat, mu: DynamicViscosity, k: ThermalConductivity) -> f64 {
    cp.value() * mu.value() / k.value()
}

/// Darcy friction factor for laminar duct flow, `f = 64/Re`.
///
/// # Panics
///
/// Panics if `re` is not positive.
pub fn laminar_friction_factor(re: f64) -> f64 {
    assert!(re > 0.0, "Re must be positive");
    64.0 / re
}

/// Lockhart–Martinelli two-phase frictional multiplier `φ_l²` on the
/// liquid-only pressure gradient, with the laminar–laminar Chisholm
/// parameter `C = 5`.
///
/// Returns 1.0 at zero quality (pure liquid).
pub fn lockhart_martinelli_multiplier(
    x: Fraction,
    rho_l: Density,
    rho_v: Density,
    mu_l: DynamicViscosity,
    mu_v: DynamicViscosity,
) -> f64 {
    let x = x.value();
    if x <= 0.0 {
        return 1.0;
    }
    if x >= 1.0 {
        // Vapour-only limit: express the vapour gradient in liquid terms.
        return (rho_l.value() / rho_v.value()) * (mu_v.value() / mu_l.value());
    }
    // Martinelli parameter for laminar-laminar flow.
    let xtt = ((1.0 - x) / x).powf(0.9)
        * (rho_v.value() / rho_l.value()).powf(0.5)
        * (mu_l.value() / mu_v.value()).powf(0.1);
    1.0 + 5.0 / xtt + 1.0 / (xtt * xtt)
}

/// Homogeneous void fraction `α = 1 / (1 + ((1−x)/x)·(ρ_v/ρ_l))`.
///
/// Returns 0 at `x = 0` and 1 at `x = 1`.
pub fn homogeneous_void_fraction(x: Fraction, rho_l: Density, rho_v: Density) -> Fraction {
    let x = x.value();
    if x <= 0.0 {
        return Fraction::ZERO;
    }
    if x >= 1.0 {
        return Fraction::ONE;
    }
    let alpha = 1.0 / (1.0 + ((1.0 - x) / x) * (rho_v.value() / rho_l.value()));
    Fraction::saturating(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refrigerant::Refrigerant;
    use proptest::prelude::*;
    use tps_units::Celsius;

    #[test]
    fn cooper_magnitude_for_r236fa() {
        // At p_r ≈ 0.12, M = 152, q″ = 68.6 kW/m²: h ≈ 6.3 kW/m²K
        // (hand-computed from the correlation).
        let r = Refrigerant::R236fa;
        let t = Celsius::new(36.0);
        let h = cooper_pool_boiling(
            r.reduced_pressure(t),
            r.molar_mass(),
            HeatFlux::new(68_600.0),
            1.0,
        );
        assert!((h.value() - 6300.0).abs() < 700.0, "h = {h}");
    }

    #[test]
    fn cooper_increases_with_flux_and_pressure() {
        let h1 = cooper_pool_boiling(0.1, 152.0, HeatFlux::new(5e4), 1.0);
        let h2 = cooper_pool_boiling(0.1, 152.0, HeatFlux::new(1e5), 1.0);
        let h3 = cooper_pool_boiling(0.2, 152.0, HeatFlux::new(5e4), 1.0);
        assert!(h2 > h1);
        assert!(h3 > h1);
    }

    #[test]
    fn flow_boiling_rises_then_collapses() {
        let xc = Fraction::new(0.45).unwrap();
        let s0 = flow_boiling_factor(Fraction::ZERO, xc);
        let s_mid = flow_boiling_factor(Fraction::new(0.4).unwrap(), xc);
        let s_dry = flow_boiling_factor(Fraction::new(0.8).unwrap(), xc);
        assert!((s0 - 1.0).abs() < 1e-12);
        assert!(s_mid > 1.5, "mid-quality enhancement {s_mid}");
        assert!(s_dry < 0.3, "post-dryout factor {s_dry}");
    }

    #[test]
    fn dryout_threshold_matters() {
        // Lower x_crit ⇒ earlier collapse (the filling-ratio lever).
        let x = Fraction::new(0.5).unwrap();
        let low = flow_boiling_factor(x, Fraction::new(0.3).unwrap());
        let high = flow_boiling_factor(x, Fraction::new(0.6).unwrap());
        assert!(low < high);
    }

    #[test]
    fn laminar_htc_scale() {
        // k = 0.0744 W/mK, D_h = 0.8 mm ⇒ h ≈ 405 W/m²K.
        let h = laminar_htc(ThermalConductivity::new(0.0744), 0.8e-3);
        assert!((h.value() - 405.0).abs() < 10.0);
    }

    #[test]
    fn dittus_boelter_magnitude() {
        // Re = 10⁴, Pr = 6 ⇒ Nu ≈ 75.
        let nu = dittus_boelter_nusselt(1e4, 6.0);
        assert!((nu - 74.6).abs() < 2.0, "Nu = {nu}");
    }

    #[test]
    fn friction_factor_laminar() {
        assert!((laminar_friction_factor(640.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn void_fraction_limits() {
        let r = Refrigerant::R236fa;
        let t = Celsius::new(30.0);
        let (rl, rv) = (r.liquid_density(t), r.vapor_density(t));
        assert_eq!(
            homogeneous_void_fraction(Fraction::ZERO, rl, rv),
            Fraction::ZERO
        );
        assert_eq!(
            homogeneous_void_fraction(Fraction::ONE, rl, rv),
            Fraction::ONE
        );
        // Small quality already yields large void (density ratio ~65).
        let alpha = homogeneous_void_fraction(Fraction::new(0.1).unwrap(), rl, rv);
        assert!(alpha.value() > 0.8, "α = {alpha}");
    }

    proptest! {
        #[test]
        fn void_fraction_monotonic(x1 in 0.0f64..0.99, dx in 0.001f64..0.01) {
            let r = Refrigerant::R236fa;
            let t = Celsius::new(30.0);
            let (rl, rv) = (r.liquid_density(t), r.vapor_density(t));
            let a1 = homogeneous_void_fraction(Fraction::new(x1).unwrap(), rl, rv);
            let a2 = homogeneous_void_fraction(Fraction::new((x1 + dx).min(1.0)).unwrap(), rl, rv);
            prop_assert!(a2 >= a1);
        }

        #[test]
        fn lm_multiplier_at_least_one_in_two_phase(x in 0.0f64..0.9) {
            let r = Refrigerant::R236fa;
            let t = Celsius::new(30.0);
            let phi = lockhart_martinelli_multiplier(
                Fraction::new(x).unwrap(),
                r.liquid_density(t),
                r.vapor_density(t),
                r.liquid_viscosity(t),
                r.vapor_viscosity(t),
            );
            prop_assert!(phi >= 1.0 - 1e-12);
        }

        #[test]
        fn flow_boiling_factor_bounded(x in 0.0f64..=1.0, xc in 0.1f64..0.9) {
            let s = flow_boiling_factor(
                Fraction::new(x).unwrap(),
                Fraction::new(xc).unwrap(),
            );
            prop_assert!((0.05..=3.0).contains(&s));
        }
    }
}
