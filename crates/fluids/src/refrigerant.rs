//! Refrigerant property correlations.

use tps_units::{
    Celsius, Density, DynamicViscosity, JoulesPerKg, Pascals, SpecificHeat, ThermalConductivity,
};

/// Universal gas constant, J/(mol·K).
const R_GAS: f64 = 8.314_462;

/// A candidate working fluid for the thermosyphon.
///
/// R236fa is the paper's choice; R134a (higher pressure, higher latent heat)
/// and R245fa (low pressure, high latent heat) are the alternatives the
/// design optimizer explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Refrigerant {
    /// 1,1,1,3,3,3-hexafluoropropane — the paper's working fluid.
    R236fa,
    /// 1,1,1,2-tetrafluoroethane.
    R134a,
    /// 1,1,1,3,3-pentafluoropropane.
    R245fa,
}

impl Refrigerant {
    /// All supported refrigerants.
    pub const ALL: [Refrigerant; 3] =
        [Refrigerant::R236fa, Refrigerant::R134a, Refrigerant::R245fa];

    /// Molar mass in kg/kmol (= g/mol).
    pub fn molar_mass(self) -> f64 {
        match self {
            Refrigerant::R236fa => 152.04,
            Refrigerant::R134a => 102.03,
            Refrigerant::R245fa => 134.05,
        }
    }

    /// Critical pressure.
    pub fn critical_pressure(self) -> Pascals {
        match self {
            Refrigerant::R236fa => Pascals::from_kpa(3200.0),
            Refrigerant::R134a => Pascals::from_kpa(4059.0),
            Refrigerant::R245fa => Pascals::from_kpa(3651.0),
        }
    }

    /// Critical temperature (kelvin).
    pub fn critical_temperature_k(self) -> f64 {
        match self {
            Refrigerant::R236fa => 398.07,
            Refrigerant::R134a => 374.21,
            Refrigerant::R245fa => 427.16,
        }
    }

    /// Antoine constants `(A, B, C)` for `log10(P[kPa]) = A − B/(T[°C] + C)`,
    /// fitted to tabulated saturation data at 0/25/50 °C.
    fn antoine(self) -> (f64, f64, f64) {
        match self {
            Refrigerant::R236fa => (5.962, 845.6, 214.8),
            Refrigerant::R134a => (6.345, 957.1, 246.8),
            Refrigerant::R245fa => (6.217, 1020.3, 227.3),
        }
    }

    /// Saturation pressure at `t_sat`.
    ///
    /// # Panics
    ///
    /// Panics if `t_sat` is outside the fitted −20…80 °C envelope.
    pub fn saturation_pressure(self, t_sat: Celsius) -> Pascals {
        self.assert_envelope(t_sat);
        let (a, b, c) = self.antoine();
        Pascals::from_kpa(10f64.powf(a - b / (t_sat.value() + c)))
    }

    /// Saturation temperature at pressure `p` (inverse Antoine).
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the fitted −20…80 °C envelope.
    pub fn saturation_temperature(self, p: Pascals) -> Celsius {
        let (a, b, c) = self.antoine();
        let t = Celsius::new(b / (a - p.to_kpa().log10()) - c);
        self.assert_envelope(t);
        t
    }

    /// Reduced pressure `p_sat / p_crit` (drives the Cooper correlation).
    pub fn reduced_pressure(self, t_sat: Celsius) -> f64 {
        self.saturation_pressure(t_sat).value() / self.critical_pressure().value()
    }

    /// Latent heat of vaporization via the Watson relation, anchored at
    /// 25 °C (R236fa: 145.4, R134a: 177.8, R245fa: 190.3 kJ/kg).
    pub fn latent_heat(self, t_sat: Celsius) -> JoulesPerKg {
        self.assert_envelope(t_sat);
        let anchor_kj = match self {
            Refrigerant::R236fa => 145.4,
            Refrigerant::R134a => 177.8,
            Refrigerant::R245fa => 190.3,
        };
        let tc = self.critical_temperature_k();
        let ratio = (1.0 - t_sat.to_kelvin().value() / tc) / (1.0 - 298.15 / tc);
        JoulesPerKg::new(anchor_kj * 1e3 * ratio.powf(0.38))
    }

    /// Saturated-liquid density (linear fit around 25 °C).
    pub fn liquid_density(self, t_sat: Celsius) -> Density {
        self.assert_envelope(t_sat);
        let (rho25, slope) = match self {
            Refrigerant::R236fa => (1360.0, -3.0),
            Refrigerant::R134a => (1206.0, -3.4),
            Refrigerant::R245fa => (1338.0, -2.6),
        };
        Density::new(rho25 + slope * (t_sat.value() - 25.0))
    }

    /// Saturated-vapour density from the real-gas law with Z = 0.9
    /// (within ~3 % of tabulated data in the 0–50 °C envelope).
    pub fn vapor_density(self, t_sat: Celsius) -> Density {
        let p = self.saturation_pressure(t_sat).value();
        let m_kg_per_mol = self.molar_mass() * 1e-3;
        Density::new(p * m_kg_per_mol / (0.9 * R_GAS * t_sat.to_kelvin().value()))
    }

    /// Saturated-liquid specific heat.
    pub fn liquid_specific_heat(self, t_sat: Celsius) -> SpecificHeat {
        self.assert_envelope(t_sat);
        let cp25 = match self {
            Refrigerant::R236fa => 1220.0,
            Refrigerant::R134a => 1425.0,
            Refrigerant::R245fa => 1322.0,
        };
        SpecificHeat::new(cp25 + 3.0 * (t_sat.value() - 25.0))
    }

    /// Saturated-liquid thermal conductivity.
    pub fn liquid_conductivity(self, t_sat: Celsius) -> ThermalConductivity {
        self.assert_envelope(t_sat);
        let k25 = match self {
            Refrigerant::R236fa => 0.0744,
            Refrigerant::R134a => 0.0824,
            Refrigerant::R245fa => 0.0870,
        };
        ThermalConductivity::new(k25 - 0.0004 * (t_sat.value() - 25.0))
    }

    /// Saturated-liquid dynamic viscosity (exponential decline with T).
    pub fn liquid_viscosity(self, t_sat: Celsius) -> DynamicViscosity {
        self.assert_envelope(t_sat);
        let mu25 = match self {
            Refrigerant::R236fa => 292e-6,
            Refrigerant::R134a => 194e-6,
            Refrigerant::R245fa => 402e-6,
        };
        DynamicViscosity::new(mu25 * (-0.012 * (t_sat.value() - 25.0)).exp())
    }

    /// Saturated-vapour dynamic viscosity (≈ constant in the envelope).
    pub fn vapor_viscosity(self, _t_sat: Celsius) -> DynamicViscosity {
        let mu = match self {
            Refrigerant::R236fa => 10.9e-6,
            Refrigerant::R134a => 12.0e-6,
            Refrigerant::R245fa => 10.2e-6,
        };
        DynamicViscosity::new(mu)
    }

    fn assert_envelope(self, t: Celsius) {
        assert!(
            (-20.0..=80.0).contains(&t.value()),
            "{self:?}: temperature {t} outside the fitted -20..=80 °C envelope"
        );
    }
}

impl core::fmt::Display for Refrigerant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Refrigerant::R236fa => "R236fa",
            Refrigerant::R134a => "R134a",
            Refrigerant::R245fa => "R245fa",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturation_pressure_anchors() {
        // Tabulated: R236fa 272.7 kPa, R134a 665.8 kPa, R245fa 149.3 kPa at 25 °C.
        let t = Celsius::new(25.0);
        assert!((Refrigerant::R236fa.saturation_pressure(t).to_kpa() - 272.7).abs() < 10.0);
        assert!((Refrigerant::R134a.saturation_pressure(t).to_kpa() - 665.8).abs() < 20.0);
        assert!((Refrigerant::R245fa.saturation_pressure(t).to_kpa() - 149.3).abs() < 8.0);
    }

    #[test]
    fn saturation_round_trip() {
        for r in Refrigerant::ALL {
            for t in [0.0, 25.0, 36.0, 50.0] {
                let p = r.saturation_pressure(Celsius::new(t));
                let back = r.saturation_temperature(p);
                assert!((back.value() - t).abs() < 1e-9, "{r}: {t} -> {back}");
            }
        }
    }

    #[test]
    fn r236fa_vapor_density_near_tabulated() {
        // ≈ 18.3 kg/m³ at 25 °C.
        let rho = Refrigerant::R236fa.vapor_density(Celsius::new(25.0));
        assert!((rho.value() - 18.3).abs() < 1.5, "{rho}");
    }

    #[test]
    fn latent_heat_decreases_with_temperature() {
        for r in Refrigerant::ALL {
            let h0 = r.latent_heat(Celsius::new(0.0));
            let h25 = r.latent_heat(Celsius::new(25.0));
            let h50 = r.latent_heat(Celsius::new(50.0));
            assert!(h0 > h25 && h25 > h50, "{r}");
        }
        // Anchor value.
        let h = Refrigerant::R236fa.latent_heat(Celsius::new(25.0));
        assert!((h.value() - 145_400.0).abs() < 100.0);
    }

    #[test]
    fn liquid_much_denser_than_vapor() {
        for r in Refrigerant::ALL {
            let t = Celsius::new(36.0);
            let ratio = r.liquid_density(t).value() / r.vapor_density(t).value();
            assert!(ratio > 25.0, "{r}: density ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "envelope")]
    fn envelope_is_enforced() {
        let _ = Refrigerant::R236fa.saturation_pressure(Celsius::new(120.0));
    }

    proptest! {
        #[test]
        fn pressure_monotonic_in_temperature(t in -19.0f64..79.0) {
            for r in Refrigerant::ALL {
                let p1 = r.saturation_pressure(Celsius::new(t)).value();
                let p2 = r.saturation_pressure(Celsius::new(t + 1.0)).value();
                prop_assert!(p2 > p1);
            }
        }

        #[test]
        fn properties_are_positive(t in -20.0f64..=80.0) {
            for r in Refrigerant::ALL {
                let tc = Celsius::new(t);
                prop_assert!(r.liquid_density(tc).value() > 0.0);
                prop_assert!(r.vapor_density(tc).value() > 0.0);
                prop_assert!(r.latent_heat(tc).value() > 0.0);
                prop_assert!(r.liquid_specific_heat(tc).value() > 0.0);
                prop_assert!(r.liquid_conductivity(tc).value() > 0.0);
                prop_assert!(r.liquid_viscosity(tc).value() > 0.0);
                prop_assert!(r.reduced_pressure(tc) > 0.0 && r.reduced_pressure(tc) < 1.0);
            }
        }
    }
}
