//! Thermophysical properties and heat-transfer correlations for the
//! thermosyphon's working fluids.
//!
//! The paper charges its thermosyphon with **R236fa at a 55 % filling ratio**
//! (Sec. VI-B) and condenses against a water loop. This crate provides:
//!
//! * [`Refrigerant`] — saturation curve (Antoine), latent heat (Watson),
//!   phase densities, liquid transport properties for R236fa and the two
//!   alternatives explored by the design optimizer (R134a, R245fa),
//! * [`Water`] — liquid-water properties for the condenser/chiller loop,
//! * [`correlations`] — Cooper pool boiling, flow-boiling enhancement with
//!   dryout, laminar/turbulent single-phase convection, Lockhart–Martinelli
//!   two-phase friction and the homogeneous void fraction.
//!
//! Property fits are anchored to tabulated data at 0–50 °C (the operating
//! envelope of a 20–35 °C water loop) and documented per method; they are
//! deliberately low-order — the goal is faithful *shape*, not REFPROP
//! accuracy (ARCHITECTURE.md §4).
//!
//! ```
//! use tps_fluids::Refrigerant;
//! use tps_units::Celsius;
//!
//! let r = Refrigerant::R236fa;
//! let p = r.saturation_pressure(Celsius::new(25.0));
//! assert!((p.to_kpa() - 272.0).abs() < 15.0); // ≈ 2.7 bar at 25 °C
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlations;
mod refrigerant;
mod water;

pub use refrigerant::Refrigerant;
pub use water::Water;
