//! Liquid-water properties for the condenser / chiller loop.

use tps_units::{Celsius, Density, DynamicViscosity, SpecificHeat, ThermalConductivity};

/// Liquid water in the 5–60 °C chiller envelope.
///
/// ```
/// use tps_fluids::Water;
/// use tps_units::Celsius;
///
/// let cp = Water::specific_heat(Celsius::new(30.0));
/// assert!((cp.value() - 4180.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Water;

impl Water {
    /// Density (linear fit around 25 °C; −0.25 kg/m³ per kelvin).
    pub fn density(t: Celsius) -> Density {
        Self::assert_envelope(t);
        Density::new(997.0 - 0.25 * (t.value() - 25.0))
    }

    /// Specific heat (≈ constant 4181 J/kgK in the envelope).
    pub fn specific_heat(_t: Celsius) -> SpecificHeat {
        SpecificHeat::new(4181.0)
    }

    /// Thermal conductivity.
    pub fn conductivity(t: Celsius) -> ThermalConductivity {
        Self::assert_envelope(t);
        ThermalConductivity::new(0.606 + 0.0011 * (t.value() - 25.0))
    }

    /// Dynamic viscosity (exponential fit: 0.89 mPa·s at 25 °C).
    pub fn viscosity(t: Celsius) -> DynamicViscosity {
        Self::assert_envelope(t);
        DynamicViscosity::new(0.89e-3 * (-0.02 * (t.value() - 25.0)).exp())
    }

    /// Prandtl number.
    pub fn prandtl(t: Celsius) -> f64 {
        Self::specific_heat(t).value() * Self::viscosity(t).value() / Self::conductivity(t).value()
    }

    fn assert_envelope(t: Celsius) {
        assert!(
            (0.0..=80.0).contains(&t.value()),
            "water temperature {t} outside the 0..=80 °C liquid envelope"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors() {
        assert!((Water::density(Celsius::new(25.0)).value() - 997.0).abs() < 0.1);
        assert!((Water::viscosity(Celsius::new(25.0)).value() - 0.89e-3).abs() < 1e-6);
        assert!((Water::conductivity(Celsius::new(25.0)).value() - 0.606).abs() < 1e-6);
    }

    #[test]
    fn prandtl_near_6_at_25c() {
        let pr = Water::prandtl(Celsius::new(25.0));
        assert!((pr - 6.1).abs() < 0.3, "Pr = {pr}");
    }

    #[test]
    fn viscosity_decreases_with_temperature() {
        assert!(
            Water::viscosity(Celsius::new(40.0)).value()
                < Water::viscosity(Celsius::new(20.0)).value()
        );
    }

    #[test]
    #[should_panic(expected = "liquid envelope")]
    fn envelope_enforced() {
        let _ = Water::density(Celsius::new(120.0));
    }
}
