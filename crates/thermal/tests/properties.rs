//! Property tests on the thermal solver's physical invariants: energy
//! conservation and the discrete maximum principle must hold for *any*
//! stack, grid and power map, not just the calibrated Xeon case.

use proptest::prelude::*;
use tps_floorplan::{GridSpec, Rect, ScalarField};
use tps_thermal::{LayerStack, Material, ThermalModel, TopBoundary};
use tps_units::{Celsius, HeatTransferCoeff};

fn arbitrary_stack(extent: Rect, layers: usize, die_frac: f64) -> LayerStack {
    let mut b = LayerStack::builder(extent);
    let window = Rect::from_m(
        extent.x_min() + extent.width().value() * (1.0 - die_frac) / 2.0,
        extent.y_min() + extent.height().value() * (1.0 - die_frac) / 2.0,
        extent.width().value() * die_frac,
        extent.height().value() * die_frac,
    );
    b = b.windowed_layer("die", Material::silicon(), 0.7e-3, window);
    if layers >= 2 {
        b = b.layer("tim", Material::tim_grease(), 0.1e-3);
    }
    if layers >= 3 {
        b = b.layer("spreader", Material::copper(), 2e-3);
    }
    b.build().expect("generated stacks are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Heat in == heat out (top + bottom leak), for random power maps,
    /// grids, stacks and boundary strengths.
    #[test]
    fn energy_conservation(
        nx in 4usize..14,
        ny in 4usize..14,
        layers in 1usize..=3,
        die_frac in 0.4f64..1.0,
        total_w in 5.0f64..120.0,
        htc in 2_000.0f64..40_000.0,
        t_fluid in 20.0f64..50.0,
        west_bias in 0.1f64..0.9,
    ) {
        let extent = Rect::from_mm(0.0, 0.0, 20.0, 16.0);
        let stack = arbitrary_stack(extent, layers, die_frac);
        let grid = GridSpec::new(nx, ny, extent);
        let model = ThermalModel::new(&stack, grid.clone());
        let mut power = ScalarField::from_fn(grid.clone(), |x, _| {
            if x < extent.x_min() + extent.width().value() * 0.5 {
                west_bias
            } else {
                1.0 - west_bias
            }
        });
        let scale = total_w / power.total();
        power.scale(scale);
        let top = TopBoundary::uniform(
            &grid,
            HeatTransferCoeff::new(htc),
            Celsius::new(t_fluid),
        );
        let sol = model.steady_state(&power, &top).expect("solver converges");
        let out = model.total_heat_to_top(&sol, &top).value()
            + model.total_heat_to_bottom(&sol).value();
        prop_assert!(
            (out - total_w).abs() < 2e-3 * total_w,
            "in {total_w} W, out {out} W"
        );
    }

    /// Discrete maximum principle: with non-negative sources, no cell runs
    /// cooler than the coldest boundary reservoir; and the die (source)
    /// layer holds the global maximum.
    #[test]
    fn maximum_principle(
        nx in 4usize..12,
        ny in 4usize..12,
        total_w in 1.0f64..100.0,
        htc in 2_000.0f64..30_000.0,
        t_fluid in 15.0f64..55.0,
    ) {
        let extent = Rect::from_mm(0.0, 0.0, 18.0, 18.0);
        let stack = arbitrary_stack(extent, 3, 0.8);
        let grid = GridSpec::new(nx, ny, extent);
        let model = ThermalModel::new(&stack, grid.clone());
        let power = ScalarField::filled(grid.clone(), total_w / grid.n_cells() as f64);
        let top = TopBoundary::uniform(
            &grid,
            HeatTransferCoeff::new(htc),
            Celsius::new(t_fluid),
        );
        let sol = model.steady_state(&power, &top).expect("solver converges");
        let coldest_reservoir = t_fluid.min(model.bottom().ambient.value());
        let mut global_max = f64::NEG_INFINITY;
        for l in 0..sol.n_layers() {
            prop_assert!(
                sol.layer(l).min() >= coldest_reservoir - 1e-6,
                "layer {l} dips below the coldest reservoir"
            );
            global_max = global_max.max(sol.layer(l).max());
        }
        prop_assert!(
            (sol.die_layer().max() - global_max).abs() < 1e-9,
            "the heated die layer must hold the global maximum"
        );
    }

    /// Superposition: doubling the power doubles every temperature rise
    /// (the conduction system is linear).
    #[test]
    fn linearity_in_power(
        total_w in 5.0f64..60.0,
        htc in 3_000.0f64..25_000.0,
    ) {
        let extent = Rect::from_mm(0.0, 0.0, 16.0, 12.0);
        let stack = arbitrary_stack(extent, 2, 0.7);
        let grid = GridSpec::new(8, 6, extent);
        let model = ThermalModel::new(&stack, grid.clone());
        let t_fluid = 30.0;
        let top = TopBoundary::uniform(
            &grid,
            HeatTransferCoeff::new(htc),
            Celsius::new(t_fluid),
        );
        // Use a zero-ambient-leak comparison by measuring rises above the
        // single-power solution rather than absolute linearity (the bottom
        // leak references a different temperature).
        let p1 = ScalarField::filled(grid.clone(), total_w / grid.n_cells() as f64);
        let mut p2 = p1.clone();
        p2.scale(2.0);
        let s1 = model.steady_state(&p1, &top).expect("converges");
        let s2 = model.steady_state(&p2, &top).expect("converges");
        // Compare rise above the zero-power solution.
        let p0 = ScalarField::filled(grid.clone(), 0.0);
        let s0 = model.steady_state(&p0, &top).expect("converges");
        let rise1 = s1.die_layer().max() - s0.die_layer().max();
        let rise2 = s2.die_layer().max() - s0.die_layer().max();
        prop_assert!(
            (rise2 - 2.0 * rise1).abs() < 1e-3 * rise2.abs().max(1.0),
            "rise1 {rise1}, rise2 {rise2}"
        );
    }
}
