//! A 3-D compact RC thermal simulator in the spirit of 3D-ICE.
//!
//! The paper obtains die temperatures with the 3D-ICE compact transient
//! thermal simulator \[20\]\[21\]; this crate is our from-scratch substitute.
//! The chip stack (silicon die → TIM → copper heat spreader → TIM → evaporator
//! base) is discretized into a regular 3-D grid of finite-volume cells
//! connected by thermal conductances. The top surface exchanges heat with the
//! thermosyphon refrigerant through a per-cell heat-transfer-coefficient
//! field; power enters at the die's device layer.
//!
//! * [`Material`], [`Layer`], [`LayerStack`] — stack description,
//! * [`ThermalModel`] — assembled conductance network,
//! * [`ThermalModel::steady_state`] — Jacobi-preconditioned conjugate
//!   gradient on the (symmetric positive definite) conduction system,
//! * [`ThermalModel::transient_step`] — implicit-Euler time stepping,
//! * [`ThermalMetrics`] — θ_max, θ_avg and the maximum spatial gradient
//!   ∇θ_max (°C/mm) the paper reports in Figs. 2/5/6 and Table II,
//! * [`render_ascii`] — terminal heat maps for the figure binaries.
//!
//! ```
//! use tps_floorplan::{GridSpec, Rect, ScalarField};
//! use tps_thermal::{LayerStack, Material, ThermalModel, TopBoundary};
//! use tps_units::{Celsius, HeatTransferCoeff};
//!
//! // A bare 10×10 mm silicon slab, uniformly heated, water-cooled on top.
//! let extent = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
//! let stack = LayerStack::builder(extent)
//!     .layer("die", Material::silicon(), 0.7e-3)
//!     .build()?;
//! let grid = GridSpec::new(20, 20, extent);
//! let model = ThermalModel::new(&stack, grid.clone());
//! let power = ScalarField::filled(grid.clone(), 50.0 / 400.0); // 50 W total
//! let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(10_000.0), Celsius::new(30.0));
//! let solution = model.steady_state(&power, &top)?;
//! assert!(solution.layer(0).max() > 30.0); // hotter than the coolant
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod material;
mod metrics;
mod model;
mod render;
mod solver;
mod stack;

pub use boundary::{BottomBoundary, TopBoundary};
pub use material::Material;
pub use metrics::{gradient_field, hotspot_count, ThermalMetrics};
pub use model::{ThermalModel, ThermalSolution, TransientState};
pub use render::{render_ascii, write_csv};
pub use solver::{CgSolver, SolveStats, SolverError};
pub use stack::{Layer, LayerStack, StackBuilder, StackError};
