//! Jacobi-preconditioned conjugate gradient for the conduction system.

use core::fmt;

/// Error returned when the iterative solver fails.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The residual did not drop below tolerance within the iteration cap.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// The operator produced a non-finite value (ill-posed system).
    NumericalBreakdown,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "conjugate gradient did not converge in {iterations} iterations \
                 (relative residual {residual:.3e})"
            ),
            SolverError::NumericalBreakdown => {
                write!(f, "conjugate gradient hit a non-finite value")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Convergence report of a linear solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual ‖r‖/‖b‖.
    pub residual: f64,
}

/// A matrix-free preconditioned conjugate-gradient solver.
///
/// The operator is supplied as a closure `y ← A·x`, which lets the thermal
/// model apply its 7-point stencil without ever materializing the matrix.
/// The system must be symmetric positive definite — which the conduction
/// network is, as long as every cell has a positive coupling to a boundary
/// or to another cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolver {
    tolerance: f64,
    max_iterations: usize,
}

impl Default for CgSolver {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 8000,
        }
    }
}

impl CgSolver {
    /// Creates a solver with the given relative tolerance and iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `(0, 1)` or the cap is zero.
    pub fn new(tolerance: f64, max_iterations: usize) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance {tolerance} outside (0, 1)"
        );
        assert!(max_iterations > 0, "iteration cap must be positive");
        Self {
            tolerance,
            max_iterations,
        }
    }

    /// The relative tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Solves `A·x = b` in place (`x` holds the initial guess on entry and
    /// the solution on success), with Jacobi preconditioner `diag`.
    ///
    /// # Errors
    ///
    /// [`SolverError::NoConvergence`] if the iteration cap is hit;
    /// [`SolverError::NumericalBreakdown`] on non-finite intermediate values.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or `diag` has non-positive entries.
    pub fn solve(
        &self,
        apply: impl Fn(&[f64], &mut [f64]),
        diag: &[f64],
        b: &[f64],
        x: &mut [f64],
    ) -> Result<SolveStats, SolverError> {
        let n = b.len();
        assert_eq!(x.len(), n, "x and b lengths differ");
        assert_eq!(diag.len(), n, "diag and b lengths differ");
        assert!(
            diag.iter().all(|&d| d > 0.0),
            "Jacobi preconditioner needs a strictly positive diagonal"
        );

        let norm_b = dot(b, b).sqrt();
        if norm_b == 0.0 {
            x.fill(0.0);
            return Ok(SolveStats {
                iterations: 0,
                residual: 0.0,
            });
        }

        let mut r = vec![0.0; n]; // residual b − A·x
        let mut z = vec![0.0; n]; // preconditioned residual
        let mut p = vec![0.0; n]; // search direction
        let mut ap = vec![0.0; n];

        apply(x, &mut ap);
        for i in 0..n {
            r[i] = b[i] - ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        p.copy_from_slice(&z);
        let mut rz = dot(&r, &z);

        for iter in 0..self.max_iterations {
            let res = dot(&r, &r).sqrt() / norm_b;
            if !res.is_finite() {
                return Err(SolverError::NumericalBreakdown);
            }
            if res < self.tolerance {
                return Ok(SolveStats {
                    iterations: iter,
                    residual: res,
                });
            }
            apply(&p, &mut ap);
            let pap = dot(&p, &ap);
            if !(pap.is_finite() && pap > 0.0) {
                return Err(SolverError::NumericalBreakdown);
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = r[i] / diag[i];
            }
            let rz_next = dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        Err(SolverError::NoConvergence {
            iterations: self.max_iterations,
            residual: dot(&r, &r).sqrt() / norm_b,
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Dense SPD apply for testing: A = Lᵀ·L + I.
    fn dense_apply(a: &[Vec<f64>]) -> impl Fn(&[f64], &mut [f64]) + '_ {
        move |x, y| {
            for (i, row) in a.iter().enumerate() {
                y[i] = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
            }
        }
    }

    fn spd_from_seed(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Deterministic pseudo-random lower-triangular L, A = L·Lᵀ + n·I.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let l: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if j <= i { next() } else { 0.0 }).collect())
            .collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for (lik, ljk) in l[i].iter().zip(&l[j]) {
                    a[i][j] += lik * ljk;
                }
            }
            a[i][i] += n as f64;
        }
        a
    }

    #[test]
    fn solves_identity() {
        let solver = CgSolver::default();
        let b = [1.0, 2.0, 3.0];
        let mut x = [0.0; 3];
        let stats = solver
            .solve(|v, y| y.copy_from_slice(v), &[1.0; 3], &b, &mut x)
            .unwrap();
        assert!(stats.residual < 1e-8);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_small_spd_system() {
        let a = spd_from_seed(20, 42);
        let diag: Vec<f64> = (0..20).map(|i| a[i][i]).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin() + 2.0).collect();
        let mut x = vec![0.0; 20];
        let stats = CgSolver::default()
            .solve(dense_apply(&a), &diag, &b, &mut x)
            .unwrap();
        assert!(stats.residual < 1e-8);
        // Verify A·x ≈ b directly.
        let mut ax = vec![0.0; 20];
        dense_apply(&a)(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let mut x = [5.0; 4];
        let stats = CgSolver::default()
            .solve(|v, y| y.copy_from_slice(v), &[1.0; 4], &[0.0; 4], &mut x)
            .unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(x, [0.0; 4]);
    }

    #[test]
    fn iteration_cap_reported() {
        let a = spd_from_seed(30, 7);
        let diag: Vec<f64> = (0..30).map(|i| a[i][i]).collect();
        let b = vec![1.0; 30];
        let mut x = vec![0.0; 30];
        let err = CgSolver::new(1e-12, 1).solve(dense_apply(&a), &diag, &b, &mut x);
        assert!(matches!(
            err,
            Err(SolverError::NoConvergence { iterations: 1, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive diagonal")]
    fn zero_diag_rejected() {
        let mut x = [0.0; 2];
        let _ = CgSolver::default().solve(
            |v, y| y.copy_from_slice(v),
            &[1.0, 0.0],
            &[1.0, 1.0],
            &mut x,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn converges_on_random_spd(seed in 0u64..1000, n in 2usize..25) {
            let a = spd_from_seed(n, seed);
            let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 + 1.0).collect();
            let mut x = vec![0.0; n];
            let stats = CgSolver::default()
                .solve(dense_apply(&a), &diag, &b, &mut x)
                .unwrap();
            prop_assert!(stats.residual < 1e-8);
        }
    }
}
