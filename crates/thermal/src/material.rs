//! Solid materials of the chip stack.

use tps_units::{Density, SpecificHeat, ThermalConductivity};

/// A homogeneous solid material: conductivity plus volumetric heat capacity.
///
/// ```
/// use tps_thermal::Material;
/// let si = Material::silicon();
/// assert!((si.conductivity().value() - 120.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    name: &'static str,
    k: ThermalConductivity,
    rho: Density,
    cp: SpecificHeat,
}

impl Material {
    /// Creates a material.
    ///
    /// # Panics
    ///
    /// Panics if any property is non-positive.
    pub fn new(name: &'static str, k: ThermalConductivity, rho: Density, cp: SpecificHeat) -> Self {
        assert!(
            k.value() > 0.0 && rho.value() > 0.0 && cp.value() > 0.0,
            "material `{name}` must have positive properties"
        );
        Self { name, k, rho, cp }
    }

    /// Bulk silicon at operating temperature (k ≈ 120 W/mK around 60 °C).
    pub fn silicon() -> Self {
        Self::new(
            "silicon",
            ThermalConductivity::new(120.0),
            Density::new(2330.0),
            SpecificHeat::new(712.0),
        )
    }

    /// Copper (heat spreader, evaporator base).
    pub fn copper() -> Self {
        Self::new(
            "copper",
            ThermalConductivity::new(390.0),
            Density::new(8960.0),
            SpecificHeat::new(385.0),
        )
    }

    /// Thermal grease at the die ↔ spreader interface (TIM1). The value is
    /// calibrated so the full-load die-to-case temperature drop matches the
    /// paper's reported hot spots (ARCHITECTURE.md §7).
    pub fn tim_grease() -> Self {
        Self::new(
            "tim-grease",
            ThermalConductivity::new(3.2),
            Density::new(2500.0),
            SpecificHeat::new(1000.0),
        )
    }

    /// Grease interface between spreader and evaporator base (TIM2);
    /// slightly better than TIM1 thanks to the clamped flat surfaces.
    pub fn tim_mount() -> Self {
        Self::new(
            "tim-mount",
            ThermalConductivity::new(5.0),
            Density::new(2500.0),
            SpecificHeat::new(1000.0),
        )
    }

    /// Organic package fill surrounding the die (low conductivity).
    pub fn underfill() -> Self {
        Self::new(
            "underfill",
            ThermalConductivity::new(0.9),
            Density::new(1700.0),
            SpecificHeat::new(1100.0),
        )
    }

    /// The material's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Thermal conductivity.
    pub fn conductivity(&self) -> ThermalConductivity {
        self.k
    }

    /// Mass density.
    pub fn density(&self) -> Density {
        self.rho
    }

    /// Specific heat capacity.
    pub fn specific_heat(&self) -> SpecificHeat {
        self.cp
    }

    /// Volumetric heat capacity ρ·c_p in J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.rho.value() * self.cp.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_physical() {
        for m in [
            Material::silicon(),
            Material::copper(),
            Material::tim_grease(),
            Material::tim_mount(),
            Material::underfill(),
        ] {
            assert!(m.conductivity().value() > 0.0);
            assert!(m.volumetric_heat_capacity() > 1e5, "{}", m.name());
        }
        assert!(Material::copper().conductivity() > Material::silicon().conductivity());
        assert!(Material::underfill().conductivity() < Material::tim_grease().conductivity());
    }

    #[test]
    #[should_panic(expected = "positive properties")]
    fn rejects_nonpositive() {
        let _ = Material::new(
            "bad",
            ThermalConductivity::new(0.0),
            Density::new(1.0),
            SpecificHeat::new(1.0),
        );
    }
}
