//! Vertical layer stacks (die → TIM → spreader → TIM → evaporator base).

use crate::material::Material;
use core::fmt;
use tps_floorplan::{PackageGeometry, Rect};

/// One slab of the stack: a primary material inside an optional window,
/// surrounded by a filler material (underfill/air gap) elsewhere.
///
/// A `window` of `None` means the primary material fills the whole extent.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    name: String,
    material: Material,
    filler: Material,
    thickness_m: f64,
    window: Option<Rect>,
}

impl Layer {
    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// The filler material outside the window.
    pub fn filler(&self) -> &Material {
        &self.filler
    }

    /// Slab thickness in metres.
    pub fn thickness_m(&self) -> f64 {
        self.thickness_m
    }

    /// The window within which the primary material applies.
    pub fn window(&self) -> Option<&Rect> {
        self.window.as_ref()
    }

    /// The material at a lateral position.
    pub fn material_at(&self, x: f64, y: f64) -> &Material {
        match &self.window {
            Some(w) if !w.contains(x, y) => &self.filler,
            _ => &self.material,
        }
    }
}

/// Error building a [`LayerStack`].
#[derive(Debug, Clone, PartialEq)]
pub enum StackError {
    /// The stack has no layers.
    Empty,
    /// A layer thickness is non-positive or not finite.
    BadThickness {
        /// Name of the offending layer.
        layer: String,
    },
    /// A window leaves the stack extent.
    WindowOutOfBounds {
        /// Name of the offending layer.
        layer: String,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Empty => write!(f, "layer stack contains no layers"),
            StackError::BadThickness { layer } => {
                write!(f, "layer `{layer}` has a non-positive thickness")
            }
            StackError::WindowOutOfBounds { layer } => {
                write!(f, "window of layer `{layer}` leaves the stack extent")
            }
        }
    }
}

impl std::error::Error for StackError {}

/// An ordered stack of layers over a common lateral extent
/// (layer 0 at the bottom; the device/power layer).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStack {
    extent: Rect,
    layers: Vec<Layer>,
}

impl LayerStack {
    /// Starts building a stack over `extent`.
    pub fn builder(extent: Rect) -> StackBuilder {
        StackBuilder {
            extent,
            layers: Vec::new(),
        }
    }

    /// The canonical Xeon + thermosyphon stack of the paper's platform
    /// (bottom → top): 0.7 mm silicon die and its TIM, both windowed to the
    /// die outline inside underfill; 2 mm copper spreader; mounting TIM;
    /// 1 mm copper evaporator base carrying the micro-channels on top.
    ///
    /// The extent is the spreader/evaporator footprint from `pkg`.
    pub fn xeon_thermosyphon(pkg: &PackageGeometry) -> Self {
        let extent = *pkg.spreader_rect();
        let die = pkg.die_rect();
        Self::builder(extent)
            .windowed_layer("die", Material::silicon(), 0.7e-3, die)
            .windowed_layer("tim1", Material::tim_grease(), 0.08e-3, die)
            .layer("spreader", Material::copper(), 2.0e-3)
            .layer("tim2", Material::tim_mount(), 0.1e-3)
            .layer("evap-base", Material::copper(), 1.0e-3)
            .build()
            .expect("the built-in stack must validate")
    }

    /// The lateral extent shared by all layers.
    pub fn extent(&self) -> &Rect {
        &self.extent
    }

    /// The layers, bottom first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Index of the layer with the given name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name() == name)
    }

    /// Total stack height in metres.
    pub fn total_thickness_m(&self) -> f64 {
        self.layers.iter().map(Layer::thickness_m).sum()
    }
}

impl fmt::Display for LayerStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stack over {} ({} layers, {:.2} mm):",
            self.extent,
            self.layers.len(),
            self.total_thickness_m() * 1e3
        )?;
        for (i, l) in self.layers.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {} — {} {:.2} mm{}",
                l.name(),
                l.material().name(),
                l.thickness_m() * 1e3,
                if l.window().is_some() {
                    " (windowed)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Builder for [`LayerStack`].
#[derive(Debug, Clone)]
pub struct StackBuilder {
    extent: Rect,
    layers: Vec<Layer>,
}

impl StackBuilder {
    /// Adds a full-extent layer on top of the stack built so far.
    pub fn layer(mut self, name: impl Into<String>, material: Material, thickness_m: f64) -> Self {
        self.layers.push(Layer {
            name: name.into(),
            material,
            filler: Material::underfill(),
            thickness_m,
            window: None,
        });
        self
    }

    /// Adds a layer whose primary material applies only inside `window`
    /// (underfill elsewhere).
    pub fn windowed_layer(
        mut self,
        name: impl Into<String>,
        material: Material,
        thickness_m: f64,
        window: Rect,
    ) -> Self {
        self.layers.push(Layer {
            name: name.into(),
            material,
            filler: Material::underfill(),
            thickness_m,
            window: Some(window),
        });
        self
    }

    /// Validates and finalises the stack.
    ///
    /// # Errors
    ///
    /// Returns [`StackError`] if the stack is empty, a thickness is
    /// non-positive, or a window leaves the extent.
    pub fn build(self) -> Result<LayerStack, StackError> {
        if self.layers.is_empty() {
            return Err(StackError::Empty);
        }
        for l in &self.layers {
            if !(l.thickness_m.is_finite() && l.thickness_m > 0.0) {
                return Err(StackError::BadThickness {
                    layer: l.name.clone(),
                });
            }
            if let Some(w) = &l.window {
                if !w.within(&self.extent) {
                    return Err(StackError::WindowOutOfBounds {
                        layer: l.name.clone(),
                    });
                }
            }
        }
        Ok(LayerStack {
            extent: self.extent,
            layers: self.layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_floorplan::xeon_e5_v4;

    #[test]
    fn xeon_stack_shape() {
        let pkg = PackageGeometry::xeon(&xeon_e5_v4());
        let s = LayerStack::xeon_thermosyphon(&pkg);
        assert_eq!(s.layers().len(), 5);
        assert_eq!(s.layer_index("die"), Some(0));
        assert_eq!(s.layer_index("evap-base"), Some(4));
        assert!(s.layer_index("nope").is_none());
        assert!((s.total_thickness_m() - 3.88e-3).abs() < 1e-9);
    }

    #[test]
    fn windowed_material_lookup() {
        let pkg = PackageGeometry::xeon(&xeon_e5_v4());
        let s = LayerStack::xeon_thermosyphon(&pkg);
        let die_layer = &s.layers()[0];
        let (cx, cy) = pkg.die_rect().center();
        assert_eq!(die_layer.material_at(cx, cy).name(), "silicon");
        // Corner of the spreader is outside the die window → underfill.
        assert_eq!(die_layer.material_at(1e-4, 1e-4).name(), "underfill");
        // The spreader is everywhere copper.
        let spreader = &s.layers()[2];
        assert_eq!(spreader.material_at(1e-4, 1e-4).name(), "copper");
    }

    #[test]
    fn rejects_empty_and_bad_thickness() {
        let extent = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            LayerStack::builder(extent).build().unwrap_err(),
            StackError::Empty
        );
        let err = LayerStack::builder(extent)
            .layer("zero", Material::copper(), 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, StackError::BadThickness { .. }));
    }

    #[test]
    fn rejects_out_of_extent_window() {
        let extent = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
        let err = LayerStack::builder(extent)
            .windowed_layer(
                "die",
                Material::silicon(),
                1e-3,
                Rect::from_mm(5.0, 5.0, 10.0, 10.0),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, StackError::WindowOutOfBounds { .. }));
    }
}
