//! Terminal heat maps and CSV export for the figure binaries.

use std::io::Write as _;
use std::path::Path;
use tps_floorplan::ScalarField;

/// Shade ramp from coolest to hottest.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders a field as an ASCII heat map (north row first), normalising
/// between the field's own min and max. Each cell is two characters wide to
/// roughly compensate terminal aspect ratio.
///
/// ```
/// use tps_floorplan::{GridSpec, Rect, ScalarField};
/// use tps_thermal::render_ascii;
/// let g = GridSpec::new(4, 2, Rect::from_mm(0.0, 0.0, 4.0, 2.0));
/// let f = ScalarField::from_fn(g, |x, _| x);
/// let art = render_ascii(&f);
/// assert_eq!(art.lines().count(), 2 + 1); // 2 rows + scale line
/// ```
pub fn render_ascii(field: &ScalarField) -> String {
    let spec = field.spec();
    let (lo, hi) = (field.min(), field.max());
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity((spec.nx() * 2 + 1) * spec.ny() + 64);
    for iy in (0..spec.ny()).rev() {
        for ix in 0..spec.nx() {
            let t = (field.at(ix, iy) - lo) / span;
            let level = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[level]);
            out.push(RAMP[level]);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "scale: '{}'={lo:.1} … '{}'={hi:.1}\n",
        RAMP[0],
        RAMP[RAMP.len() - 1]
    ));
    out
}

/// Writes a field as CSV (`x_mm,y_mm,value` per cell) for external plotting.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(field: &ScalarField, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "x_mm,y_mm,value")?;
    let spec = field.spec();
    for iy in 0..spec.ny() {
        for ix in 0..spec.nx() {
            let (x, y) = spec.cell_center(ix, iy);
            writeln!(f, "{:.4},{:.4},{:.4}", x * 1e3, y * 1e3, field.at(ix, iy))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_floorplan::{GridSpec, Rect};

    fn field() -> ScalarField {
        let g = GridSpec::new(6, 4, Rect::from_mm(0.0, 0.0, 6.0, 4.0));
        ScalarField::from_fn(g, |x, _| x * 1e3)
    }

    #[test]
    fn ascii_has_expected_shape() {
        let art = render_ascii(&field());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].len(), 12);
        // The west (left) edge is coolest, the east edge hottest.
        assert!(lines[0].starts_with("  "));
        assert!(lines[0].ends_with("@@"));
        assert!(lines[4].contains("scale"));
    }

    #[test]
    fn ascii_handles_uniform_field() {
        let g = GridSpec::new(3, 3, Rect::from_mm(0.0, 0.0, 3.0, 3.0));
        let art = render_ascii(&ScalarField::filled(g, 42.0));
        assert!(art.contains("42.0"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("tps-thermal-test");
        let path = dir.join("field.csv");
        write_csv(&field(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x_mm,y_mm,value");
        assert_eq!(lines.len(), 1 + 24);
        assert!(lines[1].starts_with("0.5000,0.5000,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
