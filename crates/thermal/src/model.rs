//! The assembled 3-D RC network and its steady/transient solvers.

use crate::boundary::{BottomBoundary, TopBoundary};
use crate::solver::{CgSolver, SolveStats, SolverError};
use crate::stack::LayerStack;
use tps_floorplan::{GridSpec, ScalarField};
use tps_units::{Celsius, Seconds, Watts};

/// A finite-volume conduction model: one cell per (layer, grid cell), with
/// harmonic-mean conductances between face-sharing neighbours, a convective
/// top surface and a weak convective bottom leak. Side walls are adiabatic.
///
/// Power (watts per grid cell) is injected into the *bottom* layer — the
/// device layer of the flip-chip die.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    grid: GridSpec,
    layer_names: Vec<String>,
    dz: Vec<f64>,
    /// Conductance to the eastern neighbour (0 on the east wall), per layer.
    gx: Vec<Vec<f64>>,
    /// Conductance to the northern neighbour (0 on the north wall), per layer.
    gy: Vec<Vec<f64>>,
    /// Conductance to the layer above (empty row for the top layer).
    gz: Vec<Vec<f64>>,
    /// Sum of all inter-cell conductances per cell (diagonal base).
    diag_base: Vec<f64>,
    /// Heat capacity per cell, J/K.
    capacity: Vec<f64>,
    /// Conductivity of the bottom-layer cells (for the half-cell series
    /// resistance of the bottom boundary).
    k_bottom: Vec<f64>,
    /// Conductivity of the top-layer cells (for the top boundary).
    k_top: Vec<f64>,
    bottom: BottomBoundary,
    solver: CgSolver,
}

impl ThermalModel {
    /// Assembles the network for `stack` discretized on `grid` with the
    /// default bottom boundary and solver.
    ///
    /// # Panics
    ///
    /// Panics if the grid extent differs from the stack extent.
    pub fn new(stack: &LayerStack, grid: GridSpec) -> Self {
        Self::with_options(stack, grid, BottomBoundary::default(), CgSolver::default())
    }

    /// Assembles the network with explicit boundary/solver options.
    ///
    /// # Panics
    ///
    /// Panics if the grid extent differs from the stack extent.
    pub fn with_options(
        stack: &LayerStack,
        grid: GridSpec,
        bottom: BottomBoundary,
        solver: CgSolver,
    ) -> Self {
        assert_eq!(
            grid.extent(),
            stack.extent(),
            "grid extent must match the stack extent"
        );
        let (nx, ny) = (grid.nx(), grid.ny());
        let nc = grid.n_cells();
        let nl = stack.layers().len();
        let (dx, dy) = (grid.cell_w(), grid.cell_h());
        let area = grid.cell_area();

        // Per-layer per-cell conductivity and heat capacity.
        let mut k = vec![vec![0.0; nc]; nl];
        let mut capacity = vec![0.0; nl * nc];
        let mut dz = Vec::with_capacity(nl);
        for (l, layer) in stack.layers().iter().enumerate() {
            dz.push(layer.thickness_m());
            for iy in 0..ny {
                for ix in 0..nx {
                    let (x, y) = grid.cell_center(ix, iy);
                    let m = layer.material_at(x, y);
                    let i = grid.idx(ix, iy);
                    k[l][i] = m.conductivity().value();
                    capacity[l * nc + i] =
                        m.volumetric_heat_capacity() * area * layer.thickness_m();
                }
            }
        }

        // Harmonic-mean face conductances.
        let series =
            |k1: f64, k2: f64, half1: f64, half2: f64, face: f64| face / (half1 / k1 + half2 / k2);
        let mut gx = vec![vec![0.0; nc]; nl];
        let mut gy = vec![vec![0.0; nc]; nl];
        let mut gz = vec![vec![0.0; nc]; nl.saturating_sub(1)];
        for l in 0..nl {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = grid.idx(ix, iy);
                    if ix + 1 < nx {
                        let j = grid.idx(ix + 1, iy);
                        gx[l][i] = series(k[l][i], k[l][j], dx / 2.0, dx / 2.0, dz[l] * dy);
                    }
                    if iy + 1 < ny {
                        let j = grid.idx(ix, iy + 1);
                        gy[l][i] = series(k[l][i], k[l][j], dy / 2.0, dy / 2.0, dz[l] * dx);
                    }
                    if l + 1 < nl {
                        gz[l][i] = series(k[l][i], k[l + 1][i], dz[l] / 2.0, dz[l + 1] / 2.0, area);
                    }
                }
            }
        }

        // Diagonal base: sum of conductances incident to each cell.
        let mut diag_base = vec![0.0; nl * nc];
        for l in 0..nl {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = grid.idx(ix, iy);
                    let gi = l * nc + i;
                    if ix + 1 < nx {
                        let j = grid.idx(ix + 1, iy);
                        diag_base[gi] += gx[l][i];
                        diag_base[l * nc + j] += gx[l][i];
                    }
                    if iy + 1 < ny {
                        let j = grid.idx(ix, iy + 1);
                        diag_base[gi] += gy[l][i];
                        diag_base[l * nc + j] += gy[l][i];
                    }
                    if l + 1 < nl {
                        diag_base[gi] += gz[l][i];
                        diag_base[(l + 1) * nc + i] += gz[l][i];
                    }
                }
            }
        }

        let k_bottom = k[0].clone();
        let k_top = k[nl - 1].clone();
        Self {
            grid,
            layer_names: stack.layers().iter().map(|l| l.name().to_owned()).collect(),
            dz,
            gx,
            gy,
            gz,
            diag_base,
            capacity,
            k_bottom,
            k_top,
            bottom,
            solver,
        }
    }

    /// The lateral grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layer_names.len()
    }

    /// Layer names, bottom first.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Index of a layer by name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layer_names.iter().position(|n| n == name)
    }

    /// Total number of unknowns.
    pub fn n_cells(&self) -> usize {
        self.n_layers() * self.grid.n_cells()
    }

    /// `y ← A·x` for the conduction operator with the given full diagonal.
    fn apply(&self, diag: &[f64], x: &[f64], y: &mut [f64]) {
        let nc = self.grid.n_cells();
        let nx = self.grid.nx();
        let nl = self.n_layers();
        for l in 0..nl {
            let base = l * nc;
            let gx = &self.gx[l];
            let gy = &self.gy[l];
            for i in 0..nc {
                let gi = base + i;
                let mut acc = diag[gi] * x[gi];
                let ix = i % nx;
                if ix > 0 {
                    acc -= gx[i - 1] * x[gi - 1];
                }
                if ix + 1 < nx {
                    acc -= gx[i] * x[gi + 1];
                }
                if i >= nx {
                    acc -= gy[i - nx] * x[gi - nx];
                }
                if i + nx < nc {
                    acc -= gy[i] * x[gi + nx];
                }
                if l > 0 {
                    acc -= self.gz[l - 1][i] * x[gi - nc];
                }
                if l + 1 < nl {
                    acc -= self.gz[l][i] * x[gi + nc];
                }
                y[gi] = acc;
            }
        }
    }

    /// Builds the full diagonal and right-hand side for a solve.
    ///
    /// `dt_capacity` adds the implicit-Euler `C/dt` term when `Some`.
    fn assemble(
        &self,
        power: &ScalarField,
        top: &TopBoundary,
        dt_capacity: Option<(f64, &[f64])>,
    ) -> (Vec<f64>, Vec<f64>) {
        let nc = self.grid.n_cells();
        let nl = self.n_layers();
        let area = self.grid.cell_area();
        let mut diag = self.diag_base.clone();
        let mut b = vec![0.0; nl * nc];

        // Power into the bottom (device) layer.
        for (i, p) in power.values().iter().enumerate() {
            b[i] += p;
        }
        // Convective boundaries carry the half-cell conduction resistance in
        // series: G = A / (1/h + dz/(2k)) — without it a one-cell-thick layer
        // would see the fluid at its centre instead of its face.
        let dz0 = self.dz[0];
        let dzt = self.dz[nl - 1];
        // Bottom leak on layer 0.
        let hb = self.bottom.htc.value();
        if hb > 0.0 {
            for i in 0..nc {
                let g = area / (1.0 / hb + dz0 / (2.0 * self.k_bottom[i]));
                diag[i] += g;
                b[i] += g * self.bottom.ambient.value();
            }
        }
        // Convective top on the last layer.
        let top_base = (nl - 1) * nc;
        for i in 0..nc {
            let h = top.htc().values()[i];
            if h > 0.0 {
                let g = area / (1.0 / h + dzt / (2.0 * self.k_top[i]));
                diag[top_base + i] += g;
                b[top_base + i] += g * top.fluid_temp().values()[i];
            }
        }
        // Implicit Euler: C/dt on the diagonal, C/dt·T_old on the RHS.
        if let Some((dt, t_old)) = dt_capacity {
            for i in 0..nl * nc {
                let c_dt = self.capacity[i] / dt;
                diag[i] += c_dt;
                b[i] += c_dt * t_old[i];
            }
        }
        (diag, b)
    }

    /// Solves the steady-state temperature field.
    ///
    /// `power` holds watts per grid cell, injected into the bottom layer;
    /// `top` is the evaporator-side boundary.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] if the conjugate gradient fails.
    ///
    /// # Panics
    ///
    /// Panics if `power` or `top` live on a different grid.
    pub fn steady_state(
        &self,
        power: &ScalarField,
        top: &TopBoundary,
    ) -> Result<ThermalSolution, SolverError> {
        self.check_grids(power, top);
        let (diag, b) = self.assemble(power, top, None);
        // Start from the mean fluid temperature — a good guess that keeps
        // iteration counts low across coupling iterations.
        let mut x = vec![top.fluid_temp().mean() + 10.0; self.n_cells()];
        let stats =
            self.solver
                .solve(|v, y| self.apply(&diag, v, y), &diag, b.as_slice(), &mut x)?;
        Ok(self.split_solution(x, stats))
    }

    /// Advances a transient state by `dt` (implicit Euler).
    ///
    /// # Errors
    ///
    /// Propagates [`SolverError`] if the conjugate gradient fails.
    ///
    /// # Panics
    ///
    /// Panics if grids mismatch, the state belongs to another model, or
    /// `dt` is not positive.
    pub fn transient_step(
        &self,
        state: &mut TransientState,
        dt: Seconds,
        power: &ScalarField,
        top: &TopBoundary,
    ) -> Result<SolveStats, SolverError> {
        self.check_grids(power, top);
        assert!(dt.value() > 0.0, "time step must be positive");
        assert_eq!(
            state.temps.len(),
            self.n_cells(),
            "state does not belong to this model"
        );
        let (diag, b) = self.assemble(power, top, Some((dt.value(), state.temps.as_slice())));
        let mut x = state.temps.clone();
        let stats =
            self.solver
                .solve(|v, y| self.apply(&diag, v, y), &diag, b.as_slice(), &mut x)?;
        state.temps = x;
        state.elapsed += dt;
        Ok(stats)
    }

    /// A transient state at a uniform start temperature.
    pub fn initial_state(&self, t: Celsius) -> TransientState {
        TransientState {
            temps: vec![t.value(); self.n_cells()],
            elapsed: Seconds::ZERO,
        }
    }

    /// Snapshot of a transient state as a [`ThermalSolution`].
    pub fn snapshot(&self, state: &TransientState) -> ThermalSolution {
        self.split_solution(
            state.temps.clone(),
            SolveStats {
                iterations: 0,
                residual: 0.0,
            },
        )
    }

    fn check_grids(&self, power: &ScalarField, top: &TopBoundary) {
        assert_eq!(power.spec(), &self.grid, "power field grid mismatch");
        assert_eq!(top.htc().spec(), &self.grid, "top boundary grid mismatch");
    }

    fn split_solution(&self, x: Vec<f64>, stats: SolveStats) -> ThermalSolution {
        let nc = self.grid.n_cells();
        let layers = (0..self.n_layers())
            .map(|l| {
                let mut f = ScalarField::zeros(self.grid.clone());
                f.values_mut().copy_from_slice(&x[l * nc..(l + 1) * nc]);
                f
            })
            .collect();
        ThermalSolution {
            names: self.layer_names.clone(),
            layers,
            stats,
        }
    }

    /// The bottom boundary in effect.
    pub fn bottom(&self) -> BottomBoundary {
        self.bottom
    }

    /// Layer thicknesses (metres, bottom first).
    pub fn layer_thicknesses(&self) -> &[f64] {
        &self.dz
    }

    /// Heat flow from the top layer into the fluid (per-cell watts), through
    /// the same effective conductance the solver uses
    /// (`G = A / (1/h + dz/2k)`); this is the wall flux the evaporator
    /// marching model consumes during coupling.
    pub fn heat_to_top(&self, solution: &ThermalSolution, top: &TopBoundary) -> ScalarField {
        let wall = solution.top_layer();
        let area = self.grid.cell_area();
        let dzt = self.dz[self.n_layers() - 1];
        let mut out = ScalarField::zeros(self.grid.clone());
        for i in 0..self.grid.n_cells() {
            let h = top.htc().values()[i];
            if h > 0.0 {
                let g = area / (1.0 / h + dzt / (2.0 * self.k_top[i]));
                out.values_mut()[i] = g * (wall.values()[i] - top.fluid_temp().values()[i]);
            }
        }
        out
    }

    /// Total heat removed through the top surface.
    pub fn total_heat_to_top(&self, solution: &ThermalSolution, top: &TopBoundary) -> Watts {
        Watts::new(self.heat_to_top(solution, top).total())
    }

    /// Heat leaking through the bottom boundary, total watts.
    pub fn total_heat_to_bottom(&self, solution: &ThermalSolution) -> Watts {
        let area = self.grid.cell_area();
        let hb = self.bottom.htc.value();
        if hb <= 0.0 {
            return Watts::ZERO;
        }
        let dz0 = self.dz[0];
        let t_amb = self.bottom.ambient.value();
        let total = solution
            .die_layer()
            .values()
            .iter()
            .zip(&self.k_bottom)
            .map(|(&t, &k)| area / (1.0 / hb + dz0 / (2.0 * k)) * (t - t_amb))
            .sum();
        Watts::new(total)
    }
}

/// A solved temperature field: one layer of temperatures (°C) per stack
/// layer, bottom (die) first.
#[derive(Debug, Clone)]
pub struct ThermalSolution {
    names: Vec<String>,
    layers: Vec<ScalarField>,
    stats: SolveStats,
}

impl ThermalSolution {
    /// Temperatures of layer `l` (°C per cell).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &ScalarField {
        &self.layers[l]
    }

    /// Temperatures of the named layer.
    pub fn layer_by_name(&self, name: &str) -> Option<&ScalarField> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.layers[i])
    }

    /// The bottom (device/die) layer.
    pub fn die_layer(&self) -> &ScalarField {
        &self.layers[0]
    }

    /// The top layer (evaporator base).
    pub fn top_layer(&self) -> &ScalarField {
        self.layers
            .last()
            .expect("solutions have at least one layer")
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Solver convergence stats for this solution.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Temperature at a lateral point of a layer, if inside the grid.
    pub fn temperature_at(&self, layer: usize, x: f64, y: f64) -> Option<Celsius> {
        let f = &self.layers[layer];
        f.spec()
            .cell_at(x, y)
            .map(|c| Celsius::new(f.at(c.ix, c.iy)))
    }
}

/// Evolving temperatures for transient simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientState {
    temps: Vec<f64>,
    elapsed: Seconds,
}

impl TransientState {
    /// Simulated time accumulated so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Maximum temperature across all layers (°C).
    pub fn max_temp(&self) -> Celsius {
        Celsius::new(self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use crate::stack::LayerStack;
    use tps_floorplan::Rect;
    use tps_units::HeatTransferCoeff;

    fn slab_model(nx: usize, ny: usize) -> (ThermalModel, GridSpec) {
        let extent = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
        let stack = LayerStack::builder(extent)
            .layer("die", Material::silicon(), 0.7e-3)
            .build()
            .unwrap();
        let grid = GridSpec::new(nx, ny, extent);
        (ThermalModel::new(&stack, grid.clone()), grid)
    }

    #[test]
    fn uniform_slab_matches_1d_analytic() {
        // Uniform q″ through a slab into uniform h: the cell-centre
        // temperature is T_f + q″/h + q″·(dz/2)/k (bottom leak negligible).
        let (model, grid) = slab_model(10, 10);
        let total = 50.0;
        let q_flux = total / 1e-4; // W/m² over the 10×10 mm slab
        let power = ScalarField::filled(grid.clone(), total / 100.0);
        let h = 10_000.0;
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(h), Celsius::new(30.0));
        let sol = model.steady_state(&power, &top).unwrap();
        let expected = 30.0 + q_flux / h + q_flux * (0.7e-3 / 2.0) / 120.0;
        let got = sol.die_layer().mean();
        assert!(
            (got - expected).abs() < 0.25,
            "expected ≈{expected:.2} °C, got {got:.2} °C"
        );
    }

    #[test]
    fn energy_is_conserved_at_steady_state() {
        let (model, grid) = slab_model(16, 16);
        // Non-uniform power: hot west half.
        let power = ScalarField::from_fn(grid.clone(), |x, _| if x < 5e-3 { 0.6 } else { 0.1 });
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(8000.0), Celsius::new(32.0));
        let sol = model.steady_state(&power, &top).unwrap();
        let q_top = model.total_heat_to_top(&sol, &top).value();
        let q_bot = model.total_heat_to_bottom(&sol).value();
        let total_in = power.total();
        assert!(
            (q_top + q_bot - total_in).abs() < 1e-3 * total_in,
            "in {total_in} W, out {} W",
            q_top + q_bot
        );
    }

    #[test]
    fn hotter_under_higher_power() {
        let (model, grid) = slab_model(12, 12);
        let power = ScalarField::from_fn(grid.clone(), |x, _| if x < 5e-3 { 1.0 } else { 0.0 });
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(6000.0), Celsius::new(30.0));
        let sol = model.steady_state(&power, &top).unwrap();
        let west = sol
            .die_layer()
            .mean_in_rect(&Rect::from_mm(0.0, 0.0, 5.0, 10.0))
            .unwrap();
        let east = sol
            .die_layer()
            .mean_in_rect(&Rect::from_mm(5.0, 0.0, 5.0, 10.0))
            .unwrap();
        assert!(west > east + 1.0);
    }

    #[test]
    fn multilayer_gradient_descends_towards_sink() {
        let extent = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
        let stack = LayerStack::builder(extent)
            .layer("die", Material::silicon(), 0.7e-3)
            .layer("tim", Material::tim_grease(), 0.1e-3)
            .layer("spreader", Material::copper(), 3e-3)
            .build()
            .unwrap();
        let grid = GridSpec::new(10, 10, extent);
        let model = ThermalModel::new(&stack, grid.clone());
        let power = ScalarField::filled(grid.clone(), 0.5);
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(1e4), Celsius::new(30.0));
        let sol = model.steady_state(&power, &top).unwrap();
        // Heat flows bottom → top, so mean layer temperature must decrease.
        assert!(sol.layer(0).mean() > sol.layer(1).mean());
        assert!(sol.layer(1).mean() > sol.layer(2).mean());
        assert!(sol.layer(2).mean() > 30.0);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (model, grid) = slab_model(8, 8);
        let power = ScalarField::filled(grid.clone(), 0.4);
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(5000.0), Celsius::new(30.0));
        let steady = model.steady_state(&power, &top).unwrap();
        let mut state = model.initial_state(Celsius::new(30.0));
        for _ in 0..300 {
            model
                .transient_step(&mut state, Seconds::new(0.05), &power, &top)
                .unwrap();
        }
        let snap = model.snapshot(&state);
        let diff = snap.die_layer().max_abs_diff(steady.die_layer());
        assert!(diff < 0.2, "transient end-state differs by {diff} °C");
        assert!((state.elapsed().value() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn transient_monotonic_warmup() {
        let (model, grid) = slab_model(8, 8);
        let power = ScalarField::filled(grid.clone(), 0.4);
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(5000.0), Celsius::new(30.0));
        let mut state = model.initial_state(Celsius::new(30.0));
        let mut last = state.max_temp();
        for _ in 0..20 {
            model
                .transient_step(&mut state, Seconds::new(0.1), &power, &top)
                .unwrap();
            let now = state.max_temp();
            assert!(now.value() >= last.value() - 1e-9, "cooling without cause");
            last = now;
        }
        assert!(last > Celsius::new(30.5));
    }

    #[test]
    fn solution_probing() {
        let (model, grid) = slab_model(10, 10);
        let power = ScalarField::filled(grid.clone(), 0.1);
        let top = TopBoundary::uniform(&grid, HeatTransferCoeff::new(5000.0), Celsius::new(30.0));
        let sol = model.steady_state(&power, &top).unwrap();
        let t = sol.temperature_at(0, 5e-3, 5e-3).unwrap();
        assert!(t > Celsius::new(30.0));
        assert!(sol.temperature_at(0, 1.0, 1.0).is_none());
        assert!(sol.layer_by_name("die").is_some());
        assert!(sol.layer_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn grid_mismatch_panics() {
        let (model, _) = slab_model(8, 8);
        let other = GridSpec::new(4, 4, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        let power = ScalarField::zeros(other.clone());
        let top = TopBoundary::uniform(&other, HeatTransferCoeff::new(1e4), Celsius::new(30.0));
        let _ = model.steady_state(&power, &top);
    }
}
