//! Convective boundary conditions.

use tps_floorplan::{GridSpec, ScalarField};
use tps_units::{Celsius, HeatTransferCoeff};

/// The top-surface boundary: per-cell heat-transfer coefficient and fluid
/// temperature.
///
/// For the thermosyphon this is produced by the evaporator model — the HTC
/// varies with the local boiling state (vapour quality, dryout) and the
/// fluid temperature is the local saturation temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct TopBoundary {
    htc: ScalarField,
    fluid_temp: ScalarField,
}

impl TopBoundary {
    /// Builds a boundary from per-cell HTC (W/m²K) and fluid temperature
    /// (°C) fields.
    ///
    /// # Panics
    ///
    /// Panics if the two fields live on different grids or any HTC is
    /// negative.
    pub fn new(htc: ScalarField, fluid_temp: ScalarField) -> Self {
        assert_eq!(
            htc.spec(),
            fluid_temp.spec(),
            "HTC and fluid-temperature fields must share a grid"
        );
        assert!(
            htc.values().iter().all(|&h| h >= 0.0),
            "heat-transfer coefficients must be non-negative"
        );
        Self { htc, fluid_temp }
    }

    /// A spatially uniform boundary (useful for tests and bring-up).
    pub fn uniform(grid: &GridSpec, h: HeatTransferCoeff, t: Celsius) -> Self {
        Self::new(
            ScalarField::filled(grid.clone(), h.value()),
            ScalarField::filled(grid.clone(), t.value()),
        )
    }

    /// The per-cell heat-transfer coefficient (W/m²K).
    pub fn htc(&self) -> &ScalarField {
        &self.htc
    }

    /// The per-cell fluid temperature (°C).
    pub fn fluid_temp(&self) -> &ScalarField {
        &self.fluid_temp
    }
}

/// The bottom-surface boundary: a small uniform leakage towards the board
/// side. The thermosyphon removes >95 % of the heat through the top in the
/// reference prototype, so the default is a weak 10 W/m²K path to 35 °C
/// server-internal air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottomBoundary {
    /// Heat-transfer coefficient towards the board/air (W/m²K).
    pub htc: HeatTransferCoeff,
    /// Far-side air temperature.
    pub ambient: Celsius,
}

impl Default for BottomBoundary {
    fn default() -> Self {
        Self {
            htc: HeatTransferCoeff::new(10.0),
            ambient: Celsius::new(35.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_floorplan::Rect;

    fn grid() -> GridSpec {
        GridSpec::new(4, 4, Rect::from_mm(0.0, 0.0, 4.0, 4.0))
    }

    #[test]
    fn uniform_boundary() {
        let b = TopBoundary::uniform(&grid(), HeatTransferCoeff::new(1e4), Celsius::new(36.0));
        assert_eq!(b.htc().at(2, 2), 1e4);
        assert_eq!(b.fluid_temp().at(0, 0), 36.0);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grids_rejected() {
        let other = GridSpec::new(2, 2, Rect::from_mm(0.0, 0.0, 4.0, 4.0));
        let _ = TopBoundary::new(
            ScalarField::filled(grid(), 1.0),
            ScalarField::filled(other, 30.0),
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_htc_rejected() {
        let _ = TopBoundary::new(
            ScalarField::filled(grid(), -1.0),
            ScalarField::filled(grid(), 30.0),
        );
    }

    #[test]
    fn bottom_default_is_weak() {
        let b = BottomBoundary::default();
        assert!(b.htc.value() <= 20.0);
    }
}
