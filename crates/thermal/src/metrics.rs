//! The thermal metrics the paper reports: θ_max, θ_avg, ∇θ_max.

use tps_floorplan::{Rect, ScalarField};
use tps_units::Celsius;

/// Summary metrics of a temperature field over a region of interest
/// (the die outline for "die" rows, the spreader for "package" rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalMetrics {
    /// Hot-spot temperature θ_max.
    pub max: Celsius,
    /// Area-average temperature θ_avg.
    pub avg: Celsius,
    /// Maximum spatial gradient ∇θ_max in °C/mm, computed between
    /// face-adjacent cells within the region.
    pub max_gradient_c_per_mm: f64,
    /// Number of distinct hot spots: local maxima at least
    /// [`ThermalMetrics::HOTSPOT_PROMINENCE_C`] above the region average
    /// (the paper's mapping objective minimises "the number and magnitude
    /// of hot spots").
    pub hotspots: usize,
}

impl ThermalMetrics {
    /// Prominence above the region average for a local maximum to count as
    /// a hot spot.
    pub const HOTSPOT_PROMINENCE_C: f64 = 3.0;

    /// Computes metrics over the cells whose centres lie in `region`.
    ///
    /// # Panics
    ///
    /// Panics if no cell centre falls inside `region`.
    pub fn in_rect(field: &ScalarField, region: &Rect) -> Self {
        let max = field
            .max_in_rect(region)
            .expect("metrics region contains no grid cells");
        let avg = field.mean_in_rect(region).expect("checked above");
        Self {
            max: Celsius::new(max),
            avg: Celsius::new(avg),
            max_gradient_c_per_mm: max_gradient_in_rect(field, region),
            hotspots: hotspot_count(field, region, Self::HOTSPOT_PROMINENCE_C),
        }
    }

    /// Computes metrics over the whole field.
    pub fn of_field(field: &ScalarField) -> Self {
        Self::in_rect(field, field.spec().extent())
    }
}

impl core::fmt::Display for ThermalMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "θmax {:.1}, θavg {:.1}, ∇θmax {:.2} °C/mm, {} hot spot(s)",
            self.max.value(),
            self.avg.value(),
            self.max_gradient_c_per_mm,
            self.hotspots
        )
    }
}

/// Counts distinct hot spots in `region`: cells that are strictly-or-equal
/// maxima of their (up to 8) in-region neighbours and at least `prominence`
/// °C above the region average. Plateaus of equal-temperature cells count
/// once per connected run along x (a practical tie-break that keeps the
/// count stable under grid refinement).
pub fn hotspot_count(field: &ScalarField, region: &Rect, prominence: f64) -> usize {
    let spec = field.spec();
    let avg = match field.mean_in_rect(region) {
        Some(a) => a,
        None => return 0,
    };
    let inside = |ix: i64, iy: i64| -> bool {
        if ix < 0 || iy < 0 || ix >= spec.nx() as i64 || iy >= spec.ny() as i64 {
            return false;
        }
        let (x, y) = spec.cell_center(ix as usize, iy as usize);
        region.contains(x, y)
    };
    let (xs, ys) = spec.cell_span(region);
    let mut count = 0usize;
    for iy in ys {
        for ix in xs.clone() {
            if !inside(ix as i64, iy as i64) {
                continue;
            }
            let t = field.at(ix, iy);
            if t < avg + prominence {
                continue;
            }
            let mut is_peak = true;
            'outer: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (jx, jy) = (ix as i64 + dx, iy as i64 + dy);
                    if !inside(jx, jy) {
                        continue;
                    }
                    let tn = field.at(jx as usize, jy as usize);
                    // Strictly higher neighbour, or an equal neighbour
                    // earlier in scan order, owns the peak.
                    if tn > t || (tn == t && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_peak = false;
                        break 'outer;
                    }
                }
            }
            if is_peak {
                count += 1;
            }
        }
    }
    count
}

/// Maximum |ΔT|/distance between face-adjacent cells whose centres both lie
/// in `region`, in °C/mm.
pub fn max_gradient_in_rect(field: &ScalarField, region: &Rect) -> f64 {
    let spec = field.spec();
    let dx_mm = spec.cell_w() * 1e3;
    let dy_mm = spec.cell_h() * 1e3;
    let inside = |ix: usize, iy: usize| {
        let (x, y) = spec.cell_center(ix, iy);
        region.contains(x, y)
    };
    let mut g: f64 = 0.0;
    let (xs, ys) = spec.cell_span(region);
    for iy in ys.clone() {
        for ix in xs.clone() {
            if !inside(ix, iy) {
                continue;
            }
            let t = field.at(ix, iy);
            if ix + 1 < spec.nx() && inside(ix + 1, iy) {
                g = g.max((field.at(ix + 1, iy) - t).abs() / dx_mm);
            }
            if iy + 1 < spec.ny() && inside(ix, iy + 1) {
                g = g.max((field.at(ix, iy + 1) - t).abs() / dy_mm);
            }
        }
    }
    g
}

/// The per-cell gradient-magnitude field in °C/mm (central differences;
/// one-sided at the walls). Useful for visualising where gradients peak.
pub fn gradient_field(field: &ScalarField) -> ScalarField {
    let spec = field.spec().clone();
    let dx_mm = spec.cell_w() * 1e3;
    let dy_mm = spec.cell_h() * 1e3;
    let nx = spec.nx();
    let ny = spec.ny();
    ScalarField::from_fn(spec.clone(), |x, y| {
        let c = spec
            .cell_at(x, y)
            .expect("from_fn evaluates at cell centres");
        let (ix, iy) = (c.ix, c.iy);
        let (x0, x1, lx) = match ix {
            0 => (ix, ix + 1, dx_mm),
            i if i + 1 == nx => (ix - 1, ix, dx_mm),
            _ => (ix - 1, ix + 1, 2.0 * dx_mm),
        };
        let gx = (field.at(x1, iy) - field.at(x0, iy)) / lx;
        let (y0, y1, ly) = match iy {
            0 => (iy, iy + 1, dy_mm),
            i if i + 1 == ny => (iy - 1, iy, dy_mm),
            _ => (iy - 1, iy + 1, 2.0 * dy_mm),
        };
        let gy = (field.at(ix, y1) - field.at(ix, y0)) / ly;
        (gx * gx + gy * gy).sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_floorplan::GridSpec;

    fn grid() -> GridSpec {
        GridSpec::new(10, 10, Rect::from_mm(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn uniform_field_has_zero_gradient() {
        let f = ScalarField::filled(grid(), 55.0);
        let m = ThermalMetrics::of_field(&f);
        assert_eq!(m.max, Celsius::new(55.0));
        assert_eq!(m.avg, Celsius::new(55.0));
        assert_eq!(m.max_gradient_c_per_mm, 0.0);
    }

    #[test]
    fn linear_ramp_gradient() {
        // T = 1000·x (x in m) ⇒ 1 °C/mm everywhere.
        let f = ScalarField::from_fn(grid(), |x, _| 1000.0 * x);
        let m = ThermalMetrics::of_field(&f);
        assert!((m.max_gradient_c_per_mm - 1.0).abs() < 1e-9);
        let g = gradient_field(&f);
        assert!((g.max() - 1.0).abs() < 1e-9);
        assert!((g.min() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn region_restriction() {
        // A hot spot outside the region must not affect the metrics.
        let mut f = ScalarField::filled(grid(), 40.0);
        f.set(9, 9, 90.0);
        let west = Rect::from_mm(0.0, 0.0, 5.0, 10.0);
        let m = ThermalMetrics::in_rect(&f, &west);
        assert_eq!(m.max, Celsius::new(40.0));
        assert_eq!(m.max_gradient_c_per_mm, 0.0);
        let all = ThermalMetrics::of_field(&f);
        assert_eq!(all.max, Celsius::new(90.0));
        assert!(all.max_gradient_c_per_mm > 0.0);
    }

    #[test]
    fn gradient_counts_both_axes() {
        let f = ScalarField::from_fn(grid(), |_, y| 2000.0 * y);
        let m = ThermalMetrics::of_field(&f);
        assert!((m.max_gradient_c_per_mm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let f = ScalarField::filled(grid(), 66.12);
        let s = ThermalMetrics::of_field(&f).to_string();
        assert!(s.contains("66.1") && s.contains("∇θmax"));
    }

    #[test]
    fn hotspot_counting() {
        let mut f = ScalarField::filled(grid(), 40.0);
        // Two separated peaks …
        f.set(2, 2, 50.0);
        f.set(7, 7, 52.0);
        // … and one bump below the prominence threshold.
        f.set(5, 1, 41.0);
        let region = *f.spec().extent();
        assert_eq!(hotspot_count(&f, &region, 3.0), 2);
        let m = ThermalMetrics::of_field(&f);
        assert_eq!(m.hotspots, 2);
        assert!(m.to_string().contains("2 hot spot"));
    }

    #[test]
    fn plateau_counts_once() {
        let mut f = ScalarField::filled(grid(), 40.0);
        // A 2×2 plateau of equal maxima.
        for (x, y) in [(4, 4), (5, 4), (4, 5), (5, 5)] {
            f.set(x, y, 55.0);
        }
        assert_eq!(hotspot_count(&f, f.spec().extent(), 3.0), 1);
    }

    #[test]
    fn uniform_field_has_no_hotspots() {
        let f = ScalarField::filled(grid(), 40.0);
        assert_eq!(hotspot_count(&f, f.spec().extent(), 3.0), 0);
        assert_eq!(ThermalMetrics::of_field(&f).hotspots, 0);
    }

    #[test]
    fn hotspot_outside_region_ignored() {
        let mut f = ScalarField::filled(grid(), 40.0);
        f.set(9, 9, 60.0);
        let west = Rect::from_mm(0.0, 0.0, 5.0, 10.0);
        assert_eq!(hotspot_count(&f, &west, 3.0), 0);
    }

    #[test]
    #[should_panic(expected = "no grid cells")]
    fn empty_region_panics() {
        let f = ScalarField::filled(grid(), 1.0);
        let _ = ThermalMetrics::in_rect(&f, &Rect::from_mm(50.0, 50.0, 1.0, 1.0));
    }
}
