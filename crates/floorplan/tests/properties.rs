//! Property tests on grid/rasterization invariants used by every other
//! crate: conservation, coverage and span correctness.

use proptest::prelude::*;
use tps_floorplan::{rasterize_rect, GridSpec, Rect, ScalarField};

proptest! {
    /// `cell_span` returns exactly the cells whose rectangles intersect
    /// the query rect (no misses, no false positives away from the edge).
    #[test]
    fn cell_span_matches_brute_force(
        nx in 1usize..20, ny in 1usize..20,
        qx in -2.0f64..12.0, qy in -2.0f64..12.0,
        qw in 0.1f64..8.0, qh in 0.1f64..8.0,
    ) {
        let grid = GridSpec::new(nx, ny, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        let query = Rect::from_mm(qx.max(0.0), qy.max(0.0), qw, qh);
        let (xs, ys) = grid.cell_span(&query);
        for iy in 0..ny {
            for ix in 0..nx {
                let intersects = grid.cell_rect(ix, iy).intersects(&query);
                let in_span = xs.contains(&ix) && ys.contains(&iy);
                if intersects {
                    prop_assert!(in_span, "cell ({ix},{iy}) intersects but not in span");
                }
            }
        }
    }

    /// Rasterizing any in-bounds rectangle is conservative, and splitting a
    /// value across two rects equals rasterizing them separately.
    #[test]
    fn rasterize_rect_is_additive(
        nx in 2usize..16, ny in 2usize..16,
        ax in 0.0f64..5.0, ay in 0.0f64..5.0, aw in 0.5f64..4.0, ah in 0.5f64..4.0,
        value in 0.1f64..50.0, split in 0.1f64..0.9,
    ) {
        let grid = GridSpec::new(nx, ny, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        let rect = Rect::from_mm(ax, ay, aw.min(10.0 - ax), ah.min(10.0 - ay));
        let mut whole = ScalarField::zeros(grid.clone());
        rasterize_rect(&mut whole, &rect, value);
        prop_assert!((whole.total() - value).abs() < 1e-9 * value.max(1.0));

        let mut parts = ScalarField::zeros(grid.clone());
        rasterize_rect(&mut parts, &rect, value * split);
        rasterize_rect(&mut parts, &rect, value * (1.0 - split));
        prop_assert!(whole.max_abs_diff(&parts) < 1e-9 * value.max(1.0));
    }

    /// Field statistics are consistent: min ≤ mean ≤ max, and restricting
    /// to the full extent changes nothing.
    #[test]
    fn field_statistics_consistent(
        nx in 1usize..12, ny in 1usize..12, seed in 0u64..1000,
    ) {
        let grid = GridSpec::new(nx, ny, Rect::from_mm(0.0, 0.0, 6.0, 6.0));
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let f = ScalarField::from_fn(grid.clone(), |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        });
        prop_assert!(f.min() <= f.mean() + 1e-12);
        prop_assert!(f.mean() <= f.max() + 1e-12);
        let extent = *f.spec().extent();
        prop_assert!((f.mean_in_rect(&extent).unwrap() - f.mean()).abs() < 1e-9);
        prop_assert!((f.max_in_rect(&extent).unwrap() - f.max()).abs() < 1e-12);
    }
}
