//! Floorplan blocks and component kinds.

use crate::rect::Rect;
use core::fmt;

/// Identifier of a block within its [`Floorplan`](crate::Floorplan).
///
/// Stable for the lifetime of the floorplan (assigned in insertion order by
/// [`FloorplanBuilder`](crate::FloorplanBuilder)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// Returns the raw index of this block in the floorplan's block list.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

/// The architectural function of a floorplan block.
///
/// Mirrors the components visible in the paper's Fig. 2c die shot:
/// cores (with their L1/L2), two slots reserved for the deca-core SKU,
/// the 25 MB last-level cache, the memory controller strip, and the
/// queue/uncore/IO strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// An active CPU core (with private L1/L2). Carries the 1-based core
    /// index used in the paper (Core1–Core8).
    Core(u8),
    /// A dark-silicon core slot reserved for the deca-core die variant.
    /// Produces no power — the "dead area" of Sec. VI-A.
    ReservedCore,
    /// The shared last-level cache (25 MB on the target Xeon).
    LastLevelCache,
    /// The memory controller strip.
    MemoryController,
    /// Queue, uncore and I/O controller strip.
    UncoreIo,
    /// Non-functional filler silicon (produces no power).
    Filler,
}

impl ComponentKind {
    /// Returns the 1-based core index if this is a [`ComponentKind::Core`].
    pub fn core_index(self) -> Option<u8> {
        match self {
            ComponentKind::Core(i) => Some(i),
            _ => None,
        }
    }

    /// Returns `true` for components that can dissipate power.
    pub fn is_powered(self) -> bool {
        !matches!(self, ComponentKind::ReservedCore | ComponentKind::Filler)
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::Core(i) => write!(f, "Core{i}"),
            ComponentKind::ReservedCore => write!(f, "Reserved"),
            ComponentKind::LastLevelCache => write!(f, "LLC"),
            ComponentKind::MemoryController => write!(f, "MemCtl"),
            ComponentKind::UncoreIo => write!(f, "UncoreIO"),
            ComponentKind::Filler => write!(f, "Filler"),
        }
    }
}

/// A placed component: a [`ComponentKind`] occupying a [`Rect`] of the die.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub(crate) id: BlockId,
    pub(crate) name: String,
    pub(crate) kind: ComponentKind,
    pub(crate) rect: Rect,
}

impl Block {
    /// The block's identifier within its floorplan.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The block's human-readable name (e.g. `"core1"`, `"llc"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architectural function of the block.
    #[inline]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The block's placement rectangle in die coordinates.
    #[inline]
    pub fn rect(&self) -> &Rect {
        &self.rect
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}) @ {}", self.name, self.kind, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_and_queries() {
        assert_eq!(ComponentKind::Core(3).to_string(), "Core3");
        assert_eq!(ComponentKind::Core(3).core_index(), Some(3));
        assert_eq!(ComponentKind::LastLevelCache.core_index(), None);
        assert!(ComponentKind::Core(1).is_powered());
        assert!(ComponentKind::LastLevelCache.is_powered());
        assert!(!ComponentKind::ReservedCore.is_powered());
        assert!(!ComponentKind::Filler.is_powered());
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(4).to_string(), "block#4");
        assert_eq!(BlockId(4).index(), 4);
    }
}
