//! Die-in-package placement: heat-spreader extent and die offset.

use crate::plan::Floorplan;
use crate::rect::Rect;

/// Placement of a die within its package / integrated heat spreader (IHS).
///
/// The thermosyphon evaporator covers the full spreader footprint, while the
/// die is a smaller centred rectangle; the spreading between the two is what
/// makes package hot spots a blurred, scaled-down image of die hot spots
/// (the paper's Fig. 2 motivation).
///
/// ```
/// use tps_floorplan::{xeon_e5_v4, PackageGeometry};
/// let pkg = PackageGeometry::xeon(&xeon_e5_v4());
/// let die = pkg.die_rect();
/// assert!(die.within(pkg.spreader_rect()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackageGeometry {
    spreader: Rect,
    die_offset: (f64, f64),
    die_size: (f64, f64),
}

impl PackageGeometry {
    /// Xeon E5 v4 default: a 36 × 32 mm copper IHS with the die centred.
    pub fn xeon(die: &Floorplan) -> Self {
        Self::centered(die, 36.0, 32.0)
    }

    /// Places `die` centred on a `spreader_w_mm × spreader_h_mm` spreader.
    ///
    /// # Panics
    ///
    /// Panics if the spreader is smaller than the die.
    pub fn centered(die: &Floorplan, spreader_w_mm: f64, spreader_h_mm: f64) -> Self {
        let dw = die.width().to_mm();
        let dh = die.height().to_mm();
        assert!(
            spreader_w_mm >= dw && spreader_h_mm >= dh,
            "spreader ({spreader_w_mm}×{spreader_h_mm} mm) smaller than die ({dw}×{dh} mm)"
        );
        Self {
            spreader: Rect::from_mm(0.0, 0.0, spreader_w_mm, spreader_h_mm),
            die_offset: (
                (spreader_w_mm - dw) / 2.0 * 1e-3,
                (spreader_h_mm - dh) / 2.0 * 1e-3,
            ),
            die_size: (dw * 1e-3, dh * 1e-3),
        }
    }

    /// The spreader (= evaporator footprint) outline, package coordinates.
    pub fn spreader_rect(&self) -> &Rect {
        &self.spreader
    }

    /// Translation from die coordinates to package coordinates, metres.
    pub fn die_offset(&self) -> (f64, f64) {
        self.die_offset
    }

    /// The die outline in package coordinates.
    pub fn die_rect(&self) -> Rect {
        Rect::from_m(
            self.die_offset.0,
            self.die_offset.1,
            self.die_size.0,
            self.die_size.1,
        )
    }

    /// The package-coordinate centre of the spreader — the `T_CASE`
    /// measurement point ("the center of the heat spreader", Sec. VI-B).
    pub fn case_probe_point(&self) -> (f64, f64) {
        self.spreader.center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xeon::xeon_e5_v4;

    #[test]
    fn die_centred_in_spreader() {
        let pkg = PackageGeometry::xeon(&xeon_e5_v4());
        let die = pkg.die_rect();
        let sp = pkg.spreader_rect();
        let west_gap = die.x_min() - sp.x_min();
        let east_gap = sp.x_max() - die.x_max();
        assert!((west_gap - east_gap).abs() < 1e-12);
        let south_gap = die.y_min() - sp.y_min();
        let north_gap = sp.y_max() - die.y_max();
        assert!((south_gap - north_gap).abs() < 1e-12);
    }

    #[test]
    fn case_probe_is_spreader_center() {
        let pkg = PackageGeometry::xeon(&xeon_e5_v4());
        let (cx, cy) = pkg.case_probe_point();
        assert!((cx - 18e-3).abs() < 1e-12);
        assert!((cy - 16e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smaller than die")]
    fn spreader_must_cover_die() {
        let _ = PackageGeometry::centered(&xeon_e5_v4(), 10.0, 10.0);
    }
}
