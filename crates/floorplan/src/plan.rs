//! The validated floorplan container and its builder.

use crate::block::{Block, BlockId, ComponentKind};
use crate::error::FloorplanError;
use crate::rect::Rect;
use tps_units::{Meters, SquareMeters};

/// A validated die floorplan: an outline plus non-overlapping [`Block`]s.
///
/// Construct with [`FloorplanBuilder`]; validation guarantees that every
/// block lies within the outline, no two blocks overlap, and core indices
/// are unique.
///
/// ```
/// use tps_floorplan::{ComponentKind, FloorplanBuilder, Rect};
/// # fn main() -> Result<(), tps_floorplan::FloorplanError> {
/// let fp = FloorplanBuilder::new("demo", 10.0, 10.0)
///     .block("core1", ComponentKind::Core(1), Rect::from_mm(0.0, 0.0, 5.0, 10.0))
///     .block("llc", ComponentKind::LastLevelCache, Rect::from_mm(5.0, 0.0, 5.0, 10.0))
///     .build()?;
/// assert_eq!(fp.blocks().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    name: String,
    outline: Rect,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// The floorplan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The die outline (origin at the south-west corner).
    pub fn outline(&self) -> &Rect {
        &self.outline
    }

    /// Die width (east–west extent).
    pub fn width(&self) -> Meters {
        self.outline.width()
    }

    /// Die height (north–south extent).
    pub fn height(&self) -> Meters {
        self.outline.height()
    }

    /// Total die area.
    pub fn die_area(&self) -> SquareMeters {
        self.outline.area()
    }

    /// All blocks, in insertion order (indexable by [`BlockId::index`]).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this floorplan.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Iterates over the core blocks in ascending core-index order.
    pub fn cores(&self) -> impl Iterator<Item = &Block> {
        let mut cores: Vec<&Block> = self
            .blocks
            .iter()
            .filter(|b| matches!(b.kind(), ComponentKind::Core(_)))
            .collect();
        cores.sort_by_key(|b| b.kind().core_index());
        cores.into_iter()
    }

    /// Returns the core block with the given 1-based index, if present.
    pub fn core(&self, index: u8) -> Option<&Block> {
        self.blocks
            .iter()
            .find(|b| b.kind().core_index() == Some(index))
    }

    /// Returns the first block of the given kind, if any.
    pub fn block_of_kind(&self, kind: ComponentKind) -> Option<&Block> {
        self.blocks.iter().find(|b| b.kind() == kind)
    }

    /// Returns the block containing the point `(x, y)` in metres, if any.
    pub fn block_at(&self, x: f64, y: f64) -> Option<&Block> {
        self.blocks.iter().find(|b| b.rect().contains(x, y))
    }

    /// Fraction of the die outline covered by blocks (1.0 = fully tiled).
    pub fn coverage(&self) -> f64 {
        let covered: f64 = self.blocks.iter().map(|b| b.rect().area().value()).sum();
        covered / self.outline.area().value()
    }
}

impl core::fmt::Display for Floorplan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "floorplan `{}`: {:.1} × {:.1} mm, {} blocks",
            self.name,
            self.width().to_mm(),
            self.height().to_mm(),
            self.blocks.len()
        )?;
        for b in &self.blocks {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Floorplan`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct FloorplanBuilder {
    name: String,
    outline: Rect,
    blocks: Vec<Block>,
}

impl FloorplanBuilder {
    /// Starts a floorplan with the given name and outline size in
    /// millimetres.
    pub fn new(name: impl Into<String>, width_mm: f64, height_mm: f64) -> Self {
        Self {
            name: name.into(),
            outline: Rect::from_mm(0.0, 0.0, width_mm, height_mm),
            blocks: Vec::new(),
        }
    }

    /// Adds a block. Validation happens in [`FloorplanBuilder::build`].
    pub fn block(mut self, name: impl Into<String>, kind: ComponentKind, rect: Rect) -> Self {
        let id = BlockId(self.blocks.len());
        self.blocks.push(Block {
            id,
            name: name.into(),
            kind,
            rect,
        });
        self
    }

    /// Validates and finalises the floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError`] if the floorplan is empty, a block leaves
    /// the outline, two blocks overlap, or a core index repeats.
    pub fn build(self) -> Result<Floorplan, FloorplanError> {
        if self.blocks.is_empty() {
            return Err(FloorplanError::Empty);
        }
        for b in &self.blocks {
            if !b.rect().within(&self.outline) {
                return Err(FloorplanError::OutOfBounds {
                    block: b.name.clone(),
                });
            }
        }
        // Overlap tolerance: sub-µm² slivers from mm-level arithmetic are fine.
        const OVERLAP_TOL_M2: f64 = 1e-12;
        for (i, a) in self.blocks.iter().enumerate() {
            for b in &self.blocks[i + 1..] {
                let area = a.rect().intersection_area(b.rect()).value();
                if area > OVERLAP_TOL_M2 {
                    return Err(FloorplanError::Overlap {
                        first: a.name.clone(),
                        second: b.name.clone(),
                        area_mm2: area * 1e6,
                    });
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for b in &self.blocks {
            if let Some(i) = b.kind().core_index() {
                if !seen.insert(i) {
                    return Err(FloorplanError::DuplicateCoreIndex { index: i });
                }
            }
        }
        Ok(Floorplan {
            name: self.name,
            outline: self.outline,
            blocks: self.blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_plan() -> Floorplan {
        FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "c1",
                ComponentKind::Core(1),
                Rect::from_mm(0.0, 0.0, 5.0, 10.0),
            )
            .block(
                "llc",
                ComponentKind::LastLevelCache,
                Rect::from_mm(5.0, 0.0, 5.0, 10.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_query() {
        let fp = two_block_plan();
        assert_eq!(fp.name(), "t");
        assert_eq!(fp.blocks().len(), 2);
        assert_eq!(fp.core(1).unwrap().name(), "c1");
        assert!(fp.core(2).is_none());
        assert_eq!(
            fp.block_at(0.007, 0.005).unwrap().kind(),
            ComponentKind::LastLevelCache
        );
        assert!(fp.block_at(0.02, 0.005).is_none());
        assert!((fp.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            FloorplanBuilder::new("e", 1.0, 1.0).build().unwrap_err(),
            FloorplanError::Empty
        );
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "c1",
                ComponentKind::Core(1),
                Rect::from_mm(6.0, 0.0, 5.0, 5.0),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, FloorplanError::OutOfBounds { .. }));
    }

    #[test]
    fn rejects_overlap() {
        let err = FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "a",
                ComponentKind::Core(1),
                Rect::from_mm(0.0, 0.0, 5.0, 5.0),
            )
            .block(
                "b",
                ComponentKind::Core(2),
                Rect::from_mm(4.0, 0.0, 5.0, 5.0),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, FloorplanError::Overlap { .. }));
    }

    #[test]
    fn rejects_duplicate_core_index() {
        let err = FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "a",
                ComponentKind::Core(1),
                Rect::from_mm(0.0, 0.0, 4.0, 4.0),
            )
            .block(
                "b",
                ComponentKind::Core(1),
                Rect::from_mm(5.0, 5.0, 4.0, 4.0),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, FloorplanError::DuplicateCoreIndex { index: 1 });
    }

    #[test]
    fn cores_iterate_in_index_order() {
        let fp = FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "b",
                ComponentKind::Core(2),
                Rect::from_mm(5.0, 0.0, 4.0, 4.0),
            )
            .block(
                "a",
                ComponentKind::Core(1),
                Rect::from_mm(0.0, 0.0, 4.0, 4.0),
            )
            .build()
            .unwrap();
        let order: Vec<u8> = fp.cores().map(|b| b.kind().core_index().unwrap()).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn touching_blocks_are_valid() {
        // A proper tiling has blocks sharing edges — must not be an overlap.
        let fp = two_block_plan();
        assert_eq!(fp.blocks().len(), 2);
    }
}
