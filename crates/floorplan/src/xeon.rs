//! The Intel Xeon E5 v4 (Broadwell-EP) die floorplan of the paper's Fig. 2c.
//!
//! The 246 mm² deca-core die carries two columns of five core slots on the
//! west side (the 8-core SKU leaves the southern slot of each column dark),
//! the large last-level cache on the east side, and the memory-controller and
//! queue/uncore/IO strips along the southern edge. This asymmetry — no power
//! dissipated in the eastern LLC expanse — is what makes the thermosyphon
//! orientation matter (Sec. VI-A of the paper).

use crate::block::ComponentKind;
use crate::plan::{Floorplan, FloorplanBuilder};
use crate::rect::Rect;

/// Die width (east–west), millimetres.
const DIE_W_MM: f64 = 18.0;
/// Die height (north–south), millimetres.
const DIE_H_MM: f64 = 13.67;
/// Height of each of the two southern strips (uncore/IO and memory ctl).
const STRIP_H_MM: f64 = 1.2;
/// Width of each core column.
const CORE_COL_W_MM: f64 = 4.5;

/// Number of core-slot rows (row 4 holds the two reserved slots).
pub const XEON_CORE_ROWS: usize = 5;
/// Number of core-slot columns.
pub const XEON_CORE_COLS: usize = 2;

/// A core-slot position on the die: `col` 0 is the western column, `row` 0 is
/// the northern row. Rows 0–3 hold Core1–Core8; row 4 holds the two reserved
/// (dark) slots of the deca-core design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreSlot {
    /// Column index (0 = west, 1 = centre).
    pub col: usize,
    /// Row index (0 = north … 4 = south/reserved).
    pub row: usize,
}

impl core::fmt::Display for CoreSlot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "slot(c{}, r{})", self.col, self.row)
    }
}

fn core_slot_rect(col: usize, row: usize) -> Rect {
    let region_h = DIE_H_MM - 2.0 * STRIP_H_MM;
    let slot_h = region_h / XEON_CORE_ROWS as f64;
    let y_min = 2.0 * STRIP_H_MM + (XEON_CORE_ROWS - 1 - row) as f64 * slot_h;
    Rect::from_mm(col as f64 * CORE_COL_W_MM, y_min, CORE_COL_W_MM, slot_h)
}

/// Mapping between the paper's core numbering and slot positions:
/// column 0 (west) holds Core5–Core8 top-to-bottom, column 1 holds
/// Core1–Core4, and row 4 of both columns is reserved.
fn slot_of_core(index: u8) -> CoreSlot {
    match index {
        1..=4 => CoreSlot {
            col: 1,
            row: (index - 1) as usize,
        },
        5..=8 => CoreSlot {
            col: 0,
            row: (index - 5) as usize,
        },
        _ => panic!("core index {index} out of range 1..=8"),
    }
}

/// Builds the Xeon E5 v4 die floorplan (8 active cores, 2 reserved slots,
/// LLC, memory controller, uncore/IO).
///
/// ```
/// use tps_floorplan::{xeon_e5_v4, ComponentKind};
/// let fp = xeon_e5_v4();
/// assert!((fp.coverage() - 1.0).abs() < 1e-9); // fully tiled
/// assert!(fp.block_of_kind(ComponentKind::LastLevelCache).is_some());
/// ```
pub fn xeon_e5_v4() -> Floorplan {
    let mut b = FloorplanBuilder::new("xeon-e5-v4-broadwell-ep", DIE_W_MM, DIE_H_MM);
    // Southern strips spanning the full die width.
    b = b.block(
        "uncore-io",
        ComponentKind::UncoreIo,
        Rect::from_mm(0.0, 0.0, DIE_W_MM, STRIP_H_MM),
    );
    b = b.block(
        "mem-ctl",
        ComponentKind::MemoryController,
        Rect::from_mm(0.0, STRIP_H_MM, DIE_W_MM, STRIP_H_MM),
    );
    // Core columns.
    for core in 1..=8u8 {
        let slot = slot_of_core(core);
        b = b.block(
            format!("core{core}"),
            ComponentKind::Core(core),
            core_slot_rect(slot.col, slot.row),
        );
    }
    for (name, col) in [("reserved-w", 0usize), ("reserved-c", 1usize)] {
        b = b.block(name, ComponentKind::ReservedCore, core_slot_rect(col, 4));
    }
    // LLC fills the eastern side.
    let llc_x = XEON_CORE_COLS as f64 * CORE_COL_W_MM;
    b = b.block(
        "llc",
        ComponentKind::LastLevelCache,
        Rect::from_mm(
            llc_x,
            2.0 * STRIP_H_MM,
            DIE_W_MM - llc_x,
            DIE_H_MM - 2.0 * STRIP_H_MM,
        ),
    );
    b.build()
        .expect("the built-in Xeon floorplan must always validate")
}

/// The row/column lattice of core slots, as used by mapping policies.
///
/// Provides the geometric queries the paper's mapping discussion relies on:
/// which cores share a horizontal line (micro-channel row), which slots are
/// corners, and where each core sits on the die.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreTopology {
    /// Geometric centre of each core (1-based index → die coordinates, m).
    centers: [(f64, f64); 8],
}

impl CoreTopology {
    /// Derives the topology from a Xeon-shaped floorplan.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan does not contain cores 1–8.
    pub fn from_floorplan(fp: &Floorplan) -> Self {
        let mut centers = [(0.0, 0.0); 8];
        for (i, c) in centers.iter_mut().enumerate() {
            let block = fp
                .core(i as u8 + 1)
                .unwrap_or_else(|| panic!("floorplan is missing core {}", i + 1));
            *c = block.rect().center();
        }
        Self { centers }
    }

    /// The canonical Xeon E5 v4 topology.
    pub fn xeon() -> Self {
        Self::from_floorplan(&xeon_e5_v4())
    }

    /// All 1-based core indices.
    pub fn cores(&self) -> impl Iterator<Item = u8> {
        1..=8u8
    }

    /// The slot of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not in `1..=8`.
    pub fn slot_of(&self, core: u8) -> CoreSlot {
        slot_of_core(core)
    }

    /// The core occupying a slot (rows 0–3 only; row 4 is reserved).
    pub fn core_at(&self, slot: CoreSlot) -> Option<u8> {
        if slot.row >= 4 || slot.col >= XEON_CORE_COLS {
            return None;
        }
        let core = match slot.col {
            1 => slot.row as u8 + 1,
            0 => slot.row as u8 + 5,
            _ => return None,
        };
        Some(core)
    }

    /// Geometric centre of a core in die coordinates (metres).
    ///
    /// # Panics
    ///
    /// Panics if `core` is not in `1..=8`.
    pub fn center_of(&self, core: u8) -> (f64, f64) {
        assert!((1..=8).contains(&core), "core index {core} out of range");
        self.centers[core as usize - 1]
    }

    /// Returns `true` if the slot sits at a corner of the 4×2 active-core
    /// array (rows 0 and 3).
    pub fn is_corner(&self, slot: CoreSlot) -> bool {
        (slot.row == 0 || slot.row == 3) && slot.col < XEON_CORE_COLS
    }

    /// Cores sharing the given row — i.e. sharing the same east–west
    /// micro-channel band when the thermosyphon flows east/west.
    pub fn cores_in_row(&self, row: usize) -> Vec<u8> {
        (0..XEON_CORE_COLS)
            .filter_map(|col| self.core_at(CoreSlot { col, row }))
            .collect()
    }

    /// Number of active cores per row for a given active set.
    pub fn row_occupancy(&self, active: &[u8]) -> [usize; 4] {
        let mut occ = [0usize; 4];
        for &c in active {
            let slot = self.slot_of(c);
            if slot.row < 4 {
                occ[slot.row] += 1;
            }
        }
        occ
    }

    /// Euclidean centre distance between two cores, metres.
    pub fn distance(&self, a: u8, b: u8) -> f64 {
        let (ax, ay) = self.center_of(a);
        let (bx, by) = self.center_of(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_area_matches_paper() {
        let fp = xeon_e5_v4();
        assert!((fp.die_area().to_mm2() - 246.06).abs() < 0.1);
    }

    #[test]
    fn fully_tiled_no_gaps() {
        let fp = xeon_e5_v4();
        assert!((fp.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eight_cores_two_reserved() {
        let fp = xeon_e5_v4();
        assert_eq!(fp.cores().count(), 8);
        let reserved = fp
            .blocks()
            .iter()
            .filter(|b| b.kind() == ComponentKind::ReservedCore)
            .count();
        assert_eq!(reserved, 2);
    }

    #[test]
    fn llc_occupies_east_half() {
        let fp = xeon_e5_v4();
        let llc = fp.block_of_kind(ComponentKind::LastLevelCache).unwrap();
        assert!(llc.rect().x_min() >= 8.9e-3);
        assert!((llc.rect().x_max() - 18.0e-3).abs() < 1e-9);
        // The LLC is half the die: the "dead" low-power east side.
        assert!(llc.rect().area().to_mm2() > 100.0);
    }

    #[test]
    fn core_numbering_matches_fig_2c() {
        let topo = CoreTopology::xeon();
        // Column 1 (centre) holds cores 1–4 top to bottom.
        assert_eq!(topo.slot_of(1), CoreSlot { col: 1, row: 0 });
        assert_eq!(topo.slot_of(4), CoreSlot { col: 1, row: 3 });
        // Column 0 (west) holds cores 5–8 top to bottom.
        assert_eq!(topo.slot_of(5), CoreSlot { col: 0, row: 0 });
        assert_eq!(topo.slot_of(8), CoreSlot { col: 0, row: 3 });
        // Inverse mapping agrees.
        for c in 1..=8u8 {
            assert_eq!(topo.core_at(topo.slot_of(c)), Some(c));
        }
        // Row 4 is reserved.
        assert_eq!(topo.core_at(CoreSlot { col: 0, row: 4 }), None);
    }

    #[test]
    fn corners_are_rows_0_and_3() {
        let topo = CoreTopology::xeon();
        let corners: Vec<u8> = topo
            .cores()
            .filter(|&c| topo.is_corner(topo.slot_of(c)))
            .collect();
        assert_eq!(corners, vec![1, 4, 5, 8]);
    }

    #[test]
    fn row_occupancy_counts() {
        let topo = CoreTopology::xeon();
        // Cores 1 and 5 share the north row.
        assert_eq!(topo.row_occupancy(&[1, 5]), [2, 0, 0, 0]);
        assert_eq!(topo.row_occupancy(&[1, 2, 3, 4]), [1, 1, 1, 1]);
        assert_eq!(topo.cores_in_row(0), vec![5, 1]);
    }

    #[test]
    fn geometry_is_sane() {
        let topo = CoreTopology::xeon();
        // Core 5 (west, north) must be west of core 1 (centre, north).
        assert!(topo.center_of(5).0 < topo.center_of(1).0);
        // Same row ⇒ same y.
        assert!((topo.center_of(5).1 - topo.center_of(1).1).abs() < 1e-12);
        // Core 1 is north of core 4.
        assert!(topo.center_of(1).1 > topo.center_of(4).1);
        // Distance between vertically adjacent cores ≈ slot height (2.254 mm).
        assert!((topo.distance(1, 2) - 2.254e-3).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_index_panics() {
        let _ = CoreTopology::xeon().center_of(9);
    }
}
