//! Axis-aligned rectangles in package coordinates.

use tps_units::{Meters, SquareMeters};

/// An axis-aligned rectangle, anchored at its south-west (lower-left) corner.
///
/// Coordinates follow the paper's compass convention: `+x` points east
/// (towards the LLC side of the Xeon die), `+y` points north. All dimensions
/// are stored in metres.
///
/// ```
/// use tps_floorplan::Rect;
/// let r = Rect::from_mm(0.0, 0.0, 18.0, 13.67); // the Broadwell-EP die
/// assert!((r.area().to_mm2() - 246.06).abs() < 0.01);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Rect {
    x: f64,
    y: f64,
    w: f64,
    h: f64,
}

impl Rect {
    /// Creates a rectangle from SI lengths.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is negative or non-finite.
    pub fn new(x: Meters, y: Meters, w: Meters, h: Meters) -> Self {
        Self::from_m(x.value(), y.value(), w.value(), h.value())
    }

    /// Creates a rectangle from raw metre coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is negative or non-finite.
    pub fn from_m(x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(
            w >= 0.0 && h >= 0.0 && [x, y, w, h].iter().all(|v| v.is_finite()),
            "rectangle dimensions must be finite and non-negative: ({x}, {y}, {w}, {h})"
        );
        Self { x, y, w, h }
    }

    /// Creates a rectangle from millimetre coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is negative or non-finite.
    pub fn from_mm(x: f64, y: f64, w: f64, h: f64) -> Self {
        Self::from_m(x * 1e-3, y * 1e-3, w * 1e-3, h * 1e-3)
    }

    /// West (minimum-x) edge in metres.
    #[inline]
    pub fn x_min(&self) -> f64 {
        self.x
    }

    /// East (maximum-x) edge in metres.
    #[inline]
    pub fn x_max(&self) -> f64 {
        self.x + self.w
    }

    /// South (minimum-y) edge in metres.
    #[inline]
    pub fn y_min(&self) -> f64 {
        self.y
    }

    /// North (maximum-y) edge in metres.
    #[inline]
    pub fn y_max(&self) -> f64 {
        self.y + self.h
    }

    /// Width as a typed length.
    #[inline]
    pub fn width(&self) -> Meters {
        Meters::new(self.w)
    }

    /// Height as a typed length.
    #[inline]
    pub fn height(&self) -> Meters {
        Meters::new(self.h)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> SquareMeters {
        SquareMeters::new(self.w * self.h)
    }

    /// Geometric centre `(x, y)` in metres.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Returns `true` if the point `(px, py)` (metres) lies inside the
    /// rectangle (closed on the south/west edges, open on the north/east
    /// edges, so that a tiling of rectangles partitions the plane).
    pub fn contains(&self, px: f64, py: f64) -> bool {
        px >= self.x_min() && px < self.x_max() && py >= self.y_min() && py < self.y_max()
    }

    /// Returns `true` if the two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersection_area(other).value() > 0.0
    }

    /// Area of the intersection of two rectangles (zero if disjoint).
    pub fn intersection_area(&self, other: &Rect) -> SquareMeters {
        let dx = self.x_max().min(other.x_max()) - self.x_min().max(other.x_min());
        let dy = self.y_max().min(other.y_max()) - self.y_min().max(other.y_min());
        if dx > 0.0 && dy > 0.0 {
            SquareMeters::new(dx * dy)
        } else {
            SquareMeters::ZERO
        }
    }

    /// Returns this rectangle translated by `(dx, dy)` metres.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }

    /// Returns `true` if `self` lies entirely within `outer`
    /// (with a small tolerance for floating-point tiling).
    pub fn within(&self, outer: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x_min() >= outer.x_min() - EPS
            && self.y_min() >= outer.y_min() - EPS
            && self.x_max() <= outer.x_max() + EPS
            && self.y_max() <= outer.y_max() + EPS
    }

    /// Euclidean distance between the centres of two rectangles, in metres.
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{:.2}..{:.2}] × [{:.2}..{:.2}] mm",
            self.x_min() * 1e3,
            self.x_max() * 1e3,
            self.y_min() * 1e3,
            self.y_max() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_geometry() {
        let r = Rect::from_mm(1.0, 2.0, 3.0, 4.0);
        assert!((r.x_min() - 0.001).abs() < 1e-12);
        assert!((r.x_max() - 0.004).abs() < 1e-12);
        assert!((r.area().to_mm2() - 12.0).abs() < 1e-9);
        let (cx, cy) = r.center();
        assert!((cx - 0.0025).abs() < 1e-12);
        assert!((cy - 0.004).abs() < 1e-12);
    }

    #[test]
    fn containment_is_half_open() {
        let r = Rect::from_mm(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(0.0, 0.0));
        assert!(!r.contains(0.001, 0.0005));
        assert!(!r.contains(0.0005, 0.001));
    }

    #[test]
    fn intersection() {
        let a = Rect::from_mm(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_mm(1.0, 1.0, 2.0, 2.0);
        let c = Rect::from_mm(5.0, 5.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!((a.intersection_area(&b).to_mm2() - 1.0).abs() < 1e-9);
        assert_eq!(a.intersection_area(&c), SquareMeters::ZERO);
    }

    #[test]
    fn touching_rectangles_do_not_intersect() {
        let a = Rect::from_mm(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_mm(1.0, 0.0, 1.0, 1.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn within_and_translate() {
        let outer = Rect::from_mm(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::from_mm(1.0, 1.0, 2.0, 2.0);
        assert!(inner.within(&outer));
        assert!(!inner.translated(0.009, 0.0).within(&outer));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_width_panics() {
        let _ = Rect::from_mm(0.0, 0.0, -1.0, 1.0);
    }

    proptest! {
        #[test]
        fn intersection_is_commutative(
            ax in 0.0f64..10.0, ay in 0.0f64..10.0, aw in 0.0f64..10.0, ah in 0.0f64..10.0,
            bx in 0.0f64..10.0, by in 0.0f64..10.0, bw in 0.0f64..10.0, bh in 0.0f64..10.0,
        ) {
            let a = Rect::from_mm(ax, ay, aw, ah);
            let b = Rect::from_mm(bx, by, bw, bh);
            prop_assert!(
                (a.intersection_area(&b).value() - b.intersection_area(&a).value()).abs() < 1e-18
            );
        }

        #[test]
        fn intersection_bounded_by_min_area(
            ax in 0.0f64..10.0, ay in 0.0f64..10.0, aw in 0.1f64..10.0, ah in 0.1f64..10.0,
            bx in 0.0f64..10.0, by in 0.0f64..10.0, bw in 0.1f64..10.0, bh in 0.1f64..10.0,
        ) {
            let a = Rect::from_mm(ax, ay, aw, ah);
            let b = Rect::from_mm(bx, by, bw, bh);
            let i = a.intersection_area(&b).value();
            prop_assert!(i <= a.area().value().min(b.area().value()) + 1e-18);
            prop_assert!(i >= 0.0);
        }
    }
}
