//! Die and package floorplans, simulation grids and scalar fields.
//!
//! This crate provides the geometric substrate of the simulator:
//!
//! * [`Rect`]/[`Block`]/[`Floorplan`] — rectangular component layouts with
//!   overlap/bounds validation,
//! * [`xeon_e5_v4`] — the Intel Xeon E5 v4 (Broadwell-EP) die of the paper's
//!   Fig. 2c: two columns of four cores plus a reserved slot each, a large
//!   last-level cache on the east side, and memory-controller / uncore strips
//!   along the south edge (246 mm² die),
//! * [`CoreTopology`] — the row/column lattice of core slots that the mapping
//!   policies in `tps-core` reason about,
//! * [`PackageGeometry`] — die-in-package placement (heat spreader extent),
//! * [`GridSpec`]/[`ScalarField`] — regular simulation grids and the fields
//!   (power, temperature, heat-transfer coefficient) exchanged between the
//!   power, thermal and thermosyphon crates,
//! * rasterization of block-level quantities onto grids ([`rasterize`]).
//!
//! ```
//! use tps_floorplan::xeon_e5_v4;
//!
//! let fp = xeon_e5_v4();
//! assert_eq!(fp.cores().count(), 8);
//! assert!((fp.die_area().to_mm2() - 246.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod grid;
mod package;
mod plan;
mod rect;
mod xeon;

pub use block::{Block, BlockId, ComponentKind};
pub use error::FloorplanError;
pub use grid::{rasterize, rasterize_rect, CellIndex, GridSpec, ScalarField};
pub use package::PackageGeometry;
pub use plan::{Floorplan, FloorplanBuilder};
pub use rect::Rect;
pub use xeon::{xeon_e5_v4, CoreSlot, CoreTopology, XEON_CORE_COLS, XEON_CORE_ROWS};
