//! Floorplan construction errors.

use core::fmt;

/// Error produced while building or validating a [`Floorplan`](crate::Floorplan).
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// A block extends beyond the die outline.
    OutOfBounds {
        /// Name of the offending block.
        block: String,
    },
    /// Two blocks overlap with positive area.
    Overlap {
        /// Name of the first offending block.
        first: String,
        /// Name of the second offending block.
        second: String,
        /// Overlap area in mm².
        area_mm2: f64,
    },
    /// Two cores carry the same 1-based index.
    DuplicateCoreIndex {
        /// The duplicated index.
        index: u8,
    },
    /// The floorplan has no blocks at all.
    Empty,
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfBounds { block } => {
                write!(f, "block `{block}` extends beyond the die outline")
            }
            FloorplanError::Overlap {
                first,
                second,
                area_mm2,
            } => write!(
                f,
                "blocks `{first}` and `{second}` overlap by {area_mm2:.3} mm²"
            ),
            FloorplanError::DuplicateCoreIndex { index } => {
                write!(f, "core index {index} is used by more than one block")
            }
            FloorplanError::Empty => write!(f, "floorplan contains no blocks"),
        }
    }
}

impl std::error::Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = FloorplanError::Overlap {
            first: "core1".into(),
            second: "llc".into(),
            area_mm2: 1.25,
        };
        let msg = e.to_string();
        assert!(msg.contains("core1") && msg.contains("llc") && msg.contains("1.250"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
