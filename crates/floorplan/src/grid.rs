//! Regular simulation grids and scalar fields defined on them.

use crate::block::Block;
use crate::plan::Floorplan;
use crate::rect::Rect;

/// A regular `nx × ny` grid of rectangular cells tiling a [`Rect`].
///
/// Grids are the common currency between the power model (power per cell),
/// the thermal solver (temperature per cell per layer) and the thermosyphon
/// evaporator (heat-transfer coefficient per cell).
///
/// ```
/// use tps_floorplan::{GridSpec, Rect};
/// let grid = GridSpec::new(36, 32, Rect::from_mm(0.0, 0.0, 36.0, 32.0));
/// assert_eq!(grid.n_cells(), 36 * 32);
/// assert!((grid.cell_w() - 0.001).abs() < 1e-12); // 1 mm cells
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    nx: usize,
    ny: usize,
    extent: Rect,
}

/// A cell coordinate on a [`GridSpec`]: `ix` counts east, `iy` counts north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellIndex {
    /// Column (x / east) index, `0..nx`.
    pub ix: usize,
    /// Row (y / north) index, `0..ny`.
    pub iy: usize,
}

impl GridSpec {
    /// Creates a grid of `nx × ny` cells over `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the extent is degenerate.
    pub fn new(nx: usize, ny: usize, extent: Rect) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        assert!(
            extent.area().value() > 0.0,
            "grid extent must have positive area"
        );
        Self { nx, ny, extent }
    }

    /// Creates a grid over `extent` with approximately square cells of the
    /// given pitch (in metres). Cell counts are rounded up so that the pitch
    /// is an upper bound.
    pub fn with_pitch(extent: Rect, pitch_m: f64) -> Self {
        assert!(pitch_m > 0.0, "pitch must be positive");
        let nx = (extent.width().value() / pitch_m).ceil().max(1.0) as usize;
        let ny = (extent.height().value() / pitch_m).ceil().max(1.0) as usize;
        Self::new(nx, ny, extent)
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The rectangle tiled by this grid.
    #[inline]
    pub fn extent(&self) -> &Rect {
        &self.extent
    }

    /// Cell width (east–west) in metres.
    #[inline]
    pub fn cell_w(&self) -> f64 {
        self.extent.width().value() / self.nx as f64
    }

    /// Cell height (north–south) in metres.
    #[inline]
    pub fn cell_h(&self) -> f64 {
        self.extent.height().value() / self.ny as f64
    }

    /// Cell area in m².
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.cell_w() * self.cell_h()
    }

    /// Flat index of a cell (row-major, `iy * nx + ix`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinate is out of range.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of range"
        );
        iy * self.nx + ix
    }

    /// The cell's covering rectangle.
    pub fn cell_rect(&self, ix: usize, iy: usize) -> Rect {
        let w = self.cell_w();
        let h = self.cell_h();
        Rect::from_m(
            self.extent.x_min() + ix as f64 * w,
            self.extent.y_min() + iy as f64 * h,
            w,
            h,
        )
    }

    /// The cell's centre `(x, y)` in metres.
    pub fn cell_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        let w = self.cell_w();
        let h = self.cell_h();
        (
            self.extent.x_min() + (ix as f64 + 0.5) * w,
            self.extent.y_min() + (iy as f64 + 0.5) * h,
        )
    }

    /// The cell containing the point `(x, y)` in metres, if inside the extent.
    pub fn cell_at(&self, x: f64, y: f64) -> Option<CellIndex> {
        if !self.extent.contains(x, y) {
            return None;
        }
        let ix = ((x - self.extent.x_min()) / self.cell_w()) as usize;
        let iy = ((y - self.extent.y_min()) / self.cell_h()) as usize;
        Some(CellIndex {
            ix: ix.min(self.nx - 1),
            iy: iy.min(self.ny - 1),
        })
    }

    /// Iterates over all cell coordinates in flat-index order.
    pub fn cells(&self) -> impl Iterator<Item = CellIndex> + '_ {
        (0..self.ny).flat_map(move |iy| (0..self.nx).map(move |ix| CellIndex { ix, iy }))
    }

    /// The inclusive-exclusive range of cell columns/rows overlapping `rect`.
    ///
    /// Returns `(ix_range, iy_range)`; empty ranges if disjoint.
    pub fn cell_span(&self, rect: &Rect) -> (core::ops::Range<usize>, core::ops::Range<usize>) {
        let w = self.cell_w();
        let h = self.cell_h();
        let x0 = ((rect.x_min() - self.extent.x_min()) / w).floor().max(0.0) as usize;
        let y0 = ((rect.y_min() - self.extent.y_min()) / h).floor().max(0.0) as usize;
        let x1 = (((rect.x_max() - self.extent.x_min()) / w).ceil() as usize).min(self.nx);
        let y1 = (((rect.y_max() - self.extent.y_min()) / h).ceil() as usize).min(self.ny);
        (x0..x1.max(x0), y0..y1.max(y0))
    }
}

/// An `f64` value per cell of a [`GridSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarField {
    spec: GridSpec,
    data: Vec<f64>,
}

impl ScalarField {
    /// Creates a field filled with a constant value.
    pub fn filled(spec: GridSpec, value: f64) -> Self {
        let n = spec.n_cells();
        Self {
            spec,
            data: vec![value; n],
        }
    }

    /// Creates an all-zero field.
    pub fn zeros(spec: GridSpec) -> Self {
        Self::filled(spec, 0.0)
    }

    /// Creates a field by evaluating `f` at each cell centre.
    pub fn from_fn(spec: GridSpec, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut data = Vec::with_capacity(spec.n_cells());
        for iy in 0..spec.ny() {
            for ix in 0..spec.nx() {
                let (x, y) = spec.cell_center(ix, iy);
                data.push(f(x, y));
            }
        }
        Self { spec, data }
    }

    /// The field's grid.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Value at cell `(ix, iy)`.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.data[self.spec.idx(ix, iy)]
    }

    /// Sets the value at cell `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, value: f64) {
        let i = self.spec.idx(ix, iy);
        self.data[i] = value;
    }

    /// Adds `value` to cell `(ix, iy)`.
    #[inline]
    pub fn add(&mut self, ix: usize, iy: usize, value: f64) {
        let i = self.spec.idx(ix, iy);
        self.data[i] += value;
    }

    /// Raw values in flat-index order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values in flat-index order.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Maximum value (NaN-safe; `-inf` for an empty field is impossible since
    /// grids are non-empty).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean value over all cells (cells are uniform, so this is the
    /// area-weighted mean).
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Sum of all cell values.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum over the cells whose centres lie within `rect`.
    ///
    /// Returns `None` if no cell centre falls inside.
    pub fn max_in_rect(&self, rect: &Rect) -> Option<f64> {
        self.reduce_in_rect(rect, f64::NEG_INFINITY, f64::max)
    }

    /// Minimum over the cells whose centres lie within `rect`.
    pub fn min_in_rect(&self, rect: &Rect) -> Option<f64> {
        self.reduce_in_rect(rect, f64::INFINITY, f64::min)
    }

    /// Mean over the cells whose centres lie within `rect`.
    pub fn mean_in_rect(&self, rect: &Rect) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        self.for_each_in_rect(rect, |v| {
            n += 1;
            sum += v;
        });
        (n > 0).then(|| sum / n as f64)
    }

    fn reduce_in_rect(&self, rect: &Rect, init: f64, f: impl Fn(f64, f64) -> f64) -> Option<f64> {
        let mut any = false;
        let mut acc = init;
        self.for_each_in_rect(rect, |v| {
            any = true;
            acc = f(acc, v);
        });
        any.then_some(acc)
    }

    fn for_each_in_rect(&self, rect: &Rect, mut f: impl FnMut(f64)) {
        let (xs, ys) = self.spec.cell_span(rect);
        for iy in ys {
            for ix in xs.clone() {
                let (cx, cy) = self.spec.cell_center(ix, iy);
                if rect.contains(cx, cy) {
                    f(self.at(ix, iy));
                }
            }
        }
    }

    /// Adds another field of the same grid, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn accumulate(&mut self, other: &ScalarField) {
        assert_eq!(
            self.spec, other.spec,
            "cannot accumulate fields on different grids"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every value by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Largest absolute element-wise difference to another field.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn max_abs_diff(&self, other: &ScalarField) -> f64 {
        assert_eq!(
            self.spec, other.spec,
            "cannot compare fields on different grids"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Distributes per-block quantities onto a grid by exact area overlap.
///
/// For every block `b`, `per_block(b)` (e.g. its power in watts) is spread
/// over the grid cells proportionally to the overlap area, so that the grid
/// total equals the sum over blocks (conservative rasterization). `offset`
/// translates block coordinates into grid coordinates — e.g. the die origin
/// within the package.
///
/// ```
/// use tps_floorplan::{rasterize, xeon_e5_v4, GridSpec, Rect};
/// let fp = xeon_e5_v4();
/// let grid = GridSpec::new(36, 28, *fp.outline());
/// let field = rasterize(&fp, &grid, (0.0, 0.0), |b| b.rect().area().to_mm2());
/// // Conservation: rasterized total equals the summed block areas.
/// assert!((field.total() - 246.0).abs() < 1.0);
/// ```
pub fn rasterize(
    fp: &Floorplan,
    grid: &GridSpec,
    offset: (f64, f64),
    per_block: impl Fn(&Block) -> f64,
) -> ScalarField {
    let mut field = ScalarField::zeros(grid.clone());
    for block in fp.blocks() {
        let value = per_block(block);
        if value == 0.0 {
            continue;
        }
        let rect = block.rect().translated(offset.0, offset.1);
        rasterize_rect(&mut field, &rect, value);
    }
    field
}

/// Spreads `total` over the cells of `field` proportionally to their overlap
/// with `rect` (conservative: the field gains exactly `total` as long as the
/// rectangle lies within the grid).
///
/// Building block of [`rasterize`]; also used to place sub-block structures
/// such as a core's execution-cluster hot spot.
pub fn rasterize_rect(field: &mut ScalarField, rect: &Rect, total: f64) {
    let grid = field.spec().clone();
    let area = rect.area().value();
    if area <= 0.0 || total == 0.0 {
        return;
    }
    let (xs, ys) = grid.cell_span(rect);
    for iy in ys {
        for ix in xs.clone() {
            let overlap = grid.cell_rect(ix, iy).intersection_area(rect).value();
            if overlap > 0.0 {
                field.add(ix, iy, total * overlap / area);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::ComponentKind;
    use crate::plan::FloorplanBuilder;
    use proptest::prelude::*;

    fn grid_10x10_mm() -> GridSpec {
        GridSpec::new(10, 10, Rect::from_mm(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn index_round_trip() {
        let g = grid_10x10_mm();
        assert_eq!(g.idx(3, 4), 43);
        let c = g.cell_at(0.0035, 0.0045).unwrap();
        assert_eq!((c.ix, c.iy), (3, 4));
        assert!(g.cell_at(0.0105, 0.0).is_none());
    }

    #[test]
    fn cell_geometry() {
        let g = grid_10x10_mm();
        let r = g.cell_rect(2, 3);
        assert!((r.x_min() - 0.002).abs() < 1e-12);
        assert!((r.y_min() - 0.003).abs() < 1e-12);
        let (cx, cy) = g.cell_center(2, 3);
        assert!((cx - 0.0025).abs() < 1e-12);
        assert!((cy - 0.0035).abs() < 1e-12);
        assert!((g.cell_area() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn with_pitch_rounds_up() {
        let g = GridSpec::with_pitch(Rect::from_mm(0.0, 0.0, 10.0, 5.0), 0.0011);
        assert!(g.nx() >= 10 / 2 && g.cell_w() <= 0.0011 + 1e-12);
        assert!(g.cell_h() <= 0.0011 + 1e-12);
    }

    #[test]
    fn field_statistics() {
        let g = grid_10x10_mm();
        let f = ScalarField::from_fn(g, |x, _| x * 1000.0);
        assert!((f.min() - 0.5).abs() < 1e-9);
        assert!((f.max() - 9.5).abs() < 1e-9);
        assert!((f.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rect_statistics() {
        let g = grid_10x10_mm();
        let f = ScalarField::from_fn(g, |x, y| x * 1000.0 + y * 1000.0);
        let west = Rect::from_mm(0.0, 0.0, 5.0, 10.0);
        let east = Rect::from_mm(5.0, 0.0, 5.0, 10.0);
        assert!(f.mean_in_rect(&west).unwrap() < f.mean_in_rect(&east).unwrap());
        assert!(f.max_in_rect(&east).unwrap() > f.max_in_rect(&west).unwrap());
        assert!(f
            .mean_in_rect(&Rect::from_mm(20.0, 20.0, 1.0, 1.0))
            .is_none());
    }

    #[test]
    fn accumulate_and_scale() {
        let g = grid_10x10_mm();
        let mut a = ScalarField::filled(g.clone(), 1.0);
        let b = ScalarField::filled(g, 2.0);
        a.accumulate(&b);
        a.scale(2.0);
        assert_eq!(a.at(0, 0), 6.0);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn accumulate_rejects_mismatched_grids() {
        let mut a = ScalarField::zeros(grid_10x10_mm());
        let b = ScalarField::zeros(GridSpec::new(5, 5, Rect::from_mm(0.0, 0.0, 10.0, 10.0)));
        a.accumulate(&b);
    }

    #[test]
    fn rasterize_conserves_total() {
        let fp = FloorplanBuilder::new("t", 10.0, 10.0)
            .block(
                "a",
                ComponentKind::Core(1),
                Rect::from_mm(0.5, 0.5, 4.0, 4.0),
            )
            .block(
                "b",
                ComponentKind::Core(2),
                Rect::from_mm(5.0, 5.0, 4.5, 4.5),
            )
            .build()
            .unwrap();
        let grid = GridSpec::new(7, 9, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        let f = rasterize(&fp, &grid, (0.0, 0.0), |b| match b.kind() {
            ComponentKind::Core(1) => 10.0,
            _ => 5.0,
        });
        assert!((f.total() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn rasterize_respects_offset() {
        let fp = FloorplanBuilder::new("t", 2.0, 2.0)
            .block(
                "a",
                ComponentKind::Core(1),
                Rect::from_mm(0.0, 0.0, 2.0, 2.0),
            )
            .build()
            .unwrap();
        let grid = GridSpec::new(10, 10, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        // Shift the 2×2 mm block to the middle of the 10×10 mm grid.
        let f = rasterize(&fp, &grid, (4e-3, 4e-3), |_| 1.0);
        assert!((f.total() - 1.0).abs() < 1e-9);
        assert_eq!(f.at(0, 0), 0.0);
        assert!(f.at(4, 4) > 0.0);
    }

    proptest! {
        #[test]
        fn rasterize_is_conservative(
            bx in 0.0f64..6.0, by in 0.0f64..6.0,
            bw in 0.5f64..4.0, bh in 0.5f64..4.0,
            nx in 3usize..20, ny in 3usize..20,
            value in 0.1f64..100.0,
        ) {
            let fp = FloorplanBuilder::new("t", 10.0, 10.0)
                .block("a", ComponentKind::Core(1), Rect::from_mm(bx, by, bw, bh))
                .build()
                .unwrap();
            let grid = GridSpec::new(nx, ny, Rect::from_mm(0.0, 0.0, 10.0, 10.0));
            let f = rasterize(&fp, &grid, (0.0, 0.0), |_| value);
            prop_assert!((f.total() - value).abs() < 1e-9 * value.max(1.0));
            prop_assert!(f.min() >= 0.0);
        }
    }
}
