//! Rack-level aggregation: one chiller, many thermosyphons.
//!
//! ```
//! use tps_cooling::{Chiller, Rack, ServerCoolingLoad};
//! use tps_units::{Celsius, KgPerHour, Watts};
//!
//! // Two well-mapped servers and one whose mapping demands colder water.
//! let mut rack = Rack::new();
//! for max_water in [64.0, 75.0, 77.0] {
//!     rack.add_server(ServerCoolingLoad {
//!         heat: Watts::new(70.0),
//!         max_water_temp: Celsius::new(max_water),
//!         flow: KgPerHour::new(7.0),
//!     });
//! }
//! // The shared loop must satisfy the worst server…
//! assert_eq!(rack.shared_water_temperature(), Some(Celsius::new(64.0)));
//! // …and every watt of the rack is chilled at that supply temperature.
//! let chiller = Chiller::new(Celsius::new(60.0));
//! assert!(rack.chiller_power(&chiller) > Watts::ZERO);
//! ```

use crate::chiller::Chiller;
use tps_units::{Celsius, KgPerHour, TempDelta, Watts};

/// The cooling demand of one server in the rack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCoolingLoad {
    /// Heat the server's thermosyphon rejects into the water loop.
    pub heat: Watts,
    /// The warmest water this server can tolerate while meeting its
    /// `T_CASE` constraint.
    pub max_water_temp: Celsius,
    /// The server's water flow (valve position).
    pub flow: KgPerHour,
}

/// A rack: several thermosyphon-cooled servers sharing one chiller loop.
///
/// Sec. V: "one water cooling system (chiller) per rack is used. Therefore,
/// all thermosyphons should work with the same water temperature" — the
/// rack must run at the *coldest* per-server requirement, so one badly
/// mapped server drags the whole rack's chiller efficiency down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rack {
    servers: Vec<ServerCoolingLoad>,
}

impl Rack {
    /// An empty rack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server's cooling demand.
    pub fn add_server(&mut self, load: ServerCoolingLoad) -> &mut Self {
        self.servers.push(load);
        self
    }

    /// A rack pre-populated from an iterator of per-server loads.
    pub fn from_loads<I: IntoIterator<Item = ServerCoolingLoad>>(loads: I) -> Self {
        Self {
            servers: loads.into_iter().collect(),
        }
    }

    /// The servers registered so far.
    pub fn servers(&self) -> &[ServerCoolingLoad] {
        &self.servers
    }

    /// The number of registered servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether no server has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Total heat into the rack's water loop.
    pub fn total_heat(&self) -> Watts {
        self.servers.iter().map(|s| s.heat).sum()
    }

    /// The shared supply temperature: the minimum of the per-server maxima.
    ///
    /// Returns `None` for an empty rack.
    pub fn shared_water_temperature(&self) -> Option<Celsius> {
        self.servers
            .iter()
            .map(|s| s.max_water_temp)
            .reduce(Celsius::min)
    }

    /// Total water flow through the rack manifold.
    pub fn total_flow(&self) -> KgPerHour {
        self.servers.iter().map(|s| s.flow).sum()
    }

    /// Mean water temperature rise across the rack, from the energy balance
    /// `ΔT = Q / (ṁ·c_p)`.
    pub fn water_delta_t(&self) -> TempDelta {
        let c = tps_units::KgPerSecond::from(self.total_flow()).capacity_rate(
            tps_fluids::Water::specific_heat(
                self.shared_water_temperature()
                    .unwrap_or(Celsius::new(25.0)),
            ),
        );
        if c.value() <= 0.0 {
            return TempDelta::ZERO;
        }
        self.total_heat() / c
    }

    /// Chiller electrical power for this rack.
    ///
    /// Returns zero for an empty rack.
    pub fn chiller_power(&self, chiller: &Chiller) -> Watts {
        match self.shared_water_temperature() {
            Some(t) => chiller.electrical_power(self.total_heat(), t),
            None => Watts::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(heat: f64, t: f64) -> ServerCoolingLoad {
        ServerCoolingLoad {
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(t),
            flow: KgPerHour::new(7.0),
        }
    }

    #[test]
    fn empty_rack() {
        let r = Rack::new();
        assert_eq!(r.total_heat(), Watts::ZERO);
        assert!(r.shared_water_temperature().is_none());
        assert_eq!(r.chiller_power(&Chiller::default()), Watts::ZERO);
    }

    #[test]
    fn worst_server_sets_the_water_temperature() {
        let mut r = Rack::new();
        r.add_server(load(60.0, 30.0))
            .add_server(load(70.0, 22.0))
            .add_server(load(50.0, 30.0));
        assert_eq!(r.shared_water_temperature(), Some(Celsius::new(22.0)));
        assert_eq!(r.total_heat(), Watts::new(180.0));
        assert_eq!(r.total_flow(), KgPerHour::new(21.0));
    }

    #[test]
    fn one_bad_server_raises_rack_chiller_power() {
        let chiller = Chiller::default();
        let mut good = Rack::new();
        for _ in 0..4 {
            good.add_server(load(60.0, 30.0));
        }
        let mut mixed = Rack::new();
        for _ in 0..3 {
            mixed.add_server(load(60.0, 30.0));
        }
        mixed.add_server(load(60.0, 20.0)); // badly mapped server
        assert!(mixed.chiller_power(&chiller) > good.chiller_power(&chiller) * 2.0);
    }

    #[test]
    fn delta_t_energy_balance() {
        let mut r = Rack::new();
        r.add_server(load(48.8, 30.0));
        // 7 kg/h, 48.8 W ⇒ ≈ 6 K (the paper's proposed-approach numbers).
        assert!((r.water_delta_t().value() - 6.0).abs() < 0.05);
    }
}
