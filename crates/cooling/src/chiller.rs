//! The paper's Eq. 1 and a chiller-electrical-power model.

use tps_fluids::Water;
use tps_units::{Celsius, Density, KgPerHour, SpecificHeat, TempDelta, VolumetricFlow, Watts};

/// The paper's Eq. 1: the power required to change the temperature of a
/// water stream, `P = V̇ · ρ · C_w · ΔT` (V̇ in volume per second, ρ the
/// density, `C_w` the specific heat, ΔT the inlet–outlet difference).
///
/// ```
/// use tps_cooling::eq1_cooling_power;
/// use tps_units::{Density, SpecificHeat, TempDelta, VolumetricFlow};
///
/// // 7 kg/h of water (≈1.95e-6 m³/s) warming by 6 °C carries ≈ 49 W.
/// let p = eq1_cooling_power(
///     VolumetricFlow::new(7.0 / 3600.0 / 996.0),
///     Density::new(996.0),
///     SpecificHeat::new(4181.0),
///     TempDelta::new(6.0),
/// );
/// assert!((p.value() - 48.8).abs() < 0.2);
/// ```
pub fn eq1_cooling_power(
    flow: VolumetricFlow,
    rho: Density,
    cw: SpecificHeat,
    dt: TempDelta,
) -> Watts {
    Watts::new(flow.value() * rho.value() * cw.value() * dt.value())
}

/// Convenience wrapper of Eq. 1 for a water loop described by mass flow and
/// inlet/outlet temperatures.
pub fn water_loop_heat(flow: KgPerHour, t_in: Celsius, t_out: Celsius) -> Watts {
    let rho = Water::density(t_in);
    let si = tps_units::KgPerSecond::from(flow);
    eq1_cooling_power(
        si.to_volumetric(rho),
        rho,
        Water::specific_heat(t_in),
        t_out - t_in,
    )
}

/// A vapour-compression chiller: electrical power = heat / COP, with a
/// Carnot-fraction COP that collapses as the supply water gets colder than
/// the ambient heat-rejection temperature.
///
/// When the supply setpoint is at or above the rejection temperature the
/// chiller is bypassed entirely (free cooling — the paper notes the chiller
/// power would then be "even close to zero").
#[derive(Debug, Clone, PartialEq)]
pub struct Chiller {
    ambient: Celsius,
    approach: TempDelta,
    second_law_efficiency: f64,
    min_lift: TempDelta,
    max_cop: f64,
}

impl Chiller {
    /// A chiller rejecting to `ambient` air with a 5 K condenser approach,
    /// a 25 % second-law efficiency and a 12 K minimum compressor lift
    /// (evaporator + condenser approaches) — typical screw/scroll machines.
    pub fn new(ambient: Celsius) -> Self {
        Self {
            ambient,
            approach: TempDelta::new(5.0),
            second_law_efficiency: 0.25,
            min_lift: TempDelta::new(12.0),
            max_cop: 20.0,
        }
    }

    /// The ambient (heat-rejection) temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// The same machine rejecting to a different ambient/heat-reuse
    /// temperature — how runtime set-point control re-programs a chiller
    /// without touching its approach, second-law efficiency or lift
    /// limits.
    ///
    /// ```
    /// use tps_cooling::Chiller;
    /// use tps_units::{Celsius, Watts};
    ///
    /// let reuse = Chiller::new(Celsius::new(70.0));
    /// let dropped = reuse.with_ambient(Celsius::new(40.0));
    /// assert_eq!(dropped.ambient(), Celsius::new(40.0));
    /// // A 60 °C supply pays lift against the 70 °C loop but free-cools
    /// // against the 40 °C one.
    /// assert!(dropped.cop(Celsius::new(60.0)) > reuse.cop(Celsius::new(60.0)));
    /// ```
    pub fn with_ambient(&self, ambient: Celsius) -> Self {
        Self {
            ambient,
            ..self.clone()
        }
    }

    /// COP when producing water at `supply`.
    ///
    /// Carnot-fraction with a minimum lift:
    /// `COP = η · T_cold / max(T_hot − T_cold, lift_min)`, capped at
    /// `max_cop`; returns the cap (free cooling: fans and pumps only) when
    /// `supply` is warm enough that no compression is needed.
    pub fn cop(&self, supply: Celsius) -> f64 {
        let t_cold = supply.to_kelvin().value();
        let t_hot = (self.ambient + self.approach).to_kelvin().value();
        if t_cold >= t_hot {
            return self.max_cop;
        }
        let lift = (t_hot - t_cold).max(self.min_lift.value());
        (self.second_law_efficiency * t_cold / lift).min(self.max_cop)
    }

    /// Electrical power to remove `heat` at a supply temperature.
    ///
    /// # Panics
    ///
    /// Panics if `heat` is negative.
    pub fn electrical_power(&self, heat: Watts, supply: Celsius) -> Watts {
        assert!(heat.value() >= 0.0, "heat load must be non-negative");
        Watts::new(heat.value() / self.cop(supply))
    }
}

impl Default for Chiller {
    /// A 25 °C machine-room ambient.
    fn default() -> Self {
        Self::new(Celsius::new(25.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_arithmetic() {
        // Paper Sec. VIII-B: ΔT of 6 °C vs 11 °C at the same flow gives the
        // 45 % reduction: 1 − 6/11 ≈ 0.4545.
        let p6 = water_loop_heat(KgPerHour::new(7.0), Celsius::new(30.0), Celsius::new(36.0));
        let p11 = water_loop_heat(KgPerHour::new(7.0), Celsius::new(20.0), Celsius::new(31.0));
        let reduction = 1.0 - p6.value() / p11.value();
        assert!((reduction - 0.4545).abs() < 0.01, "reduction {reduction}");
    }

    #[test]
    fn colder_supply_needs_more_electricity() {
        let c = Chiller::default();
        let q = Watts::new(79.0);
        let warm = c.electrical_power(q, Celsius::new(30.0));
        let cold = c.electrical_power(q, Celsius::new(20.0));
        assert!(cold > warm * 2.0, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn free_cooling_at_warm_setpoints() {
        let c = Chiller::default();
        assert_eq!(c.cop(Celsius::new(35.0)), 20.0);
        // 30 °C supply against 25 °C ambient + 5 K approach ⇒ free cooling.
        assert_eq!(c.cop(Celsius::new(30.0)), 20.0);
        // 20 °C supply: the 12 K minimum lift rules: COP ≈ 0.25·293/12 ≈ 6.1.
        assert!((c.cop(Celsius::new(20.0)) - 6.11).abs() < 0.1);
    }

    #[test]
    fn zero_heat_zero_power() {
        let c = Chiller::default();
        assert_eq!(
            c.electrical_power(Watts::ZERO, Celsius::new(20.0)),
            Watts::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_heat_rejected() {
        let _ = Chiller::default().electrical_power(Watts::new(-1.0), Celsius::new(20.0));
    }
}
