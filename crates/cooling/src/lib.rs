//! Rack-level cooling power accounting (Sec. VIII-B of the paper).
//!
//! * [`eq1_cooling_power`] — the paper's Eq. 1, `P = V̇·ρ·C_w·ΔT`: the power
//!   carried by the water stream that the chiller must remove,
//! * [`Chiller`] — a Carnot-fraction chiller model turning that heat plus
//!   the supply temperature into *electrical* power (colder supply water ⇒
//!   lower COP ⇒ more electricity, the effect that penalizes the state of
//!   the art's 20 °C water),
//! * [`Rack`] — per-rack aggregation with the paper's constraint that all
//!   thermosyphons share one chiller water temperature (Sec. V),
//! * [`pue`] — power-usage-effectiveness accounting (the paper motivates
//!   thermosyphons with PUE 1.05 vs 1.48 air-cooled).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chiller;
mod pue;
mod rack;

pub use chiller::{eq1_cooling_power, water_loop_heat, Chiller};
pub use pue::pue;
pub use rack::{Rack, ServerCoolingLoad};
