//! Rack-level cooling power accounting (Sec. VIII-B of the paper).
//!
//! * [`eq1_cooling_power`] — the paper's Eq. 1, `P = V̇·ρ·C_w·ΔT`: the power
//!   carried by the water stream that the chiller must remove,
//! * [`Chiller`] — a Carnot-fraction chiller model turning that heat plus
//!   the supply temperature into *electrical* power (colder supply water ⇒
//!   lower COP ⇒ more electricity, the effect that penalizes the state of
//!   the art's 20 °C water),
//! * [`Rack`] — per-rack aggregation with the paper's constraint that all
//!   thermosyphons share one chiller water temperature (Sec. V),
//! * [`pue`] — power-usage-effectiveness accounting (the paper motivates
//!   thermosyphons with PUE 1.05 vs 1.48 air-cooled).
//!
//! The same building blocks scale up: `tps-cluster` instantiates one
//! [`Rack`] per fleet rack and one [`Chiller`] per scenario, and integrates
//! [`Rack::chiller_power`] over an event timeline to get fleet cooling
//! energy.
//!
//! ```
//! use tps_cooling::{pue, Chiller, Rack, ServerCoolingLoad};
//! use tps_units::{Celsius, KgPerHour, Watts};
//!
//! let rack = Rack::from_loads([ServerCoolingLoad {
//!     heat: Watts::new(79.0),
//!     max_water_temp: Celsius::new(64.0),
//!     flow: KgPerHour::new(7.0),
//! }]);
//! // A heat-recovery condenser loop at 60 °C: the chiller must lift the
//! // rack heat up to the reuse temperature unless the rack tolerates
//! // warmer water than the loop provides.
//! let reuse = Chiller::new(Celsius::new(60.0));
//! let electrical = rack.chiller_power(&reuse);
//! assert!(electrical > Watts::ZERO);
//! assert!(pue(Watts::new(79.0), electrical) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chiller;
mod pue;
mod rack;

pub use chiller::{eq1_cooling_power, water_loop_heat, Chiller};
pub use pue::pue;
pub use rack::{Rack, ServerCoolingLoad};
