//! Power-usage-effectiveness accounting.

use tps_units::Watts;

/// PUE = total facility power / IT power.
///
/// The paper's introduction frames the whole effort through PUE: air-cooled
/// facilities sit near 1.48–1.65, DCLC reaches 1.17, and the thermosyphon
/// prototype of \[8\] achieves 1.05.
///
/// # Panics
///
/// Panics if `it_power` is not positive or `overhead_power` is negative.
///
/// ```
/// use tps_cooling::pue;
/// use tps_units::Watts;
/// let p = pue(Watts::new(1000.0), Watts::new(50.0));
/// assert!((p - 1.05).abs() < 1e-12);
/// ```
pub fn pue(it_power: Watts, overhead_power: Watts) -> f64 {
    assert!(it_power.value() > 0.0, "IT power must be positive");
    assert!(
        overhead_power.value() >= 0.0,
        "overhead power must be non-negative"
    );
    (it_power + overhead_power) / it_power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_with_no_overhead() {
        assert_eq!(pue(Watts::new(500.0), Watts::ZERO), 1.0);
    }

    #[test]
    fn air_cooled_band() {
        // 48 % overhead ⇒ the 1.48 the paper quotes for Cisco's facilities.
        assert!((pue(Watts::new(100.0), Watts::new(48.0)) - 1.48).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_it_power_rejected() {
        let _ = pue(Watts::ZERO, Watts::ZERO);
    }
}
