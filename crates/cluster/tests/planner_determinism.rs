//! Byte-determinism regression for planner-controlled runs: the outcome
//! and telemetry trace must be identical across warm-up thread counts
//! and across the calendar/heap queue backends, for both solver cores —
//! the same invariant `serving.rs` pins for the autoscaler. The planner
//! consults a placement-hint table before the dispatcher; any hidden
//! iteration-order or timing dependence in the re-plan path would show
//! up here as a trace diff.

use tps_cluster::{
    synthesize_jobs, Fleet, FleetConfig, FleetDispatcher, Job, JobMix, OutcomeCache, PlanSolver,
    PlannedDispatch, PlannerControl, TelemetryConfig, ThermalAwareDispatch,
};
use tps_units::Seconds;
use tps_workload::DiurnalDemand;

fn batch_jobs(count: usize, seed: u64) -> Vec<Job> {
    let demand = DiurnalDemand::new(0.1, 0.5, Seconds::new(600.0));
    synthesize_jobs(count, &demand, JobMix::default(), seed)
}

fn config(threads: usize) -> FleetConfig {
    let mut config = FleetConfig::new(2, 3);
    config.grid_pitch_mm = 3.0;
    config.threads = threads;
    config
}

fn planner(solver: PlanSolver) -> PlannerControl {
    PlannerControl::new(
        Seconds::new(20.0),
        Seconds::new(120.0),
        1,
        vec![35.0, 45.0, 70.0],
        300,
        solver,
    )
}

fn run_matrix(solver: PlanSolver, planned_dispatch: bool) {
    let jobs = batch_jobs(60, 7);
    let telemetry = TelemetryConfig {
        sample_interval: Seconds::new(15.0),
        capacity: 4096,
    };
    let mut outcomes = Vec::new();
    let mut csvs = Vec::new();
    for threads in [1, 2, 8] {
        for heap in [false, true] {
            let fleet = Fleet::new(config(threads));
            let cache = OutcomeCache::new();
            let mut control = planner(solver);
            let mut dispatcher: Box<dyn FleetDispatcher> = if planned_dispatch {
                Box::new(PlannedDispatch)
            } else {
                Box::new(ThermalAwareDispatch::default())
            };
            let result = if heap {
                fleet.simulate_with_heap_queue(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            } else {
                fleet.simulate_with(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            }
            .unwrap();
            outcomes.push(result.outcome);
            csvs.push(result.trace.expect("telemetry was on").to_csv());
        }
    }
    assert!(
        outcomes.iter().all(|o| o == &outcomes[0]),
        "planner outcome diverged across thread counts or queue backends"
    );
    assert!(
        csvs.iter().all(|c| c == &csvs[0]),
        "planner trace diverged across thread counts or queue backends"
    );
    assert!(csvs[0].lines().count() > 3, "{}", csvs[0]);
}

#[test]
fn lp_planner_is_byte_identical_across_threads_and_queue_backends() {
    run_matrix(PlanSolver::Lp, false);
}

#[test]
fn anneal_planner_is_byte_identical_across_threads_and_queue_backends() {
    run_matrix(PlanSolver::Anneal, false);
}

#[test]
fn planned_dispatch_under_planner_control_is_byte_identical() {
    run_matrix(PlanSolver::Lp, true);
}

/// The planner actually moves the set-point: with candidates below the
/// 70 °C default its trace departs from the static one, while the
/// energy never gets worse (the grid contains the do-nothing point).
#[test]
fn planner_moves_the_setpoint_and_never_loses_to_static() {
    let jobs = batch_jobs(60, 7);
    let cache = OutcomeCache::new();
    let fleet = Fleet::new(config(1));
    let static_outcome = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
        .unwrap();
    let mut control = planner(PlanSolver::Lp);
    let planned = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut control,
            None,
            &cache,
        )
        .unwrap();
    assert!(
        planned.outcome.cooling_energy.value() < static_outcome.cooling_energy.value(),
        "planner never engaged: {} vs {}",
        planned.outcome.cooling_energy.value(),
        static_outcome.cooling_energy.value()
    );
    assert!(planned.outcome.total_energy().value() <= static_outcome.total_energy().value());
    assert_eq!(planned.outcome.violations, static_outcome.violations);
}
