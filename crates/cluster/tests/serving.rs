//! End-to-end serving-mode scenarios: request-stream determinism across
//! warm-up thread counts and queue backends, the autoscale energy win
//! under the p99 SLO, and the batch-mode emission guarantees with the
//! serving machinery compiled in.

use tps_cluster::{
    synthesize_request_jobs, AutoscaleControl, Fleet, FleetConfig, OutcomeCache, StaticControl,
    TelemetryConfig, ThermalAwareDispatch,
};
use tps_units::Seconds;
use tps_workload::ServingDemand;

/// A 10-minute diurnal request cycle peaking at `peak` req/s with 2.5×
/// flash crowds, 2 s mean service time.
fn serving_jobs(count: usize, peak: f64, seed: u64) -> Vec<tps_cluster::Job> {
    let demand = ServingDemand::new(
        peak * 0.3,
        peak,
        Seconds::new(600.0),
        2.5,
        Seconds::new(60.0),
        Seconds::new(420.0),
        seed,
    );
    synthesize_request_jobs(count, &demand, Seconds::new(2.0), seed)
}

/// 2 racks × 3 servers in serving mode on a coarse grid.
fn serving_config(threads: usize) -> FleetConfig {
    let mut config = FleetConfig::new(2, 3);
    config.grid_pitch_mm = 3.0;
    config.threads = threads;
    config.serving = true;
    config
}

/// One-rack steps against an 8 s p99 SLO.
fn autoscaler() -> AutoscaleControl {
    AutoscaleControl::new(Seconds::new(10.0), 3, 3, 0.5, 0.1, Seconds::new(8.0))
}

#[test]
fn serving_trace_is_byte_identical_across_threads_and_queue_backends() {
    let jobs = serving_jobs(80, 1.0, 9);
    let telemetry = TelemetryConfig {
        sample_interval: Seconds::new(15.0),
        capacity: 4096,
    };
    let mut csvs = Vec::new();
    for threads in [1, 2, 8] {
        for heap in [false, true] {
            let fleet = Fleet::new(serving_config(threads));
            let cache = OutcomeCache::new();
            let mut control = autoscaler();
            let mut dispatcher = ThermalAwareDispatch::default();
            let result = if heap {
                fleet.simulate_with_heap_queue(
                    &jobs,
                    &mut dispatcher,
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            } else {
                fleet.simulate_with(
                    &jobs,
                    &mut dispatcher,
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            }
            .unwrap();
            csvs.push(result.trace.expect("telemetry was on").to_csv());
        }
    }
    assert!(
        csvs.iter().all(|c| c == &csvs[0]),
        "serving trace diverged across thread counts or queue backends"
    );
    // Serving mode appends the latency/capacity columns to the trace.
    let header = csvs[0].lines().next().unwrap();
    assert!(
        header.ends_with("active_servers,lat_p50_s,lat_p95_s,lat_p99_s"),
        "{header}"
    );
    assert!(csvs[0].lines().count() > 3, "{}", csvs[0]);
}

#[test]
fn autoscale_undercuts_static_provisioning_within_the_slo() {
    let jobs = serving_jobs(120, 1.0, 42);
    let cache = OutcomeCache::new();
    let fleet = Fleet::new(serving_config(1));
    let stat = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut StaticControl,
            None,
            &cache,
        )
        .unwrap()
        .outcome;
    let mut control = autoscaler();
    let slo = control.p99_slo();
    let auto = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut control,
            None,
            &cache,
        )
        .unwrap()
        .outcome;
    let s_stat = stat.serving.as_ref().expect("serving outcome");
    let s_auto = auto.serving.as_ref().expect("serving outcome");
    assert_eq!(s_stat.requests, jobs.len());
    assert_eq!(s_auto.requests, jobs.len());
    // Static control never resizes the fleet.
    assert_eq!(s_stat.mean_active_servers, 6.0);
    assert_eq!(
        (s_stat.min_active_servers, s_stat.max_active_servers),
        (6, 6)
    );
    // The autoscaler parks idle racks and still meets the latency SLO.
    assert!(
        s_auto.mean_active_servers < s_stat.mean_active_servers,
        "autoscaler never shrank: mean active {}",
        s_auto.mean_active_servers
    );
    assert!(
        s_auto.latency_p99.value() <= slo.value(),
        "p99 {} breaches the {} SLO",
        s_auto.latency_p99,
        slo
    );
    assert!(
        auto.total_energy().value() < stat.total_energy().value(),
        "autoscale {} vs static {}",
        auto.total_energy(),
        stat.total_energy()
    );
}

#[test]
fn batch_mode_emits_no_serving_columns_with_serving_compiled_in() {
    let jobs = serving_jobs(40, 1.0, 7);
    let mut config = serving_config(1);
    config.serving = false;
    let fleet = Fleet::new(config);
    let cache = OutcomeCache::new();
    let telemetry = TelemetryConfig {
        sample_interval: Seconds::new(15.0),
        capacity: 4096,
    };
    let result = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut StaticControl,
            Some(&telemetry),
            &cache,
        )
        .unwrap();
    assert!(result.outcome.serving.is_none());
    let csv = result.trace.expect("telemetry was on").to_csv();
    let header = csv.lines().next().unwrap();
    assert!(
        !header.contains("active_servers") && !header.contains("lat_p50_s"),
        "batch trace grew serving columns: {header}"
    );
}
