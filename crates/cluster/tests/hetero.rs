//! End-to-end heterogeneous-fleet scenarios: the catalog's determinism
//! guarantees and the class-aware dispatch ordering the CLI and sweep
//! layer rely on.

use tps_cluster::{
    synthesize_jobs, Fleet, FleetCatalog, FleetConfig, JobMix, OutcomeCache, RoundRobin,
    ServerClass, StaticControl, TelemetryConfig, ThermalAwareDispatch,
};
use tps_units::Seconds;
use tps_workload::DiurnalDemand;

/// The shipped mixed-pitch catalog, scaled for test speed: dense at the
/// fleet defaults, sparse on a coarser grid with 35 °C water; one rack of
/// each plus a slot-interleaved rack.
fn mixed_config() -> FleetConfig {
    let mut config = FleetConfig::new(3, 4);
    config.grid_pitch_mm = 3.0;
    config.catalog = FleetCatalog::new(vec![
        ServerClass::new("dense"),
        ServerClass::new("sparse").pitch(3.5).inlet(35.0),
    ])
    .assign(vec![vec![0], vec![1], vec![0, 1]]);
    config
}

fn diurnal_jobs(count: usize, seed: u64) -> Vec<tps_cluster::Job> {
    let demand = DiurnalDemand::new(0.15 * 0.2, 0.15, Seconds::new(600.0));
    synthesize_jobs(count, &demand, JobMix::default(), seed)
}

#[test]
fn mixed_class_trace_is_byte_identical_across_warmup_thread_counts() {
    // The heterogeneity determinism contract: warm-up enumerates
    // (class, bench, qos) triples across however many threads, and the
    // replay — trace CSV included — must not move by a byte.
    let jobs = diurnal_jobs(60, 9);
    let mut csvs = Vec::new();
    for threads in [1, 2, 8] {
        let mut config = mixed_config();
        config.threads = threads;
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        let telemetry = TelemetryConfig {
            sample_interval: Seconds::new(15.0),
            capacity: 4096,
        };
        let result = fleet
            .simulate_with(
                &jobs,
                &mut ThermalAwareDispatch::default(),
                &mut StaticControl,
                Some(&telemetry),
                &cache,
            )
            .unwrap();
        csvs.push(result.trace.expect("telemetry was on").to_csv());
    }
    assert_eq!(csvs[0], csvs[1]);
    assert_eq!(csvs[1], csvs[2]);
    // Heterogeneous traces carry the per-class columns.
    let header = csvs[0].lines().next().unwrap();
    assert!(header.contains("dense_running,dense_it_w"), "{header}");
    assert!(header.contains("sparse_running,sparse_it_w"), "{header}");
}

#[test]
fn mixed_class_outcomes_are_byte_identical_across_thread_counts() {
    let jobs = diurnal_jobs(40, 7);
    let mut outcomes = Vec::new();
    for threads in [1, 8] {
        let mut config = mixed_config();
        config.threads = threads;
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        outcomes.push(
            fleet
                .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
                .unwrap(),
        );
    }
    assert_eq!(outcomes[0], outcomes[1]);
    // The mixed rack really hosts both classes.
    assert!(outcomes[0].class_placements.iter().all(|&n| n > 0));
    assert_eq!(
        outcomes[0].class_placements.iter().sum::<usize>(),
        jobs.len()
    );
    assert_eq!(
        outcomes[0].class_it_energy.len(),
        outcomes[0].class_names.len()
    );
}

#[test]
fn thermal_aware_beats_round_robin_on_the_mixed_catalog() {
    // The shipped mixed_pitch_fleet.toml claim, pinned at the API level:
    // class-aware marginal-power ranking cuts cooling energy without
    // costing QoS versus class-blind striping.
    let jobs = diurnal_jobs(120, 42);
    let fleet = Fleet::new(mixed_config());
    let cache = OutcomeCache::new();
    let rr = fleet
        .simulate(&jobs, &mut RoundRobin::default(), &cache)
        .unwrap();
    let ta = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
        .unwrap();
    assert!(
        ta.cooling_energy.value() < rr.cooling_energy.value(),
        "thermal-aware cooling {} should undercut round-robin {}",
        ta.cooling_energy,
        rr.cooling_energy
    );
    assert!(ta.violations <= rr.violations);
    // Per-class accounting reconciles with the totals.
    for out in [&rr, &ta] {
        assert_eq!(out.class_violations.iter().sum::<usize>(), out.violations);
        assert_eq!(
            out.class_placements.iter().sum::<usize>(),
            out.placements.len()
        );
        let class_it: f64 = out.class_it_energy.iter().map(|e| e.value()).sum();
        // Active energy per class excludes the fleet-wide idle floor.
        assert!(class_it <= out.it_energy.value() + 1e-6);
        assert!(class_it > 0.0);
    }
}

#[test]
fn hundred_thousand_server_shape_stays_deterministic_across_threads() {
    // The kernel's scale structures (SoA server table, occupancy index,
    // calendar queue, group-representative dispatch) at the 100k-server
    // shape the bench trajectory pins, smoke-sized job stream: outcomes
    // must stay byte-identical across warm-up thread counts. `Debug`
    // prints floats at round-trip precision, so equal strings pin bits.
    let jobs = diurnal_jobs(150, 23);
    let mut outcomes = Vec::new();
    for threads in [1, 2, 8] {
        let mut config = FleetConfig::new(2500, 40);
        config.grid_pitch_mm = 3.0;
        config.threads = threads;
        config.catalog = FleetCatalog::new(vec![
            ServerClass::new("dense"),
            ServerClass::new("sparse").pitch(3.5).inlet(35.0),
        ])
        .assign(
            (0..2500)
                .map(|r| match r % 3 {
                    0 => vec![0],
                    1 => vec![1],
                    _ => vec![0, 1],
                })
                .collect(),
        );
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        let outcome = fleet
            .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
            .unwrap();
        assert_eq!(outcome.placements.len(), jobs.len());
        outcomes.push(format!("{outcome:?}"));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 threads");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 8 threads");
}
