//! Brute-force oracles for the planner's solver chain.
//!
//! Instances stay tiny (≤ 3 racks × ≤ 2 classes × ≤ 3 set-points ×
//! ≤ 5 jobs) so *every* joint assignment × set-point can be enumerated
//! against the real chiller curve. The solvers are then pinned:
//!
//! * the LP/branch-and-bound plan's PWL objective sits between the true
//!   optimum and the true optimum plus the linearization error — the
//!   bound the PWL upper envelope guarantees by construction,
//! * the simulated annealer never comes back worse than greedy (it
//!   starts from the greedy plan and keeps the best state seen),
//! * both respect rack capacity on every instance.
//!
//! Instances are proptest-randomized; `PROPTEST_CASES` scales the case
//! count (CI runs a reduced fast pass).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tps_cluster::plan::{
    objective_real, solve_anneal, solve_greedy, solve_lp, PlanInstance, PlanJob, PlanOption,
    PlanRack,
};
use tps_cooling::Chiller;
use tps_units::Celsius;

/// A randomized oracle-sized instance: small enough to enumerate, varied
/// enough to hit empty windows, idle racks, heterogeneous classes and
/// free-cooling set-points.
fn random_instance(seed: u64) -> PlanInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let racks = rng.gen_range(1..=3usize);
    let classes = rng.gen_range(1..=2usize);
    let jobs = rng.gen_range(0..=5usize);
    let mut inst = PlanInstance {
        jobs: (0..jobs)
            .map(|id| PlanJob {
                id,
                options: (0..classes)
                    .map(|_| PlanOption {
                        power_w: rng.gen_range(50.0..400.0),
                        heat_w: rng.gen_range(50.0..400.0),
                        water_c: rng.gen_range(20.0..60.0),
                        runtime_s: rng.gen_range(60.0..900.0),
                    })
                    .collect(),
            })
            .collect(),
        racks: (0..racks)
            .map(|_| PlanRack {
                base_heat_w: if rng.next_f64() < 0.5 {
                    0.0
                } else {
                    rng.gen_range(100.0..800.0)
                },
                base_supply_c: None,
                free: (0..classes).map(|_| rng.gen_range(0..=2usize)).collect(),
            })
            .collect(),
        setpoints_c: (0..rng.gen_range(1..=3usize))
            .map(|_| rng.gen_range(25.0..65.0))
            .collect(),
        chiller: Chiller::new(Celsius::new(rng.gen_range(25.0..50.0))),
        horizon_s: rng.gen_range(120.0..1200.0),
    };
    for rack in &mut inst.racks {
        if rack.base_heat_w > 0.0 {
            rack.base_supply_c = Some(rng.gen_range(25.0..55.0));
        }
    }
    // Guarantee feasibility: top up capacity until it covers the jobs.
    let mut capacity: usize = inst
        .racks
        .iter()
        .map(|r| r.free.iter().sum::<usize>())
        .sum();
    let mut r = 0;
    while capacity < inst.jobs.len() {
        inst.racks[r % racks].free[r % classes] += 1;
        capacity += 1;
        r += 1;
    }
    inst
}

/// The true optimum by exhaustive enumeration: every capacity-respecting
/// assignment of every job to every `(rack, class)` slot, under every
/// candidate set-point, priced on the *real* chiller curve.
fn brute_force_optimum(inst: &PlanInstance) -> f64 {
    let mut free: Vec<Vec<usize>> = inst.racks.iter().map(|r| r.free.clone()).collect();
    let mut assign: Vec<(u32, u32)> = Vec::with_capacity(inst.jobs.len());
    let mut best = f64::INFINITY;
    fn recurse(
        inst: &PlanInstance,
        job: usize,
        free: &mut Vec<Vec<usize>>,
        assign: &mut Vec<(u32, u32)>,
        best: &mut f64,
    ) {
        if job == inst.jobs.len() {
            for sp in 0..inst.setpoints_c.len() {
                *best = best.min(objective_real(inst, assign, sp));
            }
            return;
        }
        for r in 0..inst.racks.len() {
            for c in 0..inst.classes() {
                if free[r][c] == 0 {
                    continue;
                }
                free[r][c] -= 1;
                assign.push((r as u32, c as u32));
                recurse(inst, job + 1, free, assign, best);
                assign.pop();
                free[r][c] += 1;
            }
        }
    }
    recurse(inst, 0, &mut free, &mut assign, &mut best);
    best
}

/// How far above the true optimum the PWL objective is allowed to land:
/// the worst chord error of any candidate set-point's model, times the
/// largest heat any assignment can put on the racks, over the horizon.
fn linearization_tolerance(inst: &PlanInstance) -> f64 {
    let max_err = inst
        .pwl_models()
        .iter()
        .map(|m| m.max_error())
        .fold(0.0, f64::max);
    let base: f64 = inst.racks.iter().map(|r| r.base_heat_w).sum();
    let jobs: f64 = inst
        .jobs
        .iter()
        .map(|j| j.options.iter().map(|o| o.heat_w).fold(0.0, f64::max))
        .sum();
    max_err * (base + jobs) * inst.horizon_s
}

fn assert_respects_capacity(inst: &PlanInstance, assign: &[(u32, u32)]) {
    let mut free: Vec<Vec<usize>> = inst.racks.iter().map(|r| r.free.clone()).collect();
    for &(r, c) in assign {
        assert!(
            free[r as usize][c as usize] > 0,
            "slot ({r}, {c}) oversubscribed"
        );
        free[r as usize][c as usize] -= 1;
    }
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The tentpole oracle: the LP plan is certified and its PWL
    /// objective brackets the enumerated true optimum to within the
    /// linearization error.
    #[test]
    fn lp_matches_the_brute_force_oracle(seed in 0u64..1_000_000) {
        let inst = random_instance(seed);
        inst.validate();
        let opt_real = brute_force_optimum(&inst);
        let plan = solve_lp(&inst);
        assert_respects_capacity(&inst, &plan.assign);
        prop_assert!(plan.certified, "≤ 5 jobs must certify (seed {seed})");
        let tol = linearization_tolerance(&inst);
        // Upper envelope: the PWL price of any plan is ≥ its real price,
        // so the PWL optimum cannot dip below the real optimum…
        prop_assert!(
            plan.objective_j >= opt_real - 1e-9 * opt_real.abs().max(1.0),
            "PWL optimum {} undercuts the real optimum {} (seed {seed})",
            plan.objective_j,
            opt_real
        );
        // …and knot-exactness keeps it within the chord error of it.
        prop_assert!(
            plan.objective_j <= opt_real + tol + 1e-9 * opt_real.abs().max(1.0),
            "PWL optimum {} exceeds real optimum {} + tolerance {} (seed {seed})",
            plan.objective_j,
            opt_real,
            tol
        );
        // The plan the solver hands back is itself near-optimal when
        // priced on the real curve.
        let real = objective_real(&inst, &plan.assign, plan.setpoint);
        prop_assert!(
            real <= opt_real + tol + 1e-9 * opt_real.abs().max(1.0),
            "chosen plan's real cost {} is further than {} from the optimum {} (seed {seed})",
            real,
            tol,
            opt_real
        );
    }

    /// The annealer starts from greedy and keeps the best state seen, so
    /// it can never come back worse — and its plan stays feasible.
    #[test]
    fn annealer_never_trails_greedy(seed in 0u64..1_000_000) {
        let inst = random_instance(seed);
        let greedy = solve_greedy(&inst);
        assert_respects_capacity(&inst, &greedy.assign);
        let annealed = solve_anneal(&inst, 300, seed);
        assert_respects_capacity(&inst, &annealed.assign);
        prop_assert!(
            annealed.objective_j <= greedy.objective_j + 1e-9 * greedy.objective_j.abs().max(1.0),
            "annealed {} worse than greedy {} (seed {seed})",
            annealed.objective_j,
            greedy.objective_j
        );
    }
}

/// A fixed instance where the answer is computable by hand: one rack, one
/// class, one job, two set-points of which the colder free-cools the
/// job's 45 °C water tolerance. The planner must pick the free-cooling
/// set-point and match the closed-form objective exactly (the PWL model
/// is exact in the free-cooling regime).
#[test]
fn hand_computed_instance_is_reproduced_exactly() {
    let inst = PlanInstance {
        jobs: vec![PlanJob {
            id: 0,
            options: vec![PlanOption {
                power_w: 200.0,
                heat_w: 180.0,
                water_c: 45.0,
                runtime_s: 300.0,
            }],
        }],
        racks: vec![PlanRack {
            base_heat_w: 0.0,
            base_supply_c: None,
            free: vec![1],
        }],
        setpoints_c: vec![35.0, 70.0],
        chiller: Chiller::new(Celsius::new(70.0)),
        horizon_s: 600.0,
    };
    let plan = solve_lp(&inst);
    assert_eq!(plan.setpoint, 0, "35 °C free-cools the 45 °C supply");
    assert!(plan.certified);
    // IT energy + heat / max COP over the horizon.
    let chiller = inst.chiller.with_ambient(Celsius::new(35.0));
    let expected = 200.0 * 300.0 + 180.0 / chiller.cop(Celsius::new(45.0)) * 600.0;
    assert!(
        (plan.objective_j - expected).abs() < 1e-6,
        "{} vs {}",
        plan.objective_j,
        expected
    );
    assert_eq!(plan.objective_j, brute_force_optimum(&inst));
}
