//! Property tests on the kernel's committed-load bookkeeping:
//! interleaved `add`/`expire_until` must never leave negative rack heat,
//! stale occupancy or a wrong shared-supply cap, no matter the order of
//! magnitudes or expiry times — the invariants every dispatch decision
//! and energy window depends on.

use proptest::prelude::*;
use tps_cluster::{RackLoads, SteadyState};
use tps_units::{Celsius, Seconds, Watts};

fn state(heat: f64, water: f64) -> SteadyState {
    SteadyState {
        package_power: Watts::new(heat),
        heat: Watts::new(heat),
        max_water_temp: Celsius::new(water),
        normalized_time: 1.0,
        n_cores: 8,
        die_max: Celsius::new(70.0),
    }
}

/// A tiny deterministic generator for the interleaving: SplitMix64, the
/// same mix the workload layer uses.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(seed: u64, i: u64) -> f64 {
    (mix(seed, i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

proptest! {
    /// Drive `RackLoads` through a random interleaving of commits and
    /// expiries (including ties, out-of-order expiry times and heats
    /// spanning five orders of magnitude) and check it against a naive
    /// model that rescans the full placement list every step.
    #[test]
    fn interleaved_add_expire_matches_a_naive_rescan(
        racks in 1usize..5,
        ops in 1usize..60,
        seed in 0u64..500,
        magnitude in 0u32..3,
    ) {
        let mut loads = RackLoads::new(racks);
        // Naive model: (rack, heat, water, end) of every commit, kept
        // forever, filtered on demand.
        let mut naive: Vec<(usize, f64, f64, f64)> = Vec::new();
        let mut now = 0.0f64;
        for i in 0..ops as u64 {
            let r = unit(seed, 4 * i);
            if r < 0.6 || naive.is_empty() {
                // Commit to a random rack until a random end ≥ now.
                let rack = (unit(seed, 4 * i + 1) * racks as f64) as usize % racks;
                // Heats from milliwatts to hundreds of watts stress the
                // float accumulation.
                let heat = (0.001 + unit(seed, 4 * i + 2) * 200.0)
                    * 10f64.powi(-(magnitude as i32));
                let water = 40.0 + unit(seed, 4 * i + 3) * 45.0;
                let end = now + unit(seed, 4 * i + 2) * 50.0;
                loads.add(rack, &state(heat, water), Seconds::new(end));
                naive.push((rack, heat, water, end));
            } else {
                // Advance time (sometimes replaying an already-passed
                // instant: expire_until must be idempotent).
                let dt = unit(seed, 4 * i + 1) * 40.0 - 5.0;
                now = (now + dt).max(0.0);
                loads.expire_until(Seconds::new(now));
                naive.retain(|&(_, _, _, end)| end > now);
            }

            // Invariants after every step.
            loads.expire_until(Seconds::new(now));
            naive.retain(|&(_, _, _, end)| end > now);
            let views = loads.views();
            prop_assert_eq!(views.len(), racks);
            prop_assert_eq!(
                loads.total_committed(),
                naive.len(),
                "stale occupancy at step {}", i
            );
            for (rk, view) in views.iter().enumerate() {
                let live: Vec<&(usize, f64, f64, f64)> =
                    naive.iter().filter(|p| p.0 == rk).collect();
                // Occupancy matches exactly.
                prop_assert_eq!(view.committed, live.len());
                // Heat is never negative, and matches the naive sum far
                // beyond float-residue scale.
                prop_assert!(view.heat.value() >= 0.0, "negative rack heat");
                let expected: f64 = live.iter().map(|p| p.1).sum();
                prop_assert!(
                    (view.heat.value() - expected).abs() <= 1e-9 * expected.max(1.0),
                    "rack {} heat {} vs naive {}", rk, view.heat.value(), expected
                );
                // A drained rack is pinned to *exact* zero.
                if live.is_empty() {
                    prop_assert_eq!(view.heat.value(), 0.0);
                    prop_assert!(view.supply.is_none());
                } else {
                    // The shared supply is the coldest live demand,
                    // bit-exact (the multiset stores raw bits).
                    let coldest = live
                        .iter()
                        .map(|p| p.2)
                        .fold(f64::INFINITY, f64::min);
                    prop_assert_eq!(
                        view.supply.map(|c| c.value().to_bits()),
                        Some(coldest.to_bits())
                    );
                }
            }
        }
    }

    /// Expiring everything always returns every rack to the exact-zero
    /// idle state, regardless of the commit pattern.
    #[test]
    fn full_expiry_returns_to_pristine_state(
        racks in 1usize..4,
        commits in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut loads = RackLoads::new(racks);
        let mut horizon = 0.0f64;
        for i in 0..commits as u64 {
            let rack = (unit(seed, 3 * i) * racks as f64) as usize % racks;
            let heat = 0.01 + unit(seed, 3 * i + 1) * 300.0;
            let end = unit(seed, 3 * i + 2) * 100.0;
            horizon = horizon.max(end);
            loads.add(rack, &state(heat, 60.0), Seconds::new(end));
        }
        loads.expire_until(Seconds::new(horizon));
        prop_assert_eq!(loads.total_committed(), 0);
        for view in loads.views() {
            prop_assert_eq!(view.heat.value(), 0.0);
            prop_assert_eq!(view.committed, 0);
            prop_assert!(view.supply.is_none());
        }
    }
    /// A heterogeneous fleet commits per-class steady states — the same
    /// job carries a different (heat, water) on each hardware bin. Any
    /// class mix must conserve committed heat across interleaved
    /// `add`/`expire_until`: the rack totals always equal the sum of the
    /// live placements' class heats, and full expiry drains to exact
    /// zero.
    #[test]
    fn any_class_mix_conserves_committed_heat(
        racks in 1usize..4,
        n_classes in 1usize..5,
        ops in 1usize..60,
        seed in 0u64..500,
    ) {
        // A fixed catalog of per-class demands, as the cache would hand
        // the kernel: distinct heats and tolerable-water caps per class.
        let classes: Vec<(f64, f64)> = (0..n_classes as u64)
            .map(|c| (
                20.0 + unit(seed ^ 0xc1a5, c) * 150.0,
                45.0 + unit(seed ^ 0x7a7e, c) * 35.0,
            ))
            .collect();
        let mut loads = RackLoads::new(racks);
        // Naive model: (rack, class, end) of every commit.
        let mut naive: Vec<(usize, usize, f64)> = Vec::new();
        let mut now = 0.0f64;
        for i in 0..ops as u64 {
            if unit(seed, 5 * i) < 0.65 || naive.is_empty() {
                let rack = (unit(seed, 5 * i + 1) * racks as f64) as usize % racks;
                let class = (unit(seed, 5 * i + 2) * n_classes as f64) as usize % n_classes;
                let (heat, water) = classes[class];
                let end = now + unit(seed, 5 * i + 3) * 50.0;
                loads.add(rack, &state(heat, water), Seconds::new(end));
                naive.push((rack, class, end));
            } else {
                now += unit(seed, 5 * i + 4) * 40.0;
                loads.expire_until(Seconds::new(now));
                naive.retain(|&(_, _, end)| end > now);
            }

            // Committed heat equals the naive per-class sum on every rack.
            let views = loads.views();
            for (rk, view) in views.iter().enumerate() {
                let expected: f64 = naive
                    .iter()
                    .filter(|p| p.0 == rk)
                    .map(|p| classes[p.1].0)
                    .sum();
                prop_assert!(
                    (view.heat.value() - expected).abs() <= 1e-9 * expected.max(1.0),
                    "rack {} heat {} vs per-class sum {}", rk, view.heat.value(), expected
                );
                // The supply cap is the coldest live class on the rack.
                let coldest = naive
                    .iter()
                    .filter(|p| p.0 == rk)
                    .map(|p| classes[p.1].1)
                    .fold(f64::INFINITY, f64::min);
                if coldest.is_finite() {
                    prop_assert_eq!(
                        view.supply.map(|c| c.value().to_bits()),
                        Some(coldest.to_bits())
                    );
                } else {
                    prop_assert!(view.supply.is_none());
                    prop_assert_eq!(view.heat.value(), 0.0);
                }
            }
        }

        // Drain everything: exact zero no matter the class mix.
        let horizon = naive.iter().map(|p| p.2).fold(now, f64::max);
        loads.expire_until(Seconds::new(horizon));
        prop_assert_eq!(loads.total_committed(), 0);
        for view in loads.views() {
            prop_assert_eq!(view.heat.value(), 0.0);
            prop_assert!(view.supply.is_none());
        }
    }
}

proptest! {
    /// Drive the kernel's dispatch index (occupied set, idle groups,
    /// stamps, score memo) and the legacy full-fleet rescore through the
    /// same random interleaving of placements, expiries and set-point
    /// changes: every placement decision must be bit-identical. The
    /// incremental dispatcher keeps its memo warm across the whole
    /// interleaving while the rescore dispatcher starts cold each call —
    /// any stale cache entry or index drift shows up as a diverged pick.
    #[test]
    fn indexed_ranking_matches_a_full_rescore_after_any_interleaving(
        seed in 0u64..200,
        ops in 1usize..80,
    ) {
        use tps_cluster::{
            ClassDemand, CoolestRackFirst, FleetDispatcher, FleetIndex, FleetView, Job,
            JobDemand, ServerTable, ThermalAwareDispatch,
        };
        use tps_cooling::Chiller;
        use tps_workload::{Benchmark, QosClass};

        // Fleet shape: racks {0,1} host class 0 only, racks {2,3} host
        // classes {0,1} — two rack groups, 2 servers per rack.
        let group_classes = vec![vec![0usize], vec![0, 1]];
        let mut servers = ServerTable::new(vec![0, 0, 0, 0, 0, 1, 0, 1], 2);
        let mut loads = tps_cluster::RackLoads::with_groups(4, vec![0, 0, 1, 1], 2);
        let mut chiller = Chiller::new(Celsius::new(60.0));
        let mut chiller_epoch = 0u64;
        let mut warm = ThermalAwareDispatch::default();
        warm.begin_run();
        let job = Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        };
        // A demand signature names a fixed pair of steady states (the
        // memo caches per-signature scores); only the job-specific
        // runtime and wait budget vary per arrival.
        let sig_states: Vec<[SteadyState; 2]> = (0..3u64)
            .map(|s| {
                let heat = 60.0 + 40.0 * s as f64;
                let water = 50.0 + 9.0 * s as f64;
                [state(heat, water), state(heat * 0.9, water + 6.0)]
            })
            .collect();
        let mut now = 0.0f64;
        for i in 0..ops as u64 {
            let r = mix(seed, i);
            match r % 8 {
                0 => {
                    now += unit(seed, 3 * i) * 40.0;
                    loads.expire_until(Seconds::new(now));
                }
                1 => {
                    chiller = chiller
                        .with_ambient(Celsius::new(40.0 + unit(seed, 3 * i) * 25.0));
                    chiller_epoch += 1;
                }
                _ => {
                    let sig = ((r >> 8) % 3) as usize;
                    let runtime = 10.0 + unit(seed, 3 * i + 1) * 50.0;
                    let budget = unit(seed, 3 * i + 2) * 30.0;
                    let classes: Vec<ClassDemand> = sig_states[sig]
                        .iter()
                        .map(|s| ClassDemand {
                            state: *s,
                            runtime: Seconds::new(runtime),
                            wait_budget: Seconds::new(budget),
                        })
                        .collect();
                    let demand = JobDemand { job: &job, classes: &classes, sig: sig as u32 };
                    let indexed = FleetView {
            halls: None,
                        now: Seconds::new(now),
                        racks: loads.view_slice(),
                        servers: &servers,
                        chiller: &chiller,
                        chiller_epoch,
                        index: Some(FleetIndex {
                            occupied: loads.occupied_racks(),
                            idle_min: loads.idle_group_mins(),
                            group_of: loads.rack_groups(),
                            group_classes: &group_classes,
                            stamps: loads.stamps(),
                        }),
                    };
                    let scan = FleetView { index: None, ..indexed };
                    let chosen = warm.place(&demand, &indexed);
                    prop_assert_eq!(
                        chosen,
                        ThermalAwareDispatch::default().place(&demand, &scan),
                        "thermal pick diverged at op {} (sig {})", i, sig
                    );
                    prop_assert_eq!(
                        CoolestRackFirst.place(&demand, &indexed),
                        CoolestRackFirst.place(&demand, &scan),
                        "coolest pick diverged at op {}", i
                    );
                    // Commit exactly like the kernel: the fleet evolves
                    // along the (verified) incremental decision.
                    let class = servers.class_of(chosen);
                    let cd = classes[class];
                    let start = now.max(servers.free_at(chosen).value());
                    let end = start + cd.runtime.value();
                    let rack = servers.rack_of(chosen);
                    loads.add(rack, &cd.state, Seconds::new(end));
                    servers.set_free_at(chosen, Seconds::new(end));
                }
            }
        }
    }
}

proptest! {
    /// Drive a sharded hall partition and the sequential single-
    /// `RackLoads` kernel through the same random interleaving of
    /// placements, expiries and set-point changes: the hall-candidate
    /// reduction must pick the exact server the global `place_scan`
    /// oracle picks at every arrival, and the hall views composed back
    /// into rack order must equal the global views bit for bit. The
    /// sharded dispatcher keeps its memo and COP caches warm across the
    /// whole interleaving while the oracle starts cold each call, so any
    /// stale hall cache or drifted reduction key shows up as a diverged
    /// pick.
    #[test]
    fn hall_reduction_matches_the_global_scan_oracle(
        seed in 0u64..200,
        ops in 1usize..80,
        shards in 1usize..5,
    ) {
        use tps_cluster::{
            ClassDemand, CoolestRackFirst, FleetDispatcher, FleetHalls, FleetView, HallLoads,
            Job, JobDemand, ServerTable, ThermalAwareDispatch,
        };
        use tps_cooling::Chiller;
        use tps_workload::{Benchmark, QosClass};

        // Same fleet shape as the indexed test: racks {0,1} host class 0
        // only, racks {2,3} host classes {0,1} — two rack groups, 2
        // servers per rack. `shards` ranges over every partition of the 4
        // racks, including uneven ones.
        let group_classes = vec![vec![0usize], vec![0, 1]];
        let mut servers = ServerTable::new(vec![0, 0, 0, 0, 0, 1, 0, 1], 2);
        let mut halls = HallLoads::new(4, vec![0, 0, 1, 1], 2, shards);
        let mut global = RackLoads::with_groups(4, vec![0, 0, 1, 1], 2);
        let mut chiller = Chiller::new(Celsius::new(60.0));
        let mut chiller_epoch = 0u64;
        let mut warm = ThermalAwareDispatch::default();
        warm.begin_run();
        let job = Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        };
        let sig_states: Vec<[SteadyState; 2]> = (0..3u64)
            .map(|s| {
                let heat = 60.0 + 40.0 * s as f64;
                let water = 50.0 + 9.0 * s as f64;
                [state(heat, water), state(heat * 0.9, water + 6.0)]
            })
            .collect();
        let mut now = 0.0f64;
        for i in 0..ops as u64 {
            let r = mix(seed, i);
            match r % 8 {
                0 => {
                    now += unit(seed, 3 * i) * 40.0;
                    halls.expire_until(Seconds::new(now));
                    global.expire_until(Seconds::new(now));
                }
                1 => {
                    chiller = chiller
                        .with_ambient(Celsius::new(40.0 + unit(seed, 3 * i) * 25.0));
                    chiller_epoch += 1;
                }
                _ => {
                    let sig = ((r >> 8) % 3) as usize;
                    let runtime = 10.0 + unit(seed, 3 * i + 1) * 50.0;
                    let budget = unit(seed, 3 * i + 2) * 30.0;
                    let classes: Vec<ClassDemand> = sig_states[sig]
                        .iter()
                        .map(|s| ClassDemand {
                            state: *s,
                            runtime: Seconds::new(runtime),
                            wait_budget: Seconds::new(budget),
                        })
                        .collect();
                    let demand = JobDemand { job: &job, classes: &classes, sig: sig as u32 };
                    let hall_view = FleetView {
                        now: Seconds::new(now),
                        racks: &[],
                        servers: &servers,
                        chiller: &chiller,
                        chiller_epoch,
                        index: None,
                        halls: Some(FleetHalls {
                            parts: halls.parts(),
                            bounds: halls.bounds(),
                            hall_of: halls.hall_of(),
                            group_classes: &group_classes,
                        }),
                    };
                    let scan_view = FleetView {
                        now: Seconds::new(now),
                        racks: global.view_slice(),
                        servers: &servers,
                        chiller: &chiller,
                        chiller_epoch,
                        index: None,
                        halls: None,
                    };
                    let chosen = warm.place(&demand, &hall_view);
                    prop_assert_eq!(
                        chosen,
                        ThermalAwareDispatch::default().place(&demand, &scan_view),
                        "thermal hall pick diverged at op {} (sig {}, {} shards)",
                        i, sig, shards
                    );
                    prop_assert_eq!(
                        CoolestRackFirst.place(&demand, &hall_view),
                        CoolestRackFirst.place(&demand, &scan_view),
                        "coolest hall pick diverged at op {} ({} shards)", i, shards
                    );
                    // Commit the (verified) pick to both kernels, exactly
                    // as the event loop would.
                    let class = servers.class_of(chosen);
                    let cd = classes[class];
                    let start = now.max(servers.free_at(chosen).value());
                    let end = start + cd.runtime.value();
                    let rack = servers.rack_of(chosen);
                    halls.add(rack, &cd.state, Seconds::new(end));
                    global.add(rack, &cd.state, Seconds::new(end));
                    servers.set_free_at(chosen, Seconds::new(end));
                }
            }

            // The halls composed in rack order are the global kernel's
            // state, bit for bit, after every step.
            prop_assert_eq!(halls.total_committed(), global.total_committed());
            let mut composed = Vec::new();
            halls.views_into(&mut composed);
            for (rk, (h, g)) in composed.iter().zip(global.view_slice()).enumerate() {
                prop_assert_eq!(
                    h.heat.value().to_bits(),
                    g.heat.value().to_bits(),
                    "rack {} heat diverged at op {}", rk, i
                );
                prop_assert_eq!(h.committed, g.committed, "rack {} occupancy", rk);
                prop_assert_eq!(
                    h.supply.map(|c| c.value().to_bits()),
                    g.supply.map(|c| c.value().to_bits()),
                    "rack {} supply diverged at op {}", rk, i
                );
            }
        }
    }
}
