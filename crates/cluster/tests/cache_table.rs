//! The two-tier cache's contract, end to end: the frozen dense
//! [`SolveTable`] must replay the striped-map oracle bit for bit under
//! any solve/publish interleaving, the kernel must produce byte-identical
//! outcomes and traces on either tier at any shard count, and a
//! steady-state replay on a covering table must acquire **zero** cache
//! locks.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tps_cluster::{
    synthesize_jobs, ClassSolve, CoolestRackFirst, Fleet, FleetConfig, FleetDispatcher, JobMix,
    OutcomeCache, PolicyId, RoundRobin, StaticControl, SteadyState, TelemetryConfig,
    ThermalAwareDispatch,
};
use tps_core::{MinPowerSelector, Server, T_CASE_MAX};
use tps_thermosyphon::OperatingPoint;
use tps_units::{Celsius, Seconds};
use tps_workload::{Benchmark, DiurnalDemand, QosClass};

/// Collapses a [`SteadyState`] to raw bits so "equal" means *bit*-equal —
/// a table that perturbs even the last mantissa bit of any field fails.
fn bits(s: &SteadyState) -> [u64; 6] {
    [
        s.package_power.value().to_bits(),
        s.heat.value().to_bits(),
        s.max_water_temp.value().to_bits(),
        s.normalized_time.to_bits(),
        u64::from(s.n_cores),
        s.die_max.value().to_bits(),
    ]
}

/// SplitMix64, the same mix the workload layer uses — drives the
/// interleaving deterministically from a proptest-drawn seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Drive one cache through a random interleaving of on-demand solves
    /// and mid-run republications, mirroring every solved value into a
    /// plain `BTreeMap` oracle. After every publication, each oracle key
    /// must read back from the dense table bit for bit, absent keys must
    /// fall through to `None`, and earlier epochs — still held by their
    /// `Arc`s — must not have moved.
    #[test]
    fn table_replays_the_oracle_bit_for_bit_across_republication(
        seed in 0u64..1000,
        ops in 4usize..24,
        inlet_step in 1u32..4,
    ) {
        // Two classes with *distinct* inlets (one off the paper design
        // point), crossed with distinct policies: exercises the
        // (policy, inlet_milli) solve-slot axis, not just class/bench/qos.
        let hot = Server::xeon(3.0).with_operating_point(
            OperatingPoint::paper().with_inlet(Celsius::new(30.0 + 2.5 * f64::from(inlet_step))),
        );
        let base = Server::xeon(3.0);
        let classes = [
            ClassSolve { id: 0, server: &base, policy: PolicyId::Proposed },
            ClassSolve { id: 1, server: &hot, policy: PolicyId::Coskun },
        ];
        let benches = [Benchmark::X264, Benchmark::Canneal, Benchmark::Dedup];
        let qoses = [QosClass::OneX, QosClass::TwoX, QosClass::ThreeX];

        let cache = OutcomeCache::new();
        let mut oracle: BTreeMap<(usize, Benchmark, QosClass), SteadyState> = BTreeMap::new();
        let mut epochs = Vec::new();
        for i in 0..ops as u64 {
            let r = mix(seed, i);
            if r % 4 == 0 {
                // Republish mid-run: freeze whatever the stripes hold now.
                epochs.push(cache.publish());
            } else {
                let ci = (r as usize / 4) % classes.len();
                let b = benches[(r as usize / 8) % benches.len()];
                let q = qoses[(r as usize / 32) % qoses.len()];
                let solved = cache
                    .get_or_solve(&classes[ci], b, q, &MinPowerSelector, T_CASE_MAX)
                    .unwrap();
                if let Some(prev) = oracle.insert((ci, b, q), solved) {
                    // Replays of one key are themselves bit-stable.
                    prop_assert_eq!(bits(&prev), bits(&solved));
                }
            }

            // The latest publication replays the oracle exactly — for the
            // keys it existed to see; later solves stay invisible to it.
            if let Some(table) = epochs.last() {
                for (&(ci, b, q), want) in &oracle {
                    if let Some(got) = table.lookup(&classes[ci], b, q) {
                        prop_assert_eq!(bits(&got), bits(want));
                    }
                }
            }
        }

        // A final publication covers everything ever solved, bit for bit…
        let last = cache.publish();
        prop_assert_eq!(last.len(), oracle.len());
        for (&(ci, b, q), want) in &oracle {
            let got = last
                .lookup(&classes[ci], b, q)
                .expect("every solved key is frozen into the final epoch");
            prop_assert_eq!(bits(&got), bits(want));
        }
        // …never-solved keys fall through instead of aliasing…
        for ci in 0..classes.len() {
            for &b in &benches {
                for &q in &qoses {
                    if !oracle.contains_key(&(ci, b, q)) {
                        prop_assert!(last.lookup(&classes[ci], b, q).is_none());
                    }
                }
            }
        }
        // …and every earlier epoch is immutable: still the bits the
        // oracle held at *its* publication (a subset of the final state).
        for table in &epochs {
            prop_assert!(table.epoch() < last.epoch() || table.len() == last.len());
            for (&(ci, b, q), want) in &oracle {
                if let Some(got) = table.lookup(&classes[ci], b, q) {
                    prop_assert_eq!(bits(&got), bits(want));
                }
            }
        }
    }
}

fn fleet(shards: usize, solve_table: bool) -> Fleet {
    let mut config = FleetConfig::new(8, 4);
    config.grid_pitch_mm = 3.0;
    config.shards = shards;
    config.solve_table = solve_table;
    Fleet::new(config)
}

fn jobs() -> Vec<tps_cluster::Job> {
    let demand = DiurnalDemand::new(0.18 * 0.2, 0.18, Seconds::new(600.0));
    synthesize_jobs(160, &demand, JobMix::default(), 42)
}

/// One full run with telemetry: `(outcome, trace CSV bytes)` — the whole
/// byte-determinism surface.
fn run(fleet: &Fleet, dispatcher: &mut dyn FleetDispatcher) -> (tps_cluster::FleetOutcome, String) {
    let cache = OutcomeCache::new();
    let result = fleet
        .simulate_with(
            &jobs(),
            dispatcher,
            &mut StaticControl,
            Some(&TelemetryConfig::default()),
            &cache,
        )
        .unwrap();
    (
        result.outcome,
        result.trace.expect("telemetry was on").to_csv(),
    )
}

/// The determinism matrix: dense-table path vs striped-map oracle path,
/// at 1 and 8 shards, under all three dispatchers — every combination
/// must agree on outcome *and* trace CSV, byte for byte.
#[test]
fn table_and_oracle_paths_agree_across_shards_and_dispatchers() {
    let mk: [(&str, fn() -> Box<dyn FleetDispatcher>); 3] = [
        ("round-robin", || Box::<RoundRobin>::default()),
        ("coolest-rack-first", || Box::new(CoolestRackFirst)),
        ("thermal-aware", || Box::<ThermalAwareDispatch>::default()),
    ];
    for (name, dispatcher) in mk {
        let (base_out, base_csv) = run(&fleet(1, true), dispatcher().as_mut());
        for shards in [1usize, 8] {
            for solve_table in [true, false] {
                let (out, csv) = run(&fleet(shards, solve_table), dispatcher().as_mut());
                assert_eq!(
                    out, base_out,
                    "{name}: outcome diverged at shards={shards} solve_table={solve_table}"
                );
                assert_eq!(
                    csv, base_csv,
                    "{name}: trace diverged at shards={shards} solve_table={solve_table}"
                );
            }
        }
    }
}

/// A steady-state replay — second run, same cache, covering table — must
/// resolve every demand state lock-free: zero lock acquisitions, zero
/// miss solves, all table hits, identical outcome.
#[test]
fn steady_state_replay_acquires_zero_cache_locks() {
    let fleet = fleet(1, true);
    let cache = OutcomeCache::new();
    let jobs = jobs();
    let mut dispatcher = ThermalAwareDispatch::default();
    let first = fleet
        .simulate_with(&jobs, &mut dispatcher, &mut StaticControl, None, &cache)
        .unwrap();
    let second = fleet
        .simulate_with(&jobs, &mut dispatcher, &mut StaticControl, None, &cache)
        .unwrap();
    assert_eq!(second.outcome, first.outcome);
    assert!(second.stats.table_hits > 0);
    assert_eq!(
        second.stats.miss_solves, 0,
        "covering table must absorb every lookup"
    );
    assert_eq!(
        second.stats.lock_acquisitions, 0,
        "steady-state replay must touch no stripe or publication lock"
    );
}

/// Dispatchers that gain nothing from hall fan-out (their placement scan
/// is not per-rack work the halls can split) must be clamped to one hall
/// no matter what `shards` asks for; the thermal-aware scan still fans
/// out.
#[test]
fn shards_collapse_to_one_hall_for_non_fanout_dispatchers() {
    let jobs = jobs();
    let mk: [(&str, fn() -> Box<dyn FleetDispatcher>); 2] = [
        ("round-robin", || Box::<RoundRobin>::default()),
        ("coolest-rack-first", || Box::new(CoolestRackFirst)),
    ];
    for (name, dispatcher) in mk {
        let cache = OutcomeCache::new();
        let result = fleet(8, true)
            .simulate_with(
                &jobs,
                dispatcher().as_mut(),
                &mut StaticControl,
                None,
                &cache,
            )
            .unwrap();
        assert_eq!(
            result.stats.halls.len(),
            1,
            "{name} wants no fan-out: 8 requested shards must clamp to one hall"
        );
    }
    let cache = OutcomeCache::new();
    let result = fleet(8, true)
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut StaticControl,
            None,
            &cache,
        )
        .unwrap();
    assert_eq!(
        result.stats.halls.len(),
        8,
        "thermal-aware keeps its fan-out"
    );
}
