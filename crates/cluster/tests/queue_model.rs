//! Model-based property tests for the calendar event queue: any
//! interleaving of pushes and pops must produce exactly the pop order of
//! a naive sorted-`Vec` model of the kernel's `(time, class, seq)` key —
//! including same-instant ties, all-events-at-one-time degeneracy and
//! far-future times that ride the overflow list.

use proptest::prelude::*;
use tps_cluster::{CalendarQueue, Event, EventQueue, KernelQueue};
use tps_units::{Celsius, Seconds};

/// SplitMix64, the same deterministic mix the workload layer uses.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(seed: u64, i: u64) -> f64 {
    (mix(seed, i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn event_for(r: u64, i: u64) -> Event {
    match r % 5 {
        0 => Event::JobArrival(i as usize),
        1 => Event::JobCompletion {
            job: i as usize,
            server: (r % 7) as usize,
        },
        2 => Event::ControlTick,
        3 => Event::TelemetrySample,
        _ => Event::SetpointChange(Celsius::new(35.0 + (r % 20) as f64)),
    }
}

/// The naive model: every pending event with the exact key the kernel
/// queues order by, popped by a full min-scan.
#[derive(Default)]
struct SortedVecModel {
    pending: Vec<((u64, u8, u64), Seconds, Event)>,
    seq: u64,
}

impl SortedVecModel {
    fn push(&mut self, time: Seconds, event: Event) {
        // The class component mirrors the kernel's same-instant ordering:
        // completions < set-points < ticks < samples < arrivals.
        let class = match event {
            Event::JobCompletion { .. } => 0u8,
            Event::SetpointChange(_) => 1,
            Event::ControlTick => 2,
            Event::TelemetrySample => 3,
            Event::JobArrival(_) => 4,
        };
        self.pending
            .push(((time.value().to_bits(), class, self.seq), time, event));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Seconds, Event)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (key, _, _))| *key)?
            .0;
        let (_, t, e) = self.pending.remove(best);
        Some((t, e))
    }
}

proptest! {
    /// Random interleavings of pushes (clustered times, so class and seq
    /// break plenty of ties) and pops match the sorted-`Vec` model and
    /// the binary-heap oracle exactly, then drain in identical order.
    #[test]
    fn calendar_queue_matches_the_sorted_vec_model(
        seed in 0u64..300,
        ops in 1usize..400,
        spread in 1u64..4,
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut model = SortedVecModel::default();
        for i in 0..ops as u64 {
            let r = mix(seed, i);
            if r % 3 != 0 {
                // Time grid coarsens with `spread`: spread 1 forces many
                // exact ties, spread 3 scatters across ~1e4 seconds.
                let t = Seconds::new(
                    (r % 23) as f64 * 10f64.powi(spread as i32 - 1) * 0.5,
                );
                let event = event_for(r >> 8, i);
                cal.push(t, event);
                heap.push(t, event);
                model.push(t, event);
            } else {
                let got = cal.pop();
                prop_assert_eq!(got, model.pop(), "model diverged at op {}", i);
                prop_assert_eq!(got, heap.pop(), "oracle diverged at op {}", i);
            }
            prop_assert_eq!(cal.len(), model.pending.len());
        }
        loop {
            let got = cal.pop();
            prop_assert_eq!(got, model.pop());
            prop_assert_eq!(got, heap.pop());
            if got.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty() && heap.is_empty());
    }

    /// Every event at one instant: pop order degenerates to pure
    /// `(class, push order)` and the calendar's single-bucket pile-up
    /// must not reorder or lose anything.
    #[test]
    fn all_events_at_one_instant_match_the_model(
        seed in 0u64..200,
        n in 1usize..120,
        t in 0u32..1000,
    ) {
        let mut cal = CalendarQueue::new();
        let mut model = SortedVecModel::default();
        let at = Seconds::new(t as f64 * 0.25);
        for i in 0..n as u64 {
            let event = event_for(mix(seed, i), i);
            cal.push(at, event);
            model.push(at, event);
        }
        for _ in 0..n {
            prop_assert_eq!(cal.pop(), model.pop());
        }
        prop_assert!(cal.is_empty());
    }

    /// Near-term and far-future pushes interleaved with pops: far events
    /// enter the overflow list, and must still pop exactly when the model
    /// says — even while near-term re-pushes keep the calendar busy
    /// (the regime that starves a drain-only overflow promotion).
    #[test]
    fn far_future_overflow_pops_in_model_order(
        seed in 0u64..200,
        rounds in 1usize..60,
    ) {
        let mut cal = CalendarQueue::new();
        let mut model = SortedVecModel::default();
        let mut now = 0.0f64;
        for i in 0..rounds as u64 {
            let r = mix(seed, i);
            // A near event just ahead of the cursor...
            let near = Seconds::new(now + 1.0 + unit(seed, 3 * i) * 5.0);
            let e1 = event_for(r, i);
            cal.push(near, e1);
            model.push(near, e1);
            // ...and a far one (minutes to ~a year ahead).
            let far = Seconds::new(now + 100.0 * 10f64.powi((r % 4) as i32));
            let e2 = event_for(r >> 16, i);
            cal.push(far, e2);
            model.push(far, e2);
            // Pop one: the cursor chases the near events while far ones
            // accumulate in overflow.
            let got = cal.pop();
            prop_assert_eq!(got, model.pop(), "diverged at round {}", i);
            if let Some((t, _)) = got {
                now = t.value();
            }
        }
        loop {
            let got = cal.pop();
            prop_assert_eq!(got, model.pop());
            if got.is_none() {
                break;
            }
        }
    }
}
