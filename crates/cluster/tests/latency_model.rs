//! Property tests for the serving-mode latency model: the streaming
//! percentile sketch against a sort-the-Vec oracle (exact agreement,
//! bucket boundaries included), and autoscale hysteresis under constant
//! load (a bounded number of activation changes, never an oscillation).

use proptest::prelude::*;
use tps_cluster::{
    AutoscaleControl, ControlAction, ControlPolicy, ControlStatus, LatencyHistogram,
};
use tps_units::{Celsius, Seconds};

/// A tiny SplitMix64: the vendored proptest stub only samples scalar
/// ranges, so the latency vectors are expanded deterministically from a
/// sampled seed instead.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `len` latencies uniform in `[0, max)`, fully determined by `seed`.
fn values_from_seed(seed: u64, len: usize, max: f64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * max)
        .collect()
}

/// The sketch's contract computed the slow way: sort, take the
/// rank-`max(1, ⌈q·n⌉)` sample, report its bucket's upper edge. Uses the
/// exact same float expressions as the sketch so agreement is bitwise.
fn oracle(values: &[f64], q: f64, width_ms: u32, buckets: usize) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (((q * sorted.len() as f64).ceil() as usize).max(1)).min(sorted.len());
    let v = sorted[rank - 1];
    let width = f64::from(width_ms) / 1000.0;
    let idx = ((v / width).max(0.0) as usize).min(buckets - 1);
    (idx + 1) as f64 * width
}

proptest! {
    #[test]
    fn sketch_matches_the_sort_oracle(
        seed in 0u64..1_000_000,
        len in 1usize..200,
        qi in 0usize..5,
    ) {
        // 70 s values overflow the default 60 s range, so saturation into
        // the overflow bucket is exercised too.
        let values = values_from_seed(seed, len, 70.0);
        let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
        let mut h = LatencyHistogram::default();
        for &v in &values {
            h.record(Seconds::new(v));
        }
        prop_assert_eq!(h.quantile(q).unwrap().value(), oracle(&values, q, 10, 6_000));
    }

    #[test]
    fn sketch_matches_on_exact_bucket_boundaries(
        seed in 0u64..1_000_000,
        len in 1usize..100,
        q in 0.01f64..=1.0,
    ) {
        // Values landing exactly on bucket edges are the floating-point
        // worst case; the coarse 100 ms × 50 sketch saturates half the
        // range on top of that.
        let mut state = seed;
        let values: Vec<f64> = (0..len)
            .map(|_| (splitmix(&mut state) % 200) as f64 * 0.1)
            .collect();
        let mut h = LatencyHistogram::new(100, 50);
        for &v in &values {
            h.record(Seconds::new(v));
        }
        prop_assert_eq!(h.quantile(q).unwrap().value(), oracle(&values, q, 100, 50));
    }
}

/// One synthetic control tick: a constant backlog, a healthy p99, and the
/// kernel's clamp of the requested activation to `[1, total]`.
fn tick(ctrl: &mut AutoscaleControl, active: usize, total: usize, queued: usize) -> Option<usize> {
    let status = ControlStatus {
        now: Seconds::new(0.0),
        committed: queued,
        running: 0,
        queued,
        shed: 0,
        violations: 0,
        setpoint: Celsius::new(70.0),
        shedding: false,
        racks: &[],
        active_servers: active,
        total_servers: total,
        recent_p99: Some(Seconds::new(1.0)),
    };
    ctrl.on_tick(&status).iter().find_map(|a| match a {
        ControlAction::SetActiveServers(n) => Some((*n).clamp(1, total)),
        _ => None,
    })
}

proptest! {
    #[test]
    fn constant_load_never_oscillates(
        total in 2usize..128,
        min in 1usize..32,
        step in 1usize..32,
        queued in 0usize..256,
        qlow in 0.0f64..2.0,
        band in 0.01f64..4.0,
    ) {
        let min = min.min(total);
        let qhigh = qlow + band;
        let mut ctrl = AutoscaleControl::new(
            Seconds::new(10.0),
            min,
            step,
            qhigh,
            qlow,
            Seconds::new(10.0),
        );
        let mut active = total;
        let mut changes = 0usize;
        let mut settled = false;
        for _ in 0..1_000 {
            match tick(&mut ctrl, active, total, queued) {
                Some(n) if n != active => {
                    // A change after a quiet tick would be an oscillation:
                    // the input is constant, so quiet must be absorbing.
                    prop_assert!(!settled, "changed activation after settling");
                    active = n;
                    changes += 1;
                }
                _ => settled = true,
            }
            prop_assert!(active >= min && active <= total);
        }
        // The trajectory is monotone to its fixed point: it can cross the
        // whole fleet at most once, one step at a time.
        prop_assert!(
            changes <= total.div_ceil(step) + 1,
            "{changes} activation changes on constant load"
        );
    }
}
