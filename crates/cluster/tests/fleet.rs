//! End-to-end fleet scenarios: the headline energy ordering and the
//! determinism guarantees the CLI relies on.

use tps_cluster::{
    synthesize_jobs, CoolestRackFirst, Fleet, FleetConfig, JobMix, OutcomeCache, RoundRobin,
    ThermalAwareDispatch,
};
use tps_units::Seconds;
use tps_workload::{BurstyDemand, DiurnalDemand};

/// The shipped heat-reuse scenario, scaled down to 4 racks × 4 servers.
fn heat_reuse_fleet() -> Fleet {
    let mut config = FleetConfig::new(4, 4);
    config.grid_pitch_mm = 3.0;
    Fleet::new(config)
}

fn diurnal_jobs(count: usize, seed: u64) -> Vec<tps_cluster::Job> {
    let demand = DiurnalDemand::new(0.18 * 0.2, 0.18, Seconds::new(600.0));
    synthesize_jobs(count, &demand, JobMix::default(), seed)
}

#[test]
fn thermal_aware_beats_round_robin_on_the_heat_reuse_scenario() {
    let fleet = heat_reuse_fleet();
    let jobs = diurnal_jobs(120, 42);
    let cache = OutcomeCache::new();
    let rr = fleet
        .simulate(&jobs, &mut RoundRobin::default(), &cache)
        .unwrap();
    let coolest = fleet
        .simulate(&jobs, &mut CoolestRackFirst, &cache)
        .unwrap();
    let ta = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch, &cache)
        .unwrap();

    // The headline: segregating thermally demanding jobs cuts chiller
    // energy, and with it total (IT + cooling) energy.
    assert!(
        ta.cooling_energy.value() < rr.cooling_energy.value() * 0.95,
        "thermal-aware cooling {} should undercut round-robin {}",
        ta.cooling_energy,
        rr.cooling_energy
    );
    assert!(
        ta.total_energy().value() < rr.total_energy().value(),
        "thermal-aware total {} should undercut round-robin {}",
        ta.total_energy(),
        rr.total_energy()
    );
    // Load balancing by heat sits between the two.
    assert!(ta.total_energy().value() <= coolest.total_energy().value() + 1e-9);
    // Same jobs, same servers: IT energy only drifts through idle time.
    let it_ratio = ta.it_energy / rr.it_energy;
    assert!((0.98..=1.02).contains(&it_ratio), "IT drifted: {it_ratio}");
    // QoS: the wait-budget-aware dispatcher violates no more than striping.
    assert!(ta.violations <= rr.violations);
    // The scenario is meaningfully loaded: PUE above free-cooling floor.
    assert!(rr.pue() > 1.05, "round-robin PUE {}", rr.pue());
}

#[test]
fn outcomes_are_independent_of_warmup_thread_count() {
    let jobs = diurnal_jobs(40, 7);
    let mut outcomes = Vec::new();
    for threads in [1, 8] {
        let mut config = FleetConfig::new(2, 3);
        config.grid_pitch_mm = 3.0;
        config.threads = threads;
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        outcomes.push(
            fleet
                .simulate(&jobs, &mut ThermalAwareDispatch, &cache)
                .unwrap(),
        );
    }
    // Byte-identical results: thread count only parallelizes the warm-up,
    // whose values are pure functions of their key.
    assert_eq!(outcomes[0], outcomes[1]);
}

#[test]
fn bursty_demand_runs_end_to_end() {
    let demand = BurstyDemand::new(0.05, 0.6, Seconds::new(60.0), Seconds::new(240.0), 11);
    let jobs = synthesize_jobs(60, &demand, JobMix::default(), 11);
    let mut config = FleetConfig::new(2, 4);
    config.grid_pitch_mm = 3.0;
    let fleet = Fleet::new(config);
    let cache = OutcomeCache::new();
    let out = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch, &cache)
        .unwrap();
    assert_eq!(out.placements.len(), 60);
    assert!(out.it_energy.value() > 0.0);
    assert!(out.makespan.value() > 0.0);
    // Every placement lands inside the fleet.
    assert!(out.placements.iter().all(|p| p.rack < 2 && p.server < 8));
}
