//! End-to-end fleet scenarios: the headline energy ordering and the
//! determinism guarantees the CLI relies on.

use tps_cluster::{
    synthesize_jobs, CoolestRackFirst, Fleet, FleetConfig, JobMix, OutcomeCache, RoundRobin,
    SetpointScheduler, StaticControl, TelemetryConfig, ThermalAwareDispatch,
};
use tps_units::{Celsius, Seconds};
use tps_workload::{BurstyDemand, DiurnalDemand};

/// The shipped heat-reuse scenario, scaled down to 4 racks × 4 servers.
fn heat_reuse_fleet() -> Fleet {
    let mut config = FleetConfig::new(4, 4);
    config.grid_pitch_mm = 3.0;
    Fleet::new(config)
}

fn diurnal_jobs(count: usize, seed: u64) -> Vec<tps_cluster::Job> {
    let demand = DiurnalDemand::new(0.18 * 0.2, 0.18, Seconds::new(600.0));
    synthesize_jobs(count, &demand, JobMix::default(), seed)
}

#[test]
fn thermal_aware_beats_round_robin_on_the_heat_reuse_scenario() {
    let fleet = heat_reuse_fleet();
    let jobs = diurnal_jobs(120, 42);
    let cache = OutcomeCache::new();
    let rr = fleet
        .simulate(&jobs, &mut RoundRobin::default(), &cache)
        .unwrap();
    let coolest = fleet
        .simulate(&jobs, &mut CoolestRackFirst, &cache)
        .unwrap();
    let ta = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
        .unwrap();

    // The headline: segregating thermally demanding jobs cuts chiller
    // energy, and with it total (IT + cooling) energy.
    assert!(
        ta.cooling_energy.value() < rr.cooling_energy.value() * 0.95,
        "thermal-aware cooling {} should undercut round-robin {}",
        ta.cooling_energy,
        rr.cooling_energy
    );
    assert!(
        ta.total_energy().value() < rr.total_energy().value(),
        "thermal-aware total {} should undercut round-robin {}",
        ta.total_energy(),
        rr.total_energy()
    );
    // Load balancing by heat sits between the two.
    assert!(ta.total_energy().value() <= coolest.total_energy().value() + 1e-9);
    // Same jobs, same servers: IT energy only drifts through idle time.
    let it_ratio = ta.it_energy / rr.it_energy;
    assert!((0.98..=1.02).contains(&it_ratio), "IT drifted: {it_ratio}");
    // QoS: the wait-budget-aware dispatcher violates no more than striping.
    assert!(ta.violations <= rr.violations);
    // The scenario is meaningfully loaded: PUE above free-cooling floor.
    assert!(rr.pue() > 1.05, "round-robin PUE {}", rr.pue());
}

#[test]
fn outcomes_are_independent_of_warmup_thread_count() {
    let jobs = diurnal_jobs(40, 7);
    let mut outcomes = Vec::new();
    for threads in [1, 8] {
        let mut config = FleetConfig::new(2, 3);
        config.grid_pitch_mm = 3.0;
        config.threads = threads;
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        outcomes.push(
            fleet
                .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
                .unwrap(),
        );
    }
    // Byte-identical results: thread count only parallelizes the warm-up,
    // whose values are pure functions of their key.
    assert_eq!(outcomes[0], outcomes[1]);
}

#[test]
fn bursty_demand_runs_end_to_end() {
    let demand = BurstyDemand::new(0.05, 0.6, Seconds::new(60.0), Seconds::new(240.0), 11);
    let jobs = synthesize_jobs(60, &demand, JobMix::default(), 11);
    let mut config = FleetConfig::new(2, 4);
    config.grid_pitch_mm = 3.0;
    let fleet = Fleet::new(config);
    let cache = OutcomeCache::new();
    let out = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
        .unwrap();
    assert_eq!(out.placements.len(), 60);
    assert!(out.it_energy.value() > 0.0);
    assert!(out.makespan.value() > 0.0);
    // Every placement lands inside the fleet.
    assert!(out.placements.iter().all(|p| p.rack < 2 && p.server < 8));
}

/// The PR-2 heat-reuse dispatcher table, bit for bit: these eight-byte
/// patterns were captured from the pre-kernel simulator (the monolithic
/// arrival loop) on the shipped heat-reuse scenario. The event kernel
/// under `StaticControl` must reproduce every one of them exactly — a
/// refactor that perturbs even the last mantissa bit of any energy sum,
/// wait statistic or makespan fails here.
#[test]
fn static_control_reproduces_the_pre_kernel_heat_reuse_table_bit_for_bit() {
    // (dispatcher, it_energy, cooling_energy, violations, makespan,
    //  mean_wait, max_wait, peak_rack_heat) — f64s as raw bits.
    const GOLDEN: [(&str, u64, u64, usize, u64, u64, u64, u64); 3] = [
        (
            "round-robin",
            0x411a6e67f13ee294,
            0x40e04a2fc1efee66,
            17,
            0x40966f404dc0f570,
            0x40187afc832dbc2d,
            0x4057fb67a570b2fc,
            0x406aed4bb2b5d3aa,
        ),
        (
            "coolest-rack-first",
            0x411a6e67f13ee29a,
            0x40de2e0215b9b448,
            8,
            0x40966f404dc0f570,
            0x40017c4b0482ad2d,
            0x404774fc68054d50,
            0x4066238f925c41be,
        ),
        (
            "thermal-aware",
            0x411a6e67f13ee294,
            0x40db498d234b79ed,
            3,
            0x40966f404dc0f570,
            0x3fee0a0f56d3349a,
            0x4037cd6724651080,
            0x406b05631dd45e63,
        ),
    ];
    let fleet = heat_reuse_fleet();
    let jobs = diurnal_jobs(120, 42);
    let cache = OutcomeCache::new();
    let mut dispatchers: Vec<Box<dyn tps_cluster::FleetDispatcher>> = vec![
        Box::new(RoundRobin::default()),
        Box::new(CoolestRackFirst),
        Box::new(ThermalAwareDispatch::default()),
    ];
    for (d, golden) in dispatchers.iter_mut().zip(GOLDEN) {
        let out = fleet.simulate(&jobs, d.as_mut(), &cache).unwrap();
        assert_eq!(out.dispatcher, golden.0);
        assert_eq!(out.control, "static");
        assert_eq!(
            out.it_energy.value().to_bits(),
            golden.1,
            "{}: IT energy drifted to {}",
            golden.0,
            out.it_energy
        );
        assert_eq!(
            out.cooling_energy.value().to_bits(),
            golden.2,
            "{}: cooling energy drifted to {}",
            golden.0,
            out.cooling_energy
        );
        assert_eq!(out.violations, golden.3, "{}: violations", golden.0);
        assert_eq!(out.makespan.value().to_bits(), golden.4, "{}", golden.0);
        assert_eq!(out.mean_wait.value().to_bits(), golden.5, "{}", golden.0);
        assert_eq!(out.max_wait.value().to_bits(), golden.6, "{}", golden.0);
        assert_eq!(
            out.peak_rack_heat.value().to_bits(),
            golden.7,
            "{}",
            golden.0
        );
    }
}

#[test]
fn trace_csv_is_byte_identical_across_warmup_thread_counts() {
    let jobs = diurnal_jobs(60, 9);
    let mut csvs = Vec::new();
    for threads in [1, 8] {
        let mut config = FleetConfig::new(2, 3);
        config.grid_pitch_mm = 3.0;
        config.threads = threads;
        let fleet = Fleet::new(config);
        let cache = OutcomeCache::new();
        let telemetry = TelemetryConfig {
            sample_interval: Seconds::new(15.0),
            capacity: 4096,
        };
        let result = fleet
            .simulate_with(
                &jobs,
                &mut ThermalAwareDispatch::default(),
                &mut StaticControl,
                Some(&telemetry),
                &cache,
            )
            .unwrap();
        csvs.push(result.trace.expect("telemetry was on").to_csv());
    }
    assert_eq!(csvs[0], csvs[1]);
    // The trace is a real time series: header plus multiple samples, the
    // last of which is the drained fleet at the makespan.
    assert!(csvs[0].lines().count() > 3, "{}", csvs[0]);
    let last = csvs[0].lines().last().unwrap();
    let fields: Vec<&str> = last.split(',').collect();
    assert_eq!(fields[2], "0", "queued at makespan: {last}");
    assert_eq!(fields[3], "0", "running at makespan: {last}");
}

#[test]
fn setpoint_scheduler_cuts_cooling_on_the_heat_reuse_scenario() {
    let fleet = heat_reuse_fleet();
    let jobs = diurnal_jobs(80, 21);
    let cache = OutcomeCache::new();
    let stat = fleet
        .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
        .unwrap();
    // Drop the heat-reuse loop from 70 °C to 45 °C for the middle of the
    // run: most supplies then free-cool, trading reuse-grade heat for
    // chiller electricity.
    let t1 = stat.makespan * 0.25;
    let t2 = stat.makespan * 0.75;
    let mut sched = SetpointScheduler::new(vec![
        (Seconds::new(t1.value()), Celsius::new(45.0)),
        (Seconds::new(t2.value()), Celsius::new(70.0)),
    ]);
    let ctrl = fleet
        .simulate_with(
            &jobs,
            &mut ThermalAwareDispatch::default(),
            &mut sched,
            None,
            &cache,
        )
        .unwrap()
        .outcome;
    assert!(
        ctrl.cooling_energy.value() < stat.cooling_energy.value(),
        "scheduled {} vs static {}",
        ctrl.cooling_energy,
        stat.cooling_energy
    );
    assert_eq!(ctrl.placements.len(), jobs.len());
}

#[test]
fn sharded_runs_match_the_sequential_kernel_byte_for_byte() {
    // The tentpole guarantee, pinned as a matrix: shard counts (including
    // a count that does not divide the racks and one above the rack
    // count, which clamps) × both queue disciplines × every dispatcher,
    // in a closed loop with telemetry and a set-point program so all
    // event classes cross the hall boundaries. Every cell must reproduce
    // the unsharded calendar run's outcome and trace CSV byte for byte —
    // sharding is pure wall-clock, never physics.
    let jobs = diurnal_jobs(80, 11);
    for disp in 0..3usize {
        let run = |shards: usize, heap: bool| {
            let mut config = FleetConfig::new(6, 3);
            config.grid_pitch_mm = 3.0;
            config.shards = shards;
            let fleet = Fleet::new(config);
            let cache = OutcomeCache::new();
            let telemetry = TelemetryConfig {
                sample_interval: Seconds::new(15.0),
                capacity: 4096,
            };
            let mut control =
                SetpointScheduler::new(vec![(Seconds::new(40.0), Celsius::new(45.0))]);
            let mut dispatcher: Box<dyn tps_cluster::FleetDispatcher> = match disp {
                0 => Box::new(RoundRobin::default()),
                1 => Box::new(CoolestRackFirst),
                _ => Box::new(ThermalAwareDispatch::default()),
            };
            let result = if heap {
                fleet.simulate_with_heap_queue(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            } else {
                fleet.simulate_with(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            }
            .unwrap();
            (
                format!("{:?}", result.outcome),
                result.trace.expect("telemetry was on").to_csv(),
            )
        };
        let (ref_outcome, ref_csv) = run(1, false);
        for shards in [2usize, 3, 8] {
            for heap in [false, true] {
                let (outcome, csv) = run(shards, heap);
                assert_eq!(
                    outcome, ref_outcome,
                    "outcome diverged: dispatcher {disp}, {shards} shards, heap={heap}"
                );
                assert_eq!(
                    csv, ref_csv,
                    "trace diverged: dispatcher {disp}, {shards} shards, heap={heap}"
                );
            }
        }
    }
}

#[test]
fn calendar_queue_matches_the_heap_oracle_end_to_end() {
    // Same jobs, same fleet, both queue disciplines, every dispatcher, in
    // a closed loop (telemetry plus a set-point program) so all five
    // event classes flow through the queue: the outcome and the trace
    // CSV must be byte-identical. `Debug` on the outcome prints floats
    // at round-trip precision, so equal strings pin the bit patterns.
    let jobs = diurnal_jobs(80, 11);
    for disp in 0..3usize {
        let run = |heap: bool| {
            let mut config = FleetConfig::new(2, 3);
            config.grid_pitch_mm = 3.0;
            let fleet = Fleet::new(config);
            let cache = OutcomeCache::new();
            let telemetry = TelemetryConfig {
                sample_interval: Seconds::new(15.0),
                capacity: 4096,
            };
            let mut control =
                SetpointScheduler::new(vec![(Seconds::new(40.0), Celsius::new(45.0))]);
            let mut dispatcher: Box<dyn tps_cluster::FleetDispatcher> = match disp {
                0 => Box::new(RoundRobin::default()),
                1 => Box::new(CoolestRackFirst),
                _ => Box::new(ThermalAwareDispatch::default()),
            };
            let result = if heap {
                fleet.simulate_with_heap_queue(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            } else {
                fleet.simulate_with(
                    &jobs,
                    dispatcher.as_mut(),
                    &mut control,
                    Some(&telemetry),
                    &cache,
                )
            }
            .unwrap();
            (
                result.outcome,
                result.trace.expect("telemetry was on").to_csv(),
            )
        };
        let (cal_outcome, cal_csv) = run(false);
        let (heap_outcome, heap_csv) = run(true);
        assert_eq!(
            format!("{cal_outcome:?}"),
            format!("{heap_outcome:?}"),
            "outcome diverged for dispatcher {disp}"
        );
        assert_eq!(cal_csv, heap_csv, "trace diverged for dispatcher {disp}");
    }
}
