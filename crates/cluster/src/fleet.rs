//! The fleet: topology, scenario parameters and the event-driven engine.

use crate::cache::OutcomeCache;
use crate::dispatch::{FleetDispatcher, FleetView, JobDemand, RackView};
use crate::job::Job;
use crate::metrics::{integrate_energy, FleetOutcome, Placement};
use std::collections::BTreeMap;
use tps_cooling::Chiller;
use tps_core::{
    CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector, PackedMapping,
    ProposedMapping, RunError, Server, T_CASE_MAX,
};
use tps_power::{CState, CoreFrequency, IdlePowerModel};
use tps_thermosyphon::OperatingPoint;
use tps_units::{Celsius, Seconds, Watts};

/// The per-server mapping policy the fleet's servers run (the paper's
/// proposed policy or one of its baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerPolicy {
    /// The paper's C-state-aware thermal mapping.
    #[default]
    Proposed,
    /// Temperature balancing \[9\].
    Coskun,
    /// Inlet-first \[7\].
    InletFirst,
    /// Naive packing.
    Packed,
}

static PROPOSED: ProposedMapping = ProposedMapping;
static COSKUN: CoskunBalancing = CoskunBalancing;
static INLET: InletFirstMapping = InletFirstMapping;
static PACKED: PackedMapping = PackedMapping;

impl ServerPolicy {
    /// The shared policy instance (policies are stateless).
    pub fn as_policy(self) -> &'static (dyn MappingPolicy + Sync) {
        match self {
            ServerPolicy::Proposed => &PROPOSED,
            ServerPolicy::Coskun => &COSKUN,
            ServerPolicy::InletFirst => &INLET,
            ServerPolicy::Packed => &PACKED,
        }
    }
}

/// Scenario parameters of a fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of racks.
    pub racks: usize,
    /// Servers per rack (one chiller loop per rack, Sec. V).
    pub servers_per_rack: usize,
    /// Thermal-grid pitch of the per-server simulation, in millimetres
    /// (coarser ⇒ faster cache warm-up).
    pub grid_pitch_mm: f64,
    /// The servers' water-side design point.
    pub op: OperatingPoint,
    /// The per-rack chiller. The default rejects into a 70 °C
    /// heat-recovery loop (district-heating supply): racks whose shared
    /// water stays above `70 °C + approach` exchange heat directly
    /// (bypass), anything colder pays heat-pump lift to reach the reuse
    /// temperature.
    pub chiller: Chiller,
    /// The case-temperature constraint (`T_CASE_MAX` of the paper).
    pub t_case_max: Celsius,
    /// Draw of an idle server (all cores parked, uncore floor).
    pub idle_server_power: Watts,
    /// Per-server mapping policy.
    pub policy: ServerPolicy,
    /// OS threads for the cache warm-up phase.
    pub threads: usize,
}

impl FleetConfig {
    /// A fleet of `racks × servers_per_rack` paper servers with the
    /// heat-reuse scenario defaults (2 mm grid, paper operating point,
    /// 70 °C recovery loop, C6 idle floor,
    /// [`default_threads`](Self::default_threads) warm-up threads).
    ///
    /// # Panics
    ///
    /// Panics if `racks` or `servers_per_rack` is zero.
    pub fn new(racks: usize, servers_per_rack: usize) -> Self {
        assert!(racks > 0, "a fleet needs at least one rack");
        assert!(servers_per_rack > 0, "a rack needs at least one server");
        let idle = IdlePowerModel::xeon_e5_v4().package_idle_power(CState::C6, CoreFrequency::F2_6);
        Self {
            racks,
            servers_per_rack,
            grid_pitch_mm: 2.0,
            op: OperatingPoint::paper(),
            chiller: Chiller::new(Celsius::new(70.0)),
            t_case_max: T_CASE_MAX,
            idle_server_power: idle,
            policy: ServerPolicy::default(),
            threads: Self::default_threads(),
        }
    }

    /// The default warm-up thread count — the machine's available
    /// parallelism, capped at 8 (the distinct solves saturate quickly).
    /// Thread count never changes simulation results, only wall time.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(4, |n| n.get().min(8))
    }

    /// Total server count.
    pub fn total_servers(&self) -> usize {
        self.racks * self.servers_per_rack
    }
}

/// A fleet of identical two-phase-cooled servers, ready to simulate job
/// streams under different dispatchers.
///
/// The per-server thermal model is assembled once (`Server` construction
/// is expensive) and shared read-only by the warm-up threads.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    server: Server,
}

impl Fleet {
    /// Assembles the fleet's server template.
    pub fn new(config: FleetConfig) -> Self {
        let server = Server::builder()
            .grid_pitch_mm(config.grid_pitch_mm)
            .operating_point(config.op)
            .build();
        Self { config, server }
    }

    /// The scenario parameters.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The per-server template all placements run on.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Runs `jobs` through the fleet under `dispatcher`, reusing (and
    /// extending) `cache` for the per-server physics.
    ///
    /// Placement happens at arrival time against the committed fleet state
    /// (running *and* queued jobs); each server executes its queue FIFO.
    /// The result is byte-deterministic for a fixed job stream — thread
    /// count only parallelizes the cache warm-up, whose values are pure
    /// functions of their key.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`].
    pub fn simulate(
        &self,
        jobs: &[Job],
        dispatcher: &mut dyn FleetDispatcher,
        cache: &OutcomeCache,
    ) -> Result<FleetOutcome, RunError> {
        let selector = MinPowerSelector;
        let policy = self.config.policy.as_policy();

        // Parallel phase: solve each distinct (bench, qos) once.
        let mut pairs: Vec<(tps_workload::Benchmark, tps_workload::QosClass)> =
            jobs.iter().map(|j| (j.bench, j.qos)).collect();
        pairs.sort();
        pairs.dedup();
        cache.warm(
            &self.server,
            &pairs,
            &selector,
            policy,
            self.config.t_case_max,
            self.config.threads,
        )?;

        // Sequential event loop: arrivals in time order (id on ties).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .arrival
                .value()
                .total_cmp(&jobs[b].arrival.value())
                .then(jobs[a].id.cmp(&jobs[b].id))
        });

        let n_servers = self.config.total_servers();
        let mut free_at = vec![Seconds::ZERO; n_servers];
        let mut placements: Vec<Placement> = Vec::with_capacity(jobs.len());
        let mut committed = CommittedLoad::new(self.config.racks);
        for &ji in &order {
            let job = &jobs[ji];
            let state = cache.get_or_solve(
                &self.server,
                job.bench,
                job.qos,
                &selector,
                policy,
                self.config.t_case_max,
            )?;
            let runtime = job.service * state.normalized_time;
            let demand = JobDemand {
                job,
                state,
                runtime,
                wait_budget: job.wait_budget(state.normalized_time),
            };
            committed.expire_until(job.arrival);
            let racks = committed.views();
            let view = FleetView {
                now: job.arrival,
                racks: &racks,
                free_at: &free_at,
                servers_per_rack: self.config.servers_per_rack,
                chiller: &self.config.chiller,
            };
            let server = dispatcher.place(&demand, &view);
            assert!(server < n_servers, "dispatcher placed outside the fleet");
            let start = Seconds::new(job.arrival.value().max(free_at[server].value()));
            let wait = start - job.arrival;
            let rack = server / self.config.servers_per_rack;
            placements.push(Placement {
                job: job.id,
                server,
                rack,
                start,
                end: start + runtime,
                wait,
                violated: wait.value() > demand.wait_budget.value() + 1e-9,
                state,
            });
            committed.add(rack, &state, start + runtime);
            free_at[server] = start + runtime;
        }

        Ok(integrate_energy(
            dispatcher.name(),
            placements,
            &self.config,
        ))
    }
}

/// Incremental per-rack committed load: every placement that has not
/// finished (running or still queued) counts against its rack until its
/// end time expires. Keeps dispatch O(racks + log jobs) per arrival
/// instead of rescanning all placements.
struct CommittedLoad {
    heat: Vec<f64>,
    /// Multiset of tolerable-water keys per rack; `f64::to_bits` is
    /// monotone for the non-negative temperatures in play and round-trips
    /// the exact value.
    water: Vec<BTreeMap<u64, usize>>,
    count: Vec<usize>,
    /// `(end_bits, insertion seq) → (rack, heat, water_bits)`.
    expiry: BTreeMap<(u64, usize), (usize, f64, u64)>,
    seq: usize,
}

impl CommittedLoad {
    fn new(racks: usize) -> Self {
        Self {
            heat: vec![0.0; racks],
            water: vec![BTreeMap::new(); racks],
            count: vec![0; racks],
            expiry: BTreeMap::new(),
            seq: 0,
        }
    }

    fn add(&mut self, rack: usize, state: &crate::cache::SteadyState, end: Seconds) {
        let water_bits = state.max_water_temp.value().to_bits();
        self.heat[rack] += state.heat.value();
        self.count[rack] += 1;
        *self.water[rack].entry(water_bits).or_insert(0) += 1;
        self.expiry.insert(
            (end.value().to_bits(), self.seq),
            (rack, state.heat.value(), water_bits),
        );
        self.seq += 1;
    }

    /// Drops every placement with `end ≤ now` (it covered `[start, end)`).
    fn expire_until(&mut self, now: Seconds) {
        while let Some((&key @ (end_bits, _), &(rack, heat, water_bits))) =
            self.expiry.first_key_value()
        {
            if f64::from_bits(end_bits) > now.value() {
                break;
            }
            self.expiry.remove(&key);
            self.heat[rack] -= heat;
            self.count[rack] -= 1;
            if let Some(n) = self.water[rack].get_mut(&water_bits) {
                *n -= 1;
                if *n == 0 {
                    self.water[rack].remove(&water_bits);
                }
            }
            // Pin drained racks back to exact zero: float residue must not
            // perturb later dispatch comparisons.
            if self.count[rack] == 0 {
                self.heat[rack] = 0.0;
            }
        }
    }

    fn views(&self) -> Vec<RackView> {
        (0..self.heat.len())
            .map(|r| RackView {
                heat: Watts::new(self.heat[r].max(0.0)),
                supply: self.water[r]
                    .first_key_value()
                    .map(|(&bits, _)| Celsius::new(f64::from_bits(bits))),
                committed: self.count[r],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::RoundRobin;
    use crate::job::{synthesize_jobs, JobMix};
    use tps_workload::ConstantDemand;

    #[test]
    fn fleet_simulation_is_deterministic() {
        let jobs = synthesize_jobs(24, &ConstantDemand::new(1.0), JobMix::default(), 42);
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let a = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        let b = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(a.it_energy, b.it_energy);
        assert_eq!(a.cooling_energy, b.cooling_energy);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn every_job_is_placed_exactly_once_fifo_per_server() {
        let jobs = synthesize_jobs(30, &ConstantDemand::new(0.8), JobMix::default(), 7);
        let mut cfg = FleetConfig::new(2, 3);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let out = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(out.placements.len(), 30);
        // Per server: non-overlapping, ordered executions.
        for s in 0..6 {
            let mut on_server: Vec<_> = out.placements.iter().filter(|p| p.server == s).collect();
            on_server.sort_by(|a, b| a.start.value().total_cmp(&b.start.value()));
            for w in on_server.windows(2) {
                assert!(w[0].end.value() <= w[1].start.value() + 1e-9);
            }
        }
        // Jobs never start before they arrive.
        for p in &out.placements {
            let job = jobs.iter().find(|j| j.id == p.job).unwrap();
            assert!(p.start.value() >= job.arrival.value() - 1e-9);
        }
    }

    #[test]
    fn zero_jobs_zero_energy() {
        let mut cfg = FleetConfig::new(1, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let out = fleet
            .simulate(&[], &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(out.placements.len(), 0);
        assert_eq!(out.it_energy.value(), 0.0);
        assert_eq!(out.cooling_energy.value(), 0.0);
    }
}
