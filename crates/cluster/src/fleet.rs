//! The fleet: topology, server catalog, scenario parameters and the
//! simulation driver.
//!
//! [`Fleet::simulate`] and [`Fleet::simulate_with`] are thin drivers over
//! the discrete-event kernel in [`crate::engine`]: they warm the physics
//! cache in parallel — one solve per distinct `(class, bench, qos)` —
//! then hand the job stream, dispatcher, control policy and telemetry
//! settings to the sequential event loop.

use crate::cache::{ClassSolve, OutcomeCache};
use crate::catalog::{ClassId, FleetCatalog};
use crate::control::{ControlPolicy, StaticControl};
use crate::dispatch::FleetDispatcher;
use crate::engine;
use crate::job::Job;
use crate::metrics::{FleetOutcome, SimResult, TelemetryConfig};
use tps_cooling::Chiller;
use tps_core::{
    CoskunBalancing, InletFirstMapping, MappingPolicy, MinPowerSelector, PackedMapping,
    ProposedMapping, RunError, Server, T_CASE_MAX,
};
use tps_power::{CState, CoreFrequency, IdlePowerModel};
use tps_thermosyphon::OperatingPoint;
use tps_units::{Celsius, Watts};
use tps_workload::{Benchmark, QosClass};

/// The per-server mapping policy a fleet (or one of its server classes)
/// runs: the paper's proposed policy or one of its baselines.
///
/// This is the *typed identity* the [`CacheKey`](crate::CacheKey) stores —
/// two policies can never alias the way name strings could, and a match
/// over it is checked for exhaustiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PolicyId {
    /// The paper's C-state-aware thermal mapping.
    #[default]
    Proposed,
    /// Temperature balancing \[9\].
    Coskun,
    /// Inlet-first \[7\].
    InletFirst,
    /// Naive packing.
    Packed,
}

/// Back-compatible alias: scenario specs and the CLI call the fleet-wide
/// default mapping policy the "server policy".
pub type ServerPolicy = PolicyId;

static PROPOSED: ProposedMapping = ProposedMapping;
static COSKUN: CoskunBalancing = CoskunBalancing;
static INLET: InletFirstMapping = InletFirstMapping;
static PACKED: PackedMapping = PackedMapping;

impl PolicyId {
    /// The shared policy instance (policies are stateless).
    pub fn as_policy(self) -> &'static (dyn MappingPolicy + Sync) {
        match self {
            PolicyId::Proposed => &PROPOSED,
            PolicyId::Coskun => &COSKUN,
            PolicyId::InletFirst => &INLET,
            PolicyId::Packed => &PACKED,
        }
    }

    /// The spec-file/CLI spelling (`proposed`/`coskun`/`inlet`/`packed`).
    pub fn spec_name(self) -> &'static str {
        match self {
            PolicyId::Proposed => "proposed",
            PolicyId::Coskun => "coskun",
            PolicyId::InletFirst => "inlet",
            PolicyId::Packed => "packed",
        }
    }
}

/// Scenario parameters of a fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of racks.
    pub racks: usize,
    /// Servers per rack (one chiller loop per rack, Sec. V).
    pub servers_per_rack: usize,
    /// Thermal-grid pitch of the per-server simulation, in millimetres
    /// (coarser ⇒ faster cache warm-up). Classes may override it.
    pub grid_pitch_mm: f64,
    /// The servers' water-side design point. Classes may override its
    /// inlet.
    pub op: OperatingPoint,
    /// The per-rack chiller. The default rejects into a 70 °C
    /// heat-recovery loop (district-heating supply): racks whose shared
    /// water stays above `70 °C + approach` exchange heat directly
    /// (bypass), anything colder pays heat-pump lift to reach the reuse
    /// temperature. Control policies may re-program the set-point
    /// mid-run; this field is the initial (and static) value.
    pub chiller: Chiller,
    /// The case-temperature constraint (`T_CASE_MAX` of the paper).
    pub t_case_max: Celsius,
    /// Draw of an idle server (all cores parked, uncore floor).
    pub idle_server_power: Watts,
    /// Fleet-wide default mapping policy. Classes may override it.
    pub policy: PolicyId,
    /// OS threads for the cache warm-up phase and for hall-level
    /// parallelism inside a sharded run (telemetry fan-out). Thread count
    /// never changes simulation results, only wall time; callers nesting
    /// simulations inside their own worker pool should derive this via
    /// [`thread_budget`] so the two levels never oversubscribe.
    pub threads: usize,
    /// Number of **halls** the kernel partitions the racks into:
    /// contiguous rack ranges that own their committed load, occupancy
    /// index and expiry events outright, and whose per-hall dispatch
    /// candidates merge through a deterministic reduction. Any value
    /// produces bit-identical outcomes and traces (`1`, the default, is
    /// the classic single-index kernel); values above the rack count are
    /// clamped. See `ARCHITECTURE.md`, "Sharded halls".
    pub shards: usize,
    /// The server catalog: which hardware class sits in each rack slot.
    /// The default [`FleetCatalog::uniform`] is one fully inheriting
    /// class everywhere — the homogeneous fleet, bit for bit.
    pub catalog: FleetCatalog,
    /// Serving mode: the kernel records per-request latency (dispatch
    /// wait + runtime) into percentile sketches, telemetry samples and
    /// the outcome gain latency/active-server fields, and
    /// [`AutoscaleControl`](crate::AutoscaleControl) may resize the
    /// active-server set. `false` (batch mode) leaves every output
    /// bit-identical to a build without the serving machinery.
    pub serving: bool,
    /// Resolve demand states through the frozen dense
    /// [`SolveTable`](crate::SolveTable) (the default): each run fetches
    /// a covering epoch at its synchronization point, then replays
    /// lock-free. `false` keeps the mutex-map oracle path — the
    /// determinism matrix pins both paths byte-identical.
    pub solve_table: bool,
}

impl FleetConfig {
    /// A fleet of `racks × servers_per_rack` paper servers with the
    /// heat-reuse scenario defaults (2 mm grid, paper operating point,
    /// 70 °C recovery loop, C6 idle floor, uniform catalog,
    /// [`default_threads`](Self::default_threads) warm-up threads).
    ///
    /// # Panics
    ///
    /// Panics if `racks` or `servers_per_rack` is zero.
    pub fn new(racks: usize, servers_per_rack: usize) -> Self {
        assert!(racks > 0, "a fleet needs at least one rack");
        assert!(servers_per_rack > 0, "a rack needs at least one server");
        let idle = IdlePowerModel::xeon_e5_v4().package_idle_power(CState::C6, CoreFrequency::F2_6);
        Self {
            racks,
            servers_per_rack,
            grid_pitch_mm: 2.0,
            op: OperatingPoint::paper(),
            chiller: Chiller::new(Celsius::new(70.0)),
            t_case_max: T_CASE_MAX,
            idle_server_power: idle,
            policy: PolicyId::default(),
            threads: Self::default_threads(),
            shards: 1,
            catalog: FleetCatalog::uniform(),
            serving: false,
            solve_table: true,
        }
    }

    /// The default warm-up thread count — the machine's available
    /// parallelism, capped at 8 (the distinct solves saturate quickly).
    /// Thread count never changes simulation results, only wall time.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(4, |n| n.get().min(8))
    }

    /// Total server count.
    pub fn total_servers(&self) -> usize {
        self.racks * self.servers_per_rack
    }
}

/// Splits a thread budget across `outer` concurrent workers: the threads
/// each worker may use internally so the two levels of parallelism never
/// oversubscribe the machine. The scenario sweep hands each grid worker
/// `thread_budget(threads, workers)` for its per-point simulations
/// (warm-up and hall fan-out); a single foreground run is the `outer = 1`
/// case and keeps the whole budget. Never returns zero.
pub fn thread_budget(total: usize, outer: usize) -> usize {
    (total / outer.max(1)).max(1)
}

/// One catalog class, resolved against the fleet defaults and assembled:
/// the server template shared read-only by every slot of that class.
#[derive(Debug)]
pub(crate) struct ClassRuntime {
    pub(crate) name: String,
    pub(crate) policy: PolicyId,
    pub(crate) server: Server,
}

/// A fleet of two-phase-cooled servers — homogeneous or a catalog mix —
/// ready to simulate job streams under different dispatchers and control
/// policies.
///
/// The per-class thermal models are assembled once (`Server` construction
/// is expensive) and shared read-only by the warm-up threads.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    classes: Vec<ClassRuntime>,
    /// Global server index → class id (`index = rack · servers_per_rack
    /// + slot`).
    class_of: Vec<ClassId>,
}

impl Fleet {
    /// Assembles one server template per catalog class (fields a class
    /// leaves at `None` inherit the fleet defaults).
    pub fn new(config: FleetConfig) -> Self {
        let classes: Vec<ClassRuntime> = config
            .catalog
            .classes()
            .iter()
            .map(|c| {
                let pitch = c.grid_pitch_mm.unwrap_or(config.grid_pitch_mm);
                let op = match c.water_inlet_c {
                    Some(t) => config.op.with_inlet(Celsius::new(t)),
                    None => config.op,
                };
                ClassRuntime {
                    name: c.name.clone(),
                    policy: c.policy.unwrap_or(config.policy),
                    server: Server::builder()
                        .grid_pitch_mm(pitch)
                        .operating_point(op)
                        .build(),
                }
            })
            .collect();
        // `FleetCatalog::assign` already validated every pattern id, so
        // the lookup cannot go out of range.
        let class_of: Vec<ClassId> = (0..config.total_servers())
            .map(|i| {
                config
                    .catalog
                    .class_of(i / config.servers_per_rack, i % config.servers_per_rack)
            })
            .collect();
        Self {
            config,
            classes,
            class_of,
        }
    }

    /// The scenario parameters.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The default class's server template (class 0 — the whole fleet on
    /// a uniform catalog).
    pub fn server(&self) -> &Server {
        &self.classes[0].server
    }

    /// The catalog class names, in class-id order.
    pub fn class_names(&self) -> Vec<String> {
        self.classes.iter().map(|c| c.name.clone()).collect()
    }

    /// The class occupying each global server index.
    pub fn server_classes(&self) -> &[ClassId] {
        &self.class_of
    }

    /// The per-class solve contexts, in class-id order.
    pub(crate) fn class_solvers(&self) -> Vec<ClassSolve<'_>> {
        self.classes
            .iter()
            .enumerate()
            .map(|(id, c)| ClassSolve {
                id,
                server: &c.server,
                policy: c.policy,
            })
            .collect()
    }

    /// Pre-solves every `(class, bench, qos)` triple — `pairs` crossed
    /// with the whole catalog — into `cache` across up to `threads` OS
    /// threads. [`simulate_with`](Self::simulate_with) calls this
    /// internally; the sweep engine calls it directly to share one warm
    /// cache across a whole scenario grid.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`].
    pub fn warm(
        &self,
        pairs: &[(Benchmark, QosClass)],
        cache: &OutcomeCache,
        threads: usize,
    ) -> Result<(), RunError> {
        cache.warm(
            &self.class_solvers(),
            pairs,
            &MinPowerSelector,
            self.config.t_case_max,
            threads,
        )
    }

    /// Runs `jobs` through the fleet under `dispatcher`, reusing (and
    /// extending) `cache` for the per-server physics — the open-loop
    /// simulation: [`StaticControl`], no telemetry.
    ///
    /// Placement happens at arrival time against the committed fleet state
    /// (running *and* queued jobs); each server executes its queue FIFO.
    /// The result is byte-deterministic for a fixed job stream — thread
    /// count only parallelizes the cache warm-up, whose values are pure
    /// functions of their key.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`].
    pub fn simulate(
        &self,
        jobs: &[Job],
        dispatcher: &mut dyn FleetDispatcher,
        cache: &OutcomeCache,
    ) -> Result<FleetOutcome, RunError> {
        self.simulate_with(jobs, dispatcher, &mut StaticControl, None, cache)
            .map(|r| r.outcome)
    }

    /// Runs `jobs` through the event kernel under `dispatcher` and
    /// `control`, optionally sampling telemetry.
    ///
    /// The control policy's set-point program and tick cadence become
    /// [`SetpointChange`](crate::Event::SetpointChange) and
    /// [`ControlTick`](crate::Event::ControlTick) events; with
    /// [`StaticControl`] and `telemetry: None` this is exactly
    /// [`simulate`](Self::simulate). Results — including the trace CSV —
    /// are byte-deterministic across runs and thread counts.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`].
    pub fn simulate_with(
        &self,
        jobs: &[Job],
        dispatcher: &mut dyn FleetDispatcher,
        control: &mut dyn ControlPolicy,
        telemetry: Option<&TelemetryConfig>,
        cache: &OutcomeCache,
    ) -> Result<SimResult, RunError> {
        // Synchronization point: make sure a covering table epoch is
        // published (solving only the missing keys, in parallel), or warm
        // the mutex map on the oracle path. Either way the work is one
        // solve per distinct (class, bench, qos).
        let mut pairs: Vec<(Benchmark, QosClass)> = jobs.iter().map(|j| (j.bench, j.qos)).collect();
        pairs.sort();
        pairs.dedup();
        let table = if self.config.solve_table {
            let solvers = self.class_solvers();
            Some(cache.ensure_published(
                &solvers,
                &pairs,
                &MinPowerSelector,
                self.config.t_case_max,
                self.config.threads,
            )?)
        } else {
            self.warm(&pairs, cache, self.config.threads)?;
            None
        };

        // Sequential phase: the deterministic event loop, reading the
        // frozen epoch lock-free (or the mutex map on the oracle path).
        engine::run(
            self,
            jobs,
            dispatcher,
            control,
            telemetry,
            cache,
            table.as_deref(),
        )
    }

    /// [`simulate_with`](Self::simulate_with), but driven by the original
    /// binary-heap event queue instead of the calendar queue.
    ///
    /// The two queues share the `(time, class, seq)` ordering key, so
    /// results must be byte-identical; the determinism regression tests
    /// use this entry as the ordering oracle. Not part of the supported
    /// API — it exists only so the oracle stays compiled and honest.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`].
    #[doc(hidden)]
    pub fn simulate_with_heap_queue(
        &self,
        jobs: &[Job],
        dispatcher: &mut dyn FleetDispatcher,
        control: &mut dyn ControlPolicy,
        telemetry: Option<&TelemetryConfig>,
        cache: &OutcomeCache,
    ) -> Result<SimResult, RunError> {
        let mut pairs: Vec<(Benchmark, QosClass)> = jobs.iter().map(|j| (j.bench, j.qos)).collect();
        pairs.sort();
        pairs.dedup();
        let table = if self.config.solve_table {
            let solvers = self.class_solvers();
            Some(cache.ensure_published(
                &solvers,
                &pairs,
                &MinPowerSelector,
                self.config.t_case_max,
                self.config.threads,
            )?)
        } else {
            self.warm(&pairs, cache, self.config.threads)?;
            None
        };
        engine::run_with_heap(
            self,
            jobs,
            dispatcher,
            control,
            telemetry,
            cache,
            table.as_deref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServerClass;
    use crate::control::{LoadSheddingControl, SetpointScheduler};
    use crate::dispatch::RoundRobin;
    use crate::job::{synthesize_jobs, JobMix};
    use tps_units::Seconds;
    use tps_workload::ConstantDemand;

    #[test]
    fn fleet_simulation_is_deterministic() {
        let jobs = synthesize_jobs(24, &ConstantDemand::new(1.0), JobMix::default(), 42);
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let a = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        let b = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(a.it_energy, b.it_energy);
        assert_eq!(a.cooling_energy, b.cooling_energy);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn every_job_is_placed_exactly_once_fifo_per_server() {
        let jobs = synthesize_jobs(30, &ConstantDemand::new(0.8), JobMix::default(), 7);
        let mut cfg = FleetConfig::new(2, 3);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let out = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(out.placements.len(), 30);
        // Per server: non-overlapping, ordered executions.
        for s in 0..6 {
            let mut on_server: Vec<_> = out.placements.iter().filter(|p| p.server == s).collect();
            on_server.sort_by(|a, b| a.start.value().total_cmp(&b.start.value()));
            for w in on_server.windows(2) {
                assert!(w[0].end.value() <= w[1].start.value() + 1e-9);
            }
        }
        // Jobs never start before they arrive.
        for p in &out.placements {
            let job = jobs.iter().find(|j| j.id == p.job).unwrap();
            assert!(p.start.value() >= job.arrival.value() - 1e-9);
        }
    }

    #[test]
    fn zero_jobs_zero_energy() {
        let mut cfg = FleetConfig::new(1, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let out = fleet
            .simulate(&[], &mut RoundRobin::default(), &cache)
            .unwrap();
        assert_eq!(out.placements.len(), 0);
        assert_eq!(out.it_energy.value(), 0.0);
        assert_eq!(out.cooling_energy.value(), 0.0);
    }

    #[test]
    fn uniform_catalog_resolves_to_the_fleet_defaults() {
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        cfg.policy = PolicyId::Coskun;
        let fleet = Fleet::new(cfg);
        assert_eq!(fleet.class_names(), vec!["default".to_owned()]);
        assert_eq!(fleet.server_classes(), &[0, 0, 0, 0]);
        assert_eq!(fleet.class_solvers()[0].policy, PolicyId::Coskun);
    }

    #[test]
    fn catalog_classes_get_their_own_servers_and_policies() {
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        cfg.catalog = FleetCatalog::new(vec![
            ServerClass::new("dense"),
            ServerClass::new("sparse").pitch(4.0).inlet(35.0),
            ServerClass::new("derated").policy(PolicyId::Packed),
        ])
        .assign(vec![vec![0, 1], vec![2]]);
        let fleet = Fleet::new(cfg);
        assert_eq!(fleet.server_classes(), &[0, 1, 2, 2]);
        let solvers = fleet.class_solvers();
        assert_eq!(
            solvers[1]
                .server
                .simulation()
                .operating_point()
                .water_inlet(),
            Celsius::new(35.0)
        );
        assert_eq!(solvers[2].policy, PolicyId::Packed);
        assert_eq!(solvers[0].policy, PolicyId::Proposed);
    }

    #[test]
    fn mixed_catalog_runs_deterministically_end_to_end() {
        let jobs = synthesize_jobs(20, &ConstantDemand::new(0.8), JobMix::default(), 13);
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        cfg.catalog = FleetCatalog::new(vec![
            ServerClass::new("dense"),
            ServerClass::new("sparse").pitch(3.5),
        ])
        .assign(vec![vec![0], vec![0, 1]]);
        let fleet = Fleet::new(cfg.clone());
        let cache = OutcomeCache::new();
        let a = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        let again = Fleet::new(cfg);
        let fresh = OutcomeCache::new();
        let b = again
            .simulate(&jobs, &mut RoundRobin::default(), &fresh)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.placements.len(), 20);
        assert_eq!(a.class_names, vec!["dense", "sparse"]);
        assert_eq!(a.class_placements.iter().sum::<usize>(), 20);
        // Round-robin strides rack 1's second slot every 4th job: the
        // sparse class really executed part of the stream.
        assert!(a.class_placements[1] > 0);
    }

    #[test]
    fn control_ticks_terminate_on_an_empty_job_stream() {
        // A tick cadence with no arrivals: the kernel must detect the
        // drained fleet and stop re-arming ticks instead of spinning.
        let mut cfg = FleetConfig::new(1, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let mut control = LoadSheddingControl::new(Seconds::new(10.0), 4, 1);
        let result = fleet
            .simulate_with(
                &[],
                &mut RoundRobin::default(),
                &mut control,
                Some(&TelemetryConfig::default()),
                &cache,
            )
            .unwrap();
        assert_eq!(result.outcome.placements.len(), 0);
        assert_eq!(result.outcome.shed, 0);
        assert!(result.trace.expect("telemetry was on").is_empty());
    }

    #[test]
    fn static_control_matches_simulate_exactly() {
        let jobs = synthesize_jobs(16, &ConstantDemand::new(0.8), JobMix::default(), 3);
        let mut cfg = FleetConfig::new(2, 2);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let plain = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        let kernel = fleet
            .simulate_with(
                &jobs,
                &mut RoundRobin::default(),
                &mut StaticControl,
                Some(&TelemetryConfig::default()),
                &cache,
            )
            .unwrap();
        // Telemetry sampling must not perturb the simulation itself.
        assert_eq!(plain, kernel.outcome);
        assert!(!kernel.trace.expect("telemetry was on").is_empty());
    }

    #[test]
    fn setpoint_change_mid_job_shifts_cooling_energy() {
        let jobs = synthesize_jobs(12, &ConstantDemand::new(1.0), JobMix::default(), 11);
        let mut cfg = FleetConfig::new(1, 4);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let stat = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        // Drop the 70 °C heat-reuse loop to 40 °C mid-stream: supplies
        // above 45 °C free-cool from then on, so cooling energy falls
        // while IT energy and placements stay identical (round-robin
        // ignores the chiller).
        let mid = stat.makespan * 0.4;
        let mut sched =
            SetpointScheduler::new(vec![(Seconds::new(mid.value()), Celsius::new(40.0))]);
        let ctrl = fleet
            .simulate_with(&jobs, &mut RoundRobin::default(), &mut sched, None, &cache)
            .unwrap()
            .outcome;
        assert_eq!(ctrl.placements, stat.placements);
        assert_eq!(ctrl.it_energy, stat.it_energy);
        assert!(
            ctrl.cooling_energy.value() < stat.cooling_energy.value(),
            "scheduled {} vs static {}",
            ctrl.cooling_energy,
            stat.cooling_energy
        );
        assert_eq!(ctrl.control, "setpoint");
    }

    #[test]
    fn load_shedding_caps_the_backlog() {
        // A deliberately overloaded single server: without control the
        // queue grows without bound; with shedding, arrivals are dropped
        // once the backlog passes the watermark.
        let jobs = synthesize_jobs(40, &ConstantDemand::new(2.0), JobMix::default(), 5);
        let mut cfg = FleetConfig::new(1, 1);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let open = fleet
            .simulate(&jobs, &mut RoundRobin::default(), &cache)
            .unwrap();
        let mut control = LoadSheddingControl::new(Seconds::new(5.0), 6, 2);
        let shed = fleet
            .simulate_with(
                &jobs,
                &mut RoundRobin::default(),
                &mut control,
                None,
                &cache,
            )
            .unwrap()
            .outcome;
        assert!(shed.shed > 0, "overload never triggered shedding");
        assert_eq!(shed.placements.len() + shed.shed, jobs.len());
        assert!(shed.makespan <= open.makespan);
        assert!(shed.max_wait <= open.max_wait);
        assert_eq!(shed.control, "shed");
    }

    #[test]
    fn final_trace_sample_carries_the_final_shed_count() {
        // Same overload, with telemetry: whether the run ends on a
        // completion or on a trailing shed arrival, the last trace row
        // must reconcile with the outcome's totals.
        let jobs = synthesize_jobs(40, &ConstantDemand::new(2.0), JobMix::default(), 5);
        let mut cfg = FleetConfig::new(1, 1);
        cfg.grid_pitch_mm = 3.0;
        let fleet = Fleet::new(cfg);
        let cache = OutcomeCache::new();
        let mut control = LoadSheddingControl::new(Seconds::new(5.0), 6, 2);
        let result = fleet
            .simulate_with(
                &jobs,
                &mut RoundRobin::default(),
                &mut control,
                Some(&TelemetryConfig::default()),
                &cache,
            )
            .unwrap();
        assert!(result.outcome.shed > 0, "overload never triggered shedding");
        let trace = result.trace.expect("telemetry was on");
        let last = trace.samples().last().expect("trace not empty");
        assert_eq!(last.shed, result.outcome.shed);
        assert_eq!(last.running, 0);
        assert_eq!(last.queued, 0);
    }
}
