//! Jobs and job-stream synthesis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tps_units::Seconds;
use tps_workload::{
    request_stream, synthesize_arrivals, Benchmark, DemandModel, QosClass, ServingDemand,
    WorkloadTrace,
};

/// One unit of work arriving at the fleet: a PARSEC application with a QoS
/// class, an arrival time and a native-configuration service demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Stream-unique identifier (index in arrival order).
    pub id: usize,
    /// The application to run.
    pub bench: Benchmark,
    /// The allowed slowdown class.
    pub qos: QosClass,
    /// Arrival time at the fleet front-end.
    pub arrival: Seconds,
    /// Execution time on the native `(8,16,f_max)` configuration. The
    /// actual runtime is `service × normalized_time` of the configuration
    /// Algorithm 1 selects for the job's QoS class.
    pub service: Seconds,
}

impl Job {
    /// The queueing-delay budget left after the selected configuration's
    /// slowdown: `(q_max − normalized_time) · service`. A job whose wait
    /// exceeds this misses its end-to-end QoS deadline.
    pub fn wait_budget(&self, normalized_time: f64) -> Seconds {
        self.service * (self.qos.max_slowdown() - normalized_time).max(0.0)
    }
}

/// The composition of a synthesized job stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMix {
    /// Relative weights of the 1×/2×/3× QoS classes.
    pub qos_weights: [f64; 3],
    /// Mean native-configuration service time; per-job demands are drawn
    /// from `[0.5, 1.5) × mean` and refined through
    /// [`WorkloadTrace::synthesize`].
    pub mean_service: Seconds,
}

impl Default for JobMix {
    /// A latency-diverse mix: 20 % interactive (1×), 40 % standard (2×),
    /// 40 % batch (3×), with a 40 s mean service time.
    fn default() -> Self {
        Self {
            qos_weights: [0.2, 0.4, 0.4],
            mean_service: Seconds::new(40.0),
        }
    }
}

impl JobMix {
    fn pick_qos(&self, u: f64) -> QosClass {
        let total: f64 = self.qos_weights.iter().sum();
        let mut acc = 0.0;
        for (w, q) in self.qos_weights.iter().zip(QosClass::ALL) {
            acc += w / total;
            if u < acc {
                return q;
            }
        }
        QosClass::ThreeX
    }
}

/// Synthesizes `count` jobs deterministically from `seed`: arrival times
/// from the demand model (Poisson thinning), benchmarks drawn uniformly
/// from the PARSEC suite, QoS classes from the mix weights, and service
/// demands from per-job [`WorkloadTrace`]s.
///
/// # Panics
///
/// Panics if the mix weights do not sum to a positive value or the demand
/// model's peak rate is not positive.
pub fn synthesize_jobs<D: DemandModel>(
    count: usize,
    demand: &D,
    mix: JobMix,
    seed: u64,
) -> Vec<Job> {
    assert!(
        mix.qos_weights.iter().sum::<f64>() > 0.0,
        "QoS mix weights must sum to a positive value"
    );
    let arrivals = synthesize_arrivals(demand, count, seed);
    // Attribute stream decoupled from the arrival stream so changing the
    // demand model does not reshuffle every job's identity.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7c15_9e37_79b9_7f4a);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(id, arrival)| {
            let bench = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
            let qos = mix.pick_qos(rng.gen_range(0.0..1.0));
            let nominal = mix.mean_service.value() * rng.gen_range(0.5..1.5);
            let trace_seed = rng.next_u64();
            let service =
                WorkloadTrace::synthesize(bench, Seconds::new(nominal), trace_seed).duration();
            Job {
                id,
                bench,
                qos,
                arrival,
                service,
            }
        })
        .collect()
}

/// Synthesizes `count` serving requests as kernel-ready [`Job`]s: arrival
/// times and service demands from an open-loop [`request_stream`] over the
/// serving demand model, benchmarks drawn uniformly from the PARSEC suite
/// through the same decoupled attribute stream [`synthesize_jobs`] uses.
///
/// Every request carries the interactive 1× QoS class: any queueing delay
/// at all blows the budget, so the violation count doubles as a
/// queued-request count and dispatchers minimize wait outright.
///
/// # Panics
///
/// Panics if `mean_service` is not positive and finite (via
/// [`request_stream`]).
pub fn synthesize_request_jobs(
    count: usize,
    demand: &ServingDemand,
    mean_service: Seconds,
    seed: u64,
) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7c15_9e37_79b9_7f4a);
    request_stream(*demand, mean_service, seed)
        .take(count)
        .map(|req| {
            let bench = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
            Job {
                id: req.id,
                bench,
                qos: QosClass::OneX,
                arrival: req.arrival,
                service: req.service,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_workload::ConstantDemand;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let d = ConstantDemand::new(1.0);
        let a = synthesize_jobs(60, &d, JobMix::default(), 42);
        let b = synthesize_jobs(60, &d, JobMix::default(), 42);
        let c = synthesize_jobs(60, &d, JobMix::default(), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn jobs_arrive_in_order_with_positive_service() {
        let d = ConstantDemand::new(0.5);
        let jobs = synthesize_jobs(100, &d, JobMix::default(), 7);
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for j in &jobs {
            assert!(j.service.value() > 0.0);
            // Mean 40 s, nominal in [20, 60), trace clips to the request.
            assert!(j.service.value() < 61.0, "service {}", j.service);
        }
    }

    #[test]
    fn qos_mix_is_respected() {
        let d = ConstantDemand::new(1.0);
        let mix = JobMix {
            qos_weights: [1.0, 0.0, 0.0],
            mean_service: Seconds::new(10.0),
        };
        let jobs = synthesize_jobs(40, &d, mix, 3);
        assert!(jobs.iter().all(|j| j.qos == QosClass::OneX));
    }

    #[test]
    fn wait_budget_scales_with_slack() {
        let job = Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        };
        // Config at 1.5× slowdown leaves 0.5 × 30 s of queueing slack.
        assert!((job.wait_budget(1.5).value() - 15.0).abs() < 1e-12);
        // An exactly-at-deadline config leaves none; over-deadline clamps.
        assert_eq!(job.wait_budget(2.0), Seconds::ZERO);
        assert_eq!(job.wait_budget(2.5), Seconds::ZERO);
    }

    #[test]
    fn request_jobs_are_interactive_and_deterministic() {
        let d = ServingDemand::new(
            0.4,
            2.0,
            Seconds::new(600.0),
            2.5,
            Seconds::new(30.0),
            Seconds::new(120.0),
            42,
        );
        let a = synthesize_request_jobs(80, &d, Seconds::new(2.0), 42);
        let b = synthesize_request_jobs(80, &d, Seconds::new(2.0), 42);
        let c = synthesize_request_jobs(80, &d, Seconds::new(2.0), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 80);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for j in &a {
            assert_eq!(j.qos, QosClass::OneX);
            // Requests are short: mean 2 s, uniform in [1, 3).
            assert!((1.0..3.0).contains(&j.service.value()), "{}", j.service);
        }
    }
}
