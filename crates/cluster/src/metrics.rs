//! Aggregate fleet metrics: energy integration over the event timeline,
//! and the time-series telemetry the kernel samples along the way.

use crate::cache::SteadyState;
use crate::catalog::ClassId;
use crate::fleet::FleetConfig;
use std::collections::VecDeque;
use tps_cooling::pue;
use tps_units::{Celsius, Joules, Seconds, Watts};

/// One job's placement and execution window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The job's id.
    pub job: usize,
    /// Global server index.
    pub server: usize,
    /// Rack index.
    pub rack: usize,
    /// Catalog class of the server it ran on.
    pub class: ClassId,
    /// Execution start (arrival + queueing).
    pub start: Seconds,
    /// Execution end.
    pub end: Seconds,
    /// Queueing delay.
    pub wait: Seconds,
    /// Whether the wait blew the job's QoS budget.
    pub violated: bool,
    /// The cached per-server outcome backing this placement.
    pub state: SteadyState,
}

/// A fixed-bucket latency histogram: the streaming percentile sketch for
/// serving mode. Integer bucket counts make every quantile a pure function
/// of the recorded multiset — no floating accumulation, so the answer is
/// byte-identical regardless of recording order, thread count or queue
/// backend.
///
/// Each recorded latency lands in the bucket `⌊latency / width⌋`; values
/// past the last bucket saturate into an overflow bucket. A quantile is
/// reported as the *upper edge* of the bucket holding the rank-`⌈q·n⌉`
/// sample (overflow saturates to the top edge), so reported percentiles
/// are conservative to within one bucket width.
///
/// ```
/// use tps_cluster::LatencyHistogram;
/// use tps_units::Seconds;
///
/// let mut h = LatencyHistogram::default(); // 10 ms × 6000 buckets
/// for ms in [5.0, 15.0, 15.0, 47.0] {
///     h.record(Seconds::new(ms / 1000.0));
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.quantile(0.5), Some(Seconds::new(0.02))); // 15 ms bucket edge
/// assert_eq!(h.quantile(1.0), Some(Seconds::new(0.05)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    width_ms: u32,
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    /// 10 ms buckets covering 60 s, plus the overflow bucket.
    fn default() -> Self {
        Self::new(10, 6_000)
    }
}

impl LatencyHistogram {
    /// A histogram of `buckets` regular buckets of `width_ms` milliseconds
    /// each, plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `width_ms` or `buckets` is zero.
    pub fn new(width_ms: u32, buckets: usize) -> Self {
        assert!(width_ms > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            width_ms,
            counts: vec![0; buckets + 1],
            total: 0,
        }
    }

    /// The regular-bucket width in seconds.
    pub fn width(&self) -> Seconds {
        Seconds::new(f64::from(self.width_ms) / 1000.0)
    }

    /// Records one latency (negative values clamp to the first bucket,
    /// values past the range saturate into the overflow bucket).
    pub fn record(&mut self, latency: Seconds) {
        let width = f64::from(self.width_ms) / 1000.0;
        let regular = self.counts.len() - 1;
        let idx = ((latency.value() / width).max(0.0) as usize).min(regular);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Recorded latency count.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets all counts (the bucket layout is kept).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// The `q`-quantile as the upper edge of the bucket holding the
    /// rank-`max(1, ⌈q·n⌉)` recorded latency, or `None` while empty.
    /// Overflowed samples report the top regular edge (the sketch's
    /// saturation point).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 1`.
    pub fn quantile(&self, q: f64) -> Option<Seconds> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let width = f64::from(self.width_ms) / 1000.0;
        let regular = self.counts.len() - 1;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Seconds::new((idx.min(regular - 1) + 1) as f64 * width));
            }
        }
        unreachable!("rank ≤ total is always reached")
    }
}

/// The serving-mode slice of a [`FleetOutcome`]: whole-run latency
/// percentiles from the [`LatencyHistogram`] sketch and the active-server
/// trajectory the autoscaler drove.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingOutcome {
    /// Requests placed (same as the placement count).
    pub requests: usize,
    /// Median request latency (dispatch wait + service).
    pub latency_p50: Seconds,
    /// 95th-percentile request latency.
    pub latency_p95: Seconds,
    /// 99th-percentile request latency.
    pub latency_p99: Seconds,
    /// Time-weighted mean of the active-server count over the run.
    pub mean_active_servers: f64,
    /// Smallest active-server count the controller reached.
    pub min_active_servers: usize,
    /// Largest active-server count the controller reached.
    pub max_active_servers: usize,
}

/// The aggregate result of one fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The dispatcher that produced this outcome.
    pub dispatcher: &'static str,
    /// The control policy that steered the run (`"static"` for the
    /// open-loop simulator).
    pub control: &'static str,
    /// All placements, in dispatch order.
    pub placements: Vec<Placement>,
    /// End of the last execution.
    pub makespan: Seconds,
    /// IT energy: active packages plus the idle floor of empty servers.
    pub it_energy: Joules,
    /// Chiller electrical energy across all racks.
    pub cooling_energy: Joules,
    /// Jobs whose queueing delay blew their QoS budget.
    pub violations: usize,
    /// Arrivals rejected by admission control (never placed).
    pub shed: usize,
    /// Mean queueing delay.
    pub mean_wait: Seconds,
    /// Worst queueing delay.
    pub max_wait: Seconds,
    /// Highest instantaneous heat any rack carried.
    pub peak_rack_heat: Watts,
    /// Catalog class names, in class-id order (one entry on a
    /// homogeneous fleet).
    pub class_names: Vec<String>,
    /// Active package energy per class (the idle floor is fleet-wide and
    /// stays in [`it_energy`](Self::it_energy) only).
    pub class_it_energy: Vec<Joules>,
    /// QoS violations per class.
    pub class_violations: Vec<usize>,
    /// Placements per class.
    pub class_placements: Vec<usize>,
    /// Latency percentiles and active-server trajectory, filled only by
    /// serving-mode runs (`None` keeps batch outcomes bit-identical).
    pub serving: Option<ServingOutcome>,
}

impl FleetOutcome {
    /// IT plus cooling energy.
    pub fn total_energy(&self) -> Joules {
        self.it_energy + self.cooling_energy
    }

    /// Energy-based power usage effectiveness over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the run consumed no IT energy (empty job stream).
    pub fn pue(&self) -> f64 {
        pue(
            Watts::new(self.it_energy.value()),
            Watts::new(self.cooling_energy.value()),
        )
    }
}

/// Event-kernel execution counters for one run: how much event traffic
/// the simulation generated and how deep the queue ran. Diagnostic only —
/// never part of the byte-determinism surface ([`FleetOutcome`] and the
/// trace CSV exclude it), so perf-motivated queue changes can move these
/// numbers without breaking golden outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events pushed (= processed: the kernel drains its queue).
    pub events: u64,
    /// Most events pending at once.
    pub peak_queue_depth: usize,
    /// High-water mark of the calendar queue's entry arena (equals the
    /// peak depth under the heap queue, which has no arena).
    pub arena_high_water: usize,
    /// Demand-state lookups served lock-free off the frozen
    /// [`SolveTable`](crate::SolveTable) epoch.
    pub table_hits: usize,
    /// Demand-state lookups the table lacked, solved through the striped
    /// miss path (always 0 once a covering table is published).
    pub miss_solves: usize,
    /// Cache lock acquisitions observed over the run — stripe and
    /// publication locks. A steady-state replay on a covering table
    /// reads **zero**; the determinism smoke asserts it.
    pub lock_acquisitions: usize,
    /// Per-hall traffic when the run was sharded (one entry per hall,
    /// ascending by rack range; a single entry covering every rack for
    /// `shards = 1`).
    pub halls: Vec<HallStats>,
}

/// One hall's share of the kernel traffic — how the `--shards` partition
/// actually split the work. Diagnostic only, like the rest of
/// [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HallStats {
    /// Hall index (ascending by rack range).
    pub hall: usize,
    /// First rack the hall owns.
    pub rack_lo: usize,
    /// One past the last rack the hall owns.
    pub rack_hi: usize,
    /// Placements committed into this hall's racks.
    pub placements: u64,
    /// Placements expired out of this hall's racks.
    pub expiries: u64,
}

/// One result of [`Fleet::simulate_with`](crate::Fleet::simulate_with):
/// the aggregate outcome plus the telemetry trace when sampling was on.
#[derive(Debug)]
pub struct SimResult {
    /// The aggregate outcome (energy, QoS, placements).
    pub outcome: FleetOutcome,
    /// The sampled time series (`None` when telemetry was off).
    pub trace: Option<FleetTrace>,
    /// Kernel execution counters (event count, queue depth, arena size).
    pub stats: KernelStats,
}

/// Telemetry sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Interval between [`FleetSample`]s.
    pub sample_interval: Seconds,
    /// Ring capacity: the trace keeps the most recent `capacity` samples
    /// and counts the rest as dropped (never silently).
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    /// A 30 s cadence with a 16 384-sample ring (≈ 5.7 simulated days).
    fn default() -> Self {
        Self {
            sample_interval: Seconds::new(30.0),
            capacity: 16_384,
        }
    }
}

/// One telemetry sample: the fleet as the kernel saw it at `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSample {
    /// Sample instant.
    pub t: Seconds,
    /// Chiller/heat-reuse set-point in force.
    pub setpoint: Celsius,
    /// Placements queued behind busy servers.
    pub queued: usize,
    /// Placements executing.
    pub running: usize,
    /// Arrivals shed so far.
    pub shed: usize,
    /// QoS violations so far.
    pub violations: usize,
    /// Instantaneous IT power (active packages + idle floor).
    pub it_power: Watts,
    /// Instantaneous chiller electrical power across all racks.
    pub cooling_power: Watts,
    /// Per-rack heat carried by *running* jobs.
    pub rack_heat: Vec<Watts>,
    /// Per-rack shared water temperature (coldest running demand), `None`
    /// while a rack is idle.
    pub rack_water: Vec<Option<Celsius>>,
    /// Running placements per catalog class.
    pub class_running: Vec<usize>,
    /// Active package power per catalog class.
    pub class_it_power: Vec<Watts>,
    /// Serving-mode columns (`None` in batch mode, keeping batch traces
    /// byte-identical to their pre-serving form).
    pub serving: Option<ServingSample>,
}

/// The serving-mode slice of one [`FleetSample`]: the active-server count
/// and cumulative latency percentiles as of the sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSample {
    /// Servers currently active (eligible for placement).
    pub active_servers: usize,
    /// Cumulative median request latency so far.
    pub p50: Seconds,
    /// Cumulative 95th-percentile request latency so far.
    pub p95: Seconds,
    /// Cumulative 99th-percentile request latency so far.
    pub p99: Seconds,
}

/// A bounded ring of [`FleetSample`]s with deterministic fixed-precision
/// CSV emission (two runs of the same scenario — at any thread count —
/// emit byte-identical files; the CI smoke diffs them).
///
/// ```
/// use tps_cluster::{FleetSample, FleetTrace};
/// use tps_units::{Celsius, Seconds, Watts};
///
/// let mut trace = FleetTrace::new(1, 8);
/// trace.push(FleetSample {
///     t: Seconds::ZERO,
///     setpoint: Celsius::new(70.0),
///     queued: 0,
///     running: 1,
///     shed: 0,
///     violations: 0,
///     it_power: Watts::new(120.0),
///     cooling_power: Watts::new(8.5),
///     rack_heat: vec![Watts::new(95.0)],
///     rack_water: vec![Some(Celsius::new(61.5))],
///     class_running: vec![1],
///     class_it_power: vec![Watts::new(120.0)],
///     serving: None,
/// });
/// let csv = trace.to_csv();
/// assert!(csv.starts_with("t_s,setpoint_c,queued,running,shed,violations"));
/// assert!(csv.contains("0.000,70.00,0,1,0,0,120.000,8.500,95.000,61.50"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    samples: VecDeque<FleetSample>,
    racks: usize,
    /// Catalog class names; per-class columns are emitted only when the
    /// fleet declares more than one class, so homogeneous traces keep
    /// the exact pre-catalog column set.
    class_names: Vec<String>,
    capacity: usize,
    dropped: usize,
    /// Serving-mode columns on; batch traces never set this, keeping
    /// their column set byte-identical to the pre-serving format.
    serving: bool,
}

impl FleetTrace {
    /// An empty trace over `racks` racks keeping at most `capacity`
    /// samples (single-class fleet: no per-class columns).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(racks: usize, capacity: usize) -> Self {
        Self::with_classes(racks, vec!["default".to_owned()], capacity)
    }

    /// An empty trace over `racks` racks and the given catalog classes.
    /// Per-class `<name>_running`/`<name>_it_w` columns are emitted when
    /// more than one class is named.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `class_names` is empty.
    pub fn with_classes(racks: usize, class_names: Vec<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        assert!(!class_names.is_empty(), "a fleet has at least one class");
        Self {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            racks,
            class_names,
            capacity,
            dropped: 0,
            serving: false,
        }
    }

    /// Turns on the serving-mode columns
    /// (`active_servers,lat_p50_s,lat_p95_s,lat_p99_s`). The serving
    /// kernel calls this; batch traces never do, so their CSV stays
    /// byte-identical to the pre-serving format.
    pub fn enable_serving(&mut self) {
        self.serving = true;
    }

    /// Whether the serving-mode columns are emitted.
    pub fn serving(&self) -> bool {
        self.serving
    }

    /// Appends a sample, dropping (and counting) the oldest when full.
    pub fn push(&mut self, sample: FleetSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &FleetSample> {
        self.samples.iter()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of racks each sample covers.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// The full trace as CSV: header plus one line per retained sample,
    /// floats at fixed precision, idle racks' water column empty.
    /// Heterogeneous fleets (more than one class) append per-class
    /// `<name>_running,<name>_it_w` columns; single-class traces keep the
    /// exact homogeneous column set.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,setpoint_c,queued,running,shed,violations,it_w,cool_w");
        for r in 0..self.racks {
            out.push_str(&format!(",rack{r}_heat_w,rack{r}_water_c"));
        }
        let classes = if self.class_names.len() > 1 {
            self.class_names.len()
        } else {
            0
        };
        for name in self.class_names.iter().take(classes) {
            let name: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            out.push_str(&format!(",{name}_running,{name}_it_w"));
        }
        if self.serving {
            out.push_str(",active_servers,lat_p50_s,lat_p95_s,lat_p99_s");
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:.2},{},{},{},{},{:.3},{:.3}",
                s.t.value(),
                s.setpoint.value(),
                s.queued,
                s.running,
                s.shed,
                s.violations,
                s.it_power.value(),
                s.cooling_power.value(),
            ));
            for r in 0..self.racks {
                match s.rack_water.get(r).copied().flatten() {
                    Some(w) => {
                        out.push_str(&format!(",{:.3},{:.2}", s.rack_heat[r].value(), w.value()))
                    }
                    None => out.push_str(&format!(",{:.3},", s.rack_heat[r].value())),
                }
            }
            for c in 0..classes {
                out.push_str(&format!(
                    ",{},{:.3}",
                    s.class_running.get(c).copied().unwrap_or(0),
                    s.class_it_power.get(c).map_or(0.0, |p| p.value()),
                ));
            }
            if self.serving {
                match s.serving {
                    Some(sv) => out.push_str(&format!(
                        ",{},{:.3},{:.3},{:.3}",
                        sv.active_servers,
                        sv.p50.value(),
                        sv.p95.value(),
                        sv.p99.value(),
                    )),
                    None => out.push_str(",0,0.000,0.000,0.000"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Integrates fleet power over the piecewise-constant event timeline.
///
/// Between consecutive placement starts/ends nothing changes, so each
/// interval contributes `power × dt`: per rack, the chiller electricity of
/// the interval's heat at the interval's shared water temperature
/// (minimum of the co-hosted jobs' tolerable maxima); fleet-wide, the
/// active packages plus the idle floor of unoccupied servers. Set-point
/// changes from the control timeline swap the chiller between windows
/// (an empty timeline reproduces the fixed-chiller integration exactly,
/// bit for bit). Activation changes from the autoscale timeline move the
/// idle-floor base between windows: only *active* unoccupied servers burn
/// idle power, while servers still draining a placement keep their active
/// package power regardless (an empty activation timeline reproduces the
/// full-fleet idle floor exactly).
pub(crate) fn integrate_energy(
    dispatcher: &'static str,
    control: &'static str,
    placements: Vec<Placement>,
    shed: usize,
    config: &FleetConfig,
    class_names: &[String],
    setpoints: &[(Seconds, Celsius)],
    activations: &[(Seconds, usize)],
) -> FleetOutcome {
    // One +/− event per placement boundary, swept in time order so each
    // window is O(racks) instead of O(placements): removals before
    // set-point changes before additions at equal times (a placement
    // covers `[start, end)`), then a fixed (rack, kind) order so float
    // accumulation is deterministic. The heat/water/pin-to-zero rules
    // mirror `engine::RackLoads` (see its invariant note): a change to
    // one accumulation must land in both, or the dispatch-time and
    // integration-time views of rack state diverge. The per-class
    // accumulators ride along in separate sums: they never feed the
    // fleet-wide `it`/`cooling` totals, so the homogeneous integration
    // stays bit-identical.
    const REMOVE: u8 = 0;
    const SETPOINT: u8 = 1;
    const ACTIVATION: u8 = 2;
    const ADD: u8 = 3;
    struct Event {
        time: f64,
        kind: u8,
        rack: usize,
        class: ClassId,
        heat: f64,
        // Tolerable-water key: `to_bits` is monotone for the non-negative
        // temperatures in play, and round-trips the exact f64.
        water_bits: u64,
        power: f64,
        // Position in the pre-sort event vector: makes the sort key total,
        // so an in-place unstable sort reproduces the stable order (same
        // float accumulation, bit for bit) without the stable sort's
        // half-array scratch allocation.
        seq: u32,
    }
    // Two streams instead of one flat vector: removals (always arriving
    // out of order — ends are starts plus varying runtimes) and everything
    // else (starts usually arrive already in time order, plus the rare
    // set-point/activation changes). The kinds never overlap across the
    // streams, so a two-pointer merge under the same `(time, kind, rack,
    // seq)` key replays the single-vector sort exactly — while only the
    // 1M-element removal stream ever pays for a full sort.
    let mut others: Vec<Event> = Vec::with_capacity(placements.len() + setpoints.len());
    let mut removes: Vec<Event> = Vec::with_capacity(placements.len());
    for p in &placements {
        if p.end.value() > p.start.value() {
            let make = |time: f64, kind: u8, seq: u32| Event {
                time,
                kind,
                rack: p.rack,
                class: p.class,
                heat: p.state.heat.value(),
                water_bits: p.state.max_water_temp.value().to_bits(),
                power: p.state.package_power.value(),
                seq,
            };
            others.push(make(p.start.value(), ADD, others.len() as u32));
            removes.push(make(p.end.value(), REMOVE, removes.len() as u32));
        }
    }
    let first_start = others.iter().map(|e| e.time).fold(f64::INFINITY, f64::min);
    let last_end = removes.iter().map(|e| e.time).fold(0.0f64, f64::max);
    // The chiller in force when integration starts is the last set-point
    // at or before the first placement start; changes strictly inside
    // the timeline become events. Changes at/after the last end are
    // irrelevant (and must not stretch the idle-floor integration).
    let mut chiller = config.chiller.clone();
    for &(t, c) in setpoints {
        if t.value() <= first_start {
            chiller = config.chiller.with_ambient(c);
        } else if t.value() < last_end {
            others.push(Event {
                time: t.value(),
                kind: SETPOINT,
                rack: 0,
                class: 0,
                heat: 0.0,
                water_bits: c.value().to_bits(),
                power: 0.0,
                seq: others.len() as u32,
            });
        }
    }
    // The active-server count in force at integration start; changes
    // strictly inside the timeline carry the new count in `rack`.
    let mut active = config.total_servers();
    for &(t, n) in activations {
        if t.value() <= first_start {
            active = n;
        } else if t.value() < last_end {
            others.push(Event {
                time: t.value(),
                kind: ACTIVATION,
                rack: n,
                class: 0,
                heat: 0.0,
                water_bits: 0,
                power: 0.0,
                seq: others.len() as u32,
            });
        }
    }
    // Per-stream seq indices replay the flat-vector tie-break: seq only
    // ever compares events of equal `(time, kind, rack)`, which always
    // live in the same stream, and each stream preserves build order.
    let by_key = |a: &Event, b: &Event| {
        a.time
            .total_cmp(&b.time)
            .then(a.kind.cmp(&b.kind))
            .then(a.rack.cmp(&b.rack))
            .then(a.seq.cmp(&b.seq))
    };
    if !others
        .windows(2)
        .all(|w| by_key(&w[0], &w[1]) != std::cmp::Ordering::Greater)
    {
        others.sort_unstable_by(by_key);
    }
    removes.sort_unstable_by(by_key);
    let makespan = last_end;

    let n_classes = class_names.len().max(1);
    let mut it = 0.0;
    let mut cooling = 0.0;
    let mut peak_rack_heat = 0.0f64;
    let mut busy = 0usize;
    let mut active_power = 0.0;
    // Per-rack window state packed into one struct: the window walk below
    // reads heat, the cached chiller draw and its validity per occupied
    // rack, and one cache line beats four scattered arrays.
    #[derive(Clone)]
    struct RackAcc {
        heat: f64,
        power: f64,
        era: u64,
        dirty: bool,
    }
    let mut acc = vec![
        RackAcc {
            heat: 0.0,
            power: 0.0,
            era: 0,
            dirty: true,
        };
        config.racks
    ];
    // Ascending sorted `(key, count)` vectors, not `BTreeMap`s: few
    // distinct keys per rack, and the capacity survives rack drains, so
    // the 2M-event sweep never allocates tree nodes.
    let mut rack_water: Vec<Vec<(u64, u32)>> = vec![Vec::new(); config.racks];
    let mut class_busy = vec![0usize; n_classes];
    let mut class_power = vec![0.0f64; n_classes];
    let mut class_it = vec![0.0f64; n_classes];
    // Only racks with committed water contribute cooling (and drained
    // racks are pinned to exactly 0.0 heat, so they can't move the peak
    // either): the window body walks the occupied set, ascending by rack
    // so the float accumulation order matches the full 0..racks scan it
    // replaces. Each rack's chiller draw is cached and recomputed only
    // when its load (dirty flag) or the chiller (era) moved — the same
    // pure expression either way, so the cached value is bit-identical.
    // A sorted vector, not a BTreeSet: the per-window walk dominates this
    // sweep, and a contiguous ascending scan is both faster and exactly
    // the same visit order (so the same float accumulation).
    let mut occupied: Vec<u32> = Vec::new();
    let mut era = 0u64;
    let (mut ri, mut oi) = (0usize, 0usize);
    // The head of the merged stream. Removals sort before every other
    // kind at equal times (REMOVE is the smallest kind), so the min of
    // the two stream heads is always the global head.
    let next_time = |ri: usize, oi: usize| match (removes.get(ri), others.get(oi)) {
        (Some(r), Some(o)) => Some(r.time.min(o.time)),
        (Some(r), None) => Some(r.time),
        (None, Some(o)) => Some(o.time),
        (None, None) => None,
    };
    while let Some(t) = next_time(ri, oi) {
        while ri < removes.len() && removes[ri].time == t {
            let e = &removes[ri];
            busy -= 1;
            active_power -= e.power;
            acc[e.rack].heat -= e.heat;
            class_busy[e.class] -= 1;
            class_power[e.class] -= e.power;
            if let Ok(at) = rack_water[e.rack].binary_search_by_key(&e.water_bits, |w| w.0) {
                rack_water[e.rack][at].1 -= 1;
                if rack_water[e.rack][at].1 == 0 {
                    rack_water[e.rack].remove(at);
                }
            }
            // Pin drained sums back to exact zero so float residue
            // never leaks into later windows.
            if rack_water[e.rack].is_empty() {
                acc[e.rack].heat = 0.0;
                if let Ok(at) = occupied.binary_search(&(e.rack as u32)) {
                    occupied.remove(at);
                }
            }
            acc[e.rack].dirty = true;
            if class_busy[e.class] == 0 {
                class_power[e.class] = 0.0;
            }
            if busy == 0 {
                active_power = 0.0;
            }
            ri += 1;
        }
        while oi < others.len() && others[oi].time == t {
            let e = &others[oi];
            match e.kind {
                SETPOINT => {
                    chiller = config
                        .chiller
                        .with_ambient(Celsius::new(f64::from_bits(e.water_bits)));
                    era += 1;
                }
                ACTIVATION => {
                    active = e.rack;
                }
                _ => {
                    busy += 1;
                    active_power += e.power;
                    acc[e.rack].heat += e.heat;
                    // The running max only ever grows at additions (heat
                    // is non-negative and drains pin back to zero), so
                    // observing it here instead of once per window sees
                    // every candidate the window walk saw — same max,
                    // without the per-window pass.
                    peak_rack_heat = peak_rack_heat.max(acc[e.rack].heat);
                    class_busy[e.class] += 1;
                    class_power[e.class] += e.power;
                    if rack_water[e.rack].is_empty() {
                        if let Err(at) = occupied.binary_search(&(e.rack as u32)) {
                            occupied.insert(at, e.rack as u32);
                        }
                    }
                    match rack_water[e.rack].binary_search_by_key(&e.water_bits, |w| w.0) {
                        Ok(at) => rack_water[e.rack][at].1 += 1,
                        Err(at) => rack_water[e.rack].insert(at, (e.water_bits, 1)),
                    }
                    acc[e.rack].dirty = true;
                }
            }
            oi += 1;
        }
        let Some(next) = next_time(ri, oi) else { break };
        let dt = next - t;
        if dt <= 0.0 {
            continue;
        }
        // Draining servers past a scale-down outnumbering `active` is
        // fine: their package power is in `active_power` and no idle
        // floor remains.
        let idle = active.saturating_sub(busy) as f64 * config.idle_server_power.value();
        it += (active_power + idle) * dt;
        for (sum, power) in class_it.iter_mut().zip(&class_power) {
            *sum += power * dt;
        }
        for &r in &occupied {
            let a = &mut acc[r as usize];
            if a.dirty || a.era != era {
                let &(bits, _) = rack_water[r as usize]
                    .first()
                    .expect("occupied racks have committed water");
                a.power = chiller
                    .electrical_power(
                        Watts::new(a.heat.max(0.0)),
                        tps_units::Celsius::new(f64::from_bits(bits)),
                    )
                    .value();
                a.dirty = false;
                a.era = era;
            }
            cooling += a.power * dt;
        }
    }

    let makespan = Seconds::new(makespan);
    let n = placements.len();
    let mean_wait = if n == 0 {
        Seconds::ZERO
    } else {
        placements.iter().map(|p| p.wait).sum::<Seconds>() / n as f64
    };
    let max_wait = placements
        .iter()
        .map(|p| p.wait)
        .fold(Seconds::ZERO, Seconds::max);
    let violations = placements.iter().filter(|p| p.violated).count();
    let mut class_violations = vec![0usize; n_classes];
    let mut class_placements = vec![0usize; n_classes];
    for p in &placements {
        class_placements[p.class] += 1;
        if p.violated {
            class_violations[p.class] += 1;
        }
    }
    FleetOutcome {
        dispatcher,
        control,
        placements,
        makespan,
        it_energy: Joules::new(it),
        cooling_energy: Joules::new(cooling),
        violations,
        shed,
        mean_wait,
        max_wait,
        peak_rack_heat: Watts::new(peak_rack_heat),
        class_names: if class_names.is_empty() {
            vec!["default".to_owned()]
        } else {
            class_names.to_vec()
        },
        class_it_energy: class_it.into_iter().map(Joules::new).collect(),
        class_violations,
        class_placements,
        serving: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use tps_units::Celsius;

    fn state(heat: f64, max_water: f64) -> SteadyState {
        SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(max_water),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        }
    }

    fn placement(server: usize, rack: usize, start: f64, end: f64, s: SteadyState) -> Placement {
        Placement {
            job: 0,
            server,
            rack,
            class: 0,
            start: Seconds::new(start),
            end: Seconds::new(end),
            wait: Seconds::ZERO,
            violated: false,
            state: s,
        }
    }

    fn tiny_config() -> FleetConfig {
        let mut cfg = FleetConfig::new(2, 1);
        cfg.idle_server_power = Watts::ZERO;
        cfg
    }

    fn names() -> Vec<String> {
        vec!["default".to_owned()]
    }

    fn integrate(placements: Vec<Placement>, cfg: &FleetConfig) -> FleetOutcome {
        integrate_energy("test", "static", placements, 0, cfg, &names(), &[], &[])
    }

    #[test]
    fn it_energy_is_power_times_time() {
        let cfg = tiny_config();
        let out = integrate(vec![placement(0, 0, 0.0, 10.0, state(50.0, 80.0))], &cfg);
        assert!((out.it_energy.value() - 500.0).abs() < 1e-9);
        assert_eq!(out.makespan, Seconds::new(10.0));
        assert_eq!(out.peak_rack_heat, Watts::new(50.0));
        assert_eq!(out.control, "static");
        assert_eq!(out.shed, 0);
    }

    #[test]
    fn cold_job_contaminates_cohosted_heat() {
        // Same two jobs; on one rack the cold job forces *all* heat through
        // the compressor, on separate racks only its own.
        let cfg = tiny_config(); // chiller: 60 °C heat-reuse loop
        let cold = state(70.0, 60.0); // below the 65 °C bypass threshold
        let warm = state(70.0, 80.0); // free-cools
        let together = integrate(
            vec![
                placement(0, 0, 0.0, 10.0, cold),
                placement(0, 0, 0.0, 10.0, warm),
            ],
            &cfg,
        );
        let apart = integrate(
            vec![
                placement(0, 0, 0.0, 10.0, cold),
                placement(1, 1, 0.0, 10.0, warm),
            ],
            &cfg,
        );
        assert!(
            together.cooling_energy.value() > apart.cooling_energy.value() * 1.3,
            "together {} vs apart {}",
            together.cooling_energy,
            apart.cooling_energy
        );
        assert_eq!(together.it_energy, apart.it_energy);
    }

    #[test]
    fn idle_floor_counts_toward_it_energy() {
        let mut cfg = tiny_config();
        cfg.idle_server_power = Watts::new(10.0);
        let out = integrate(vec![placement(0, 0, 0.0, 10.0, state(50.0, 80.0))], &cfg);
        // One busy server at 50 W + one idle at 10 W over 10 s.
        assert!((out.it_energy.value() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn waits_and_violations_aggregate() {
        let cfg = tiny_config();
        let mut a = placement(0, 0, 5.0, 10.0, state(50.0, 80.0));
        a.wait = Seconds::new(5.0);
        a.violated = true;
        let b = placement(1, 1, 0.0, 10.0, state(50.0, 80.0));
        let out = integrate(vec![a, b], &cfg);
        assert_eq!(out.violations, 1);
        assert_eq!(out.max_wait, Seconds::new(5.0));
        assert!((out.mean_wait.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn setpoint_changes_swap_the_chiller_between_windows() {
        // One 70 W / 60 °C-tolerant job for 10 s. Under the default 70 °C
        // heat-reuse loop it pays compressor lift the whole time; a
        // mid-run set-point drop to 40 °C puts the second half in free
        // cooling (supply ≥ ambient + approach).
        let cfg = tiny_config();
        let job = state(70.0, 60.0);
        let fixed = integrate(vec![placement(0, 0, 0.0, 10.0, job)], &cfg);
        let stepped = integrate_energy(
            "test",
            "setpoint",
            vec![placement(0, 0, 0.0, 10.0, job)],
            0,
            &cfg,
            &names(),
            &[(Seconds::new(5.0), Celsius::new(40.0))],
            &[],
        );
        assert!(
            stepped.cooling_energy.value() < fixed.cooling_energy.value() * 0.7,
            "stepped {} vs fixed {}",
            stepped.cooling_energy,
            fixed.cooling_energy
        );
        // IT energy never depends on the chiller.
        assert_eq!(stepped.it_energy, fixed.it_energy);
        assert_eq!(stepped.control, "setpoint");

        // A half-COP check: the first 5 s match the fixed run's first
        // half; the second 5 s run at the free-cooling COP cap.
        let half_fixed = fixed.cooling_energy.value() / 2.0;
        let free_half = 70.0 / 20.0 * 5.0; // heat / max_cop × dt
        assert!(
            (stepped.cooling_energy.value() - (half_fixed + free_half)).abs() < 1e-9,
            "stepped {} vs expected {}",
            stepped.cooling_energy,
            half_fixed + free_half
        );
    }

    #[test]
    fn setpoints_before_the_first_start_set_the_initial_chiller() {
        let cfg = tiny_config();
        let job = state(70.0, 60.0);
        let programmed = integrate_energy(
            "test",
            "setpoint",
            vec![placement(0, 0, 10.0, 20.0, job)],
            0,
            &cfg,
            &names(),
            &[(Seconds::ZERO, Celsius::new(40.0))],
            &[],
        );
        // The whole run free-cools, and the pre-start change neither adds
        // an integration window nor any idle-floor energy before t = 10.
        let expected_cool = 70.0 / 20.0 * 10.0;
        assert!((programmed.cooling_energy.value() - expected_cool).abs() < 1e-9);
        assert!((programmed.it_energy.value() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn setpoints_past_the_makespan_are_ignored() {
        let cfg = tiny_config();
        let job = state(50.0, 80.0);
        let out = integrate_energy(
            "test",
            "setpoint",
            vec![placement(0, 0, 0.0, 10.0, job)],
            0,
            &cfg,
            &names(),
            &[(Seconds::new(10.0), Celsius::new(40.0))],
            &[],
        );
        let plain = integrate(vec![placement(0, 0, 0.0, 10.0, job)], &cfg);
        assert_eq!(out.makespan, Seconds::new(10.0));
        assert_eq!(out.it_energy, plain.it_energy);
        assert_eq!(out.cooling_energy, plain.cooling_energy);
    }

    #[test]
    fn trace_ring_drops_oldest_and_counts() {
        let mut trace = FleetTrace::new(1, 2);
        for i in 0..4 {
            trace.push(FleetSample {
                t: Seconds::new(f64::from(i)),
                setpoint: Celsius::new(70.0),
                queued: 0,
                running: 0,
                shed: 0,
                violations: 0,
                it_power: Watts::ZERO,
                cooling_power: Watts::ZERO,
                rack_heat: vec![Watts::ZERO],
                rack_water: vec![None],
                class_running: vec![0],
                class_it_power: vec![Watts::ZERO],
                serving: None,
            });
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 2);
        let times: Vec<f64> = trace.samples().map(|s| s.t.value()).collect();
        assert_eq!(times, vec![2.0, 3.0]);
        // Idle rack: empty water field, trailing comma preserved.
        assert!(trace.to_csv().lines().nth(1).unwrap().ends_with("0.000,"));
    }

    #[test]
    fn serving_columns_appear_only_when_enabled() {
        let sample = |serving| FleetSample {
            t: Seconds::ZERO,
            setpoint: Celsius::new(70.0),
            queued: 0,
            running: 0,
            shed: 0,
            violations: 0,
            it_power: Watts::ZERO,
            cooling_power: Watts::ZERO,
            rack_heat: vec![Watts::ZERO],
            rack_water: vec![None],
            class_running: vec![0],
            class_it_power: vec![Watts::ZERO],
            serving,
        };
        let mut batch = FleetTrace::new(1, 4);
        batch.push(sample(None));
        assert!(!batch.to_csv().contains("active_servers"));

        let mut serving = FleetTrace::new(1, 4);
        serving.enable_serving();
        serving.push(sample(Some(ServingSample {
            active_servers: 12,
            p50: Seconds::new(0.25),
            p95: Seconds::new(1.5),
            p99: Seconds::new(3.0),
        })));
        let csv = serving.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with(",active_servers,lat_p50_s,lat_p95_s,lat_p99_s"));
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .ends_with(",12,0.250,1.500,3.000"));
    }

    #[test]
    fn latency_histogram_quantiles_hit_bucket_edges() {
        let mut h = LatencyHistogram::new(100, 50); // 0.1 s × 50
        for v in [0.05, 0.15, 0.15, 0.32, 0.99, 7.0] {
            h.record(Seconds::new(v));
        }
        assert_eq!(h.len(), 6);
        // Rank math: ceil(0.5 × 6) = 3 → the second 0.15 s sample,
        // bucket [0.1, 0.2) → edge 0.2.
        assert_eq!(h.quantile(0.5), Some(Seconds::new(0.2)));
        assert_eq!(h.quantile(1.0 / 6.0), Some(Seconds::new(0.1)));
        // The 7 s outlier saturates into overflow: top edge 5 s.
        assert_eq!(h.quantile(1.0), Some(Seconds::new(5.0)));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), None);
    }

    #[test]
    fn latency_histogram_saturates_past_the_range() {
        let mut h = LatencyHistogram::new(10, 100); // covers 1 s
        h.record(Seconds::new(250.0));
        h.record(Seconds::new(f64::INFINITY));
        // Both land in overflow and report the 1 s saturation edge.
        assert_eq!(h.quantile(0.5), Some(Seconds::new(1.0)));
        // Negative clamps into the first bucket.
        h.record(Seconds::new(-3.0));
        assert_eq!(h.quantile(0.1), Some(Seconds::new(0.01)));
    }

    #[test]
    fn activation_timeline_shrinks_the_idle_floor() {
        let mut cfg = FleetConfig::new(2, 1);
        cfg.idle_server_power = Watts::new(10.0);
        let run = vec![placement(0, 0, 0.0, 10.0, state(50.0, 80.0))];
        let full = integrate(run.clone(), &cfg);
        // Deactivate the second server from t = 5: its idle power stops.
        let scaled = integrate_energy(
            "test",
            "autoscale",
            run.clone(),
            0,
            &cfg,
            &names(),
            &[],
            &[(Seconds::new(5.0), 1)],
        );
        // Full fleet: 50 W busy + 10 W idle over 10 s.
        assert!((full.it_energy.value() - 600.0).abs() < 1e-9);
        // Scaled: the idle floor only runs until the deactivation.
        assert!((scaled.it_energy.value() - 550.0).abs() < 1e-9);
        // Cooling never depends on the activation timeline.
        assert_eq!(scaled.cooling_energy, full.cooling_energy);

        // A pre-start activation sets the initial count; draining jobs on
        // deactivated servers never produce a negative idle floor.
        let drained = integrate_energy(
            "test",
            "autoscale",
            run,
            0,
            &cfg,
            &names(),
            &[],
            &[(Seconds::ZERO, 0)],
        );
        assert!((drained.it_energy.value() - 500.0).abs() < 1e-9);
    }
}
