//! Aggregate fleet metrics: energy integration over the event timeline.

use crate::cache::SteadyState;
use crate::fleet::FleetConfig;
use std::collections::BTreeMap;
use tps_cooling::pue;
use tps_units::{Joules, Seconds, Watts};

/// One job's placement and execution window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The job's id.
    pub job: usize,
    /// Global server index.
    pub server: usize,
    /// Rack index.
    pub rack: usize,
    /// Execution start (arrival + queueing).
    pub start: Seconds,
    /// Execution end.
    pub end: Seconds,
    /// Queueing delay.
    pub wait: Seconds,
    /// Whether the wait blew the job's QoS budget.
    pub violated: bool,
    /// The cached per-server outcome backing this placement.
    pub state: SteadyState,
}

/// The aggregate result of one fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The dispatcher that produced this outcome.
    pub dispatcher: &'static str,
    /// All placements, in dispatch order.
    pub placements: Vec<Placement>,
    /// End of the last execution.
    pub makespan: Seconds,
    /// IT energy: active packages plus the idle floor of empty servers.
    pub it_energy: Joules,
    /// Chiller electrical energy across all racks.
    pub cooling_energy: Joules,
    /// Jobs whose queueing delay blew their QoS budget.
    pub violations: usize,
    /// Mean queueing delay.
    pub mean_wait: Seconds,
    /// Worst queueing delay.
    pub max_wait: Seconds,
    /// Highest instantaneous heat any rack carried.
    pub peak_rack_heat: Watts,
}

impl FleetOutcome {
    /// IT plus cooling energy.
    pub fn total_energy(&self) -> Joules {
        self.it_energy + self.cooling_energy
    }

    /// Energy-based power usage effectiveness over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the run consumed no IT energy (empty job stream).
    pub fn pue(&self) -> f64 {
        pue(
            Watts::new(self.it_energy.value()),
            Watts::new(self.cooling_energy.value()),
        )
    }
}

/// Integrates fleet power over the piecewise-constant event timeline.
///
/// Between consecutive placement starts/ends nothing changes, so each
/// interval contributes `power × dt`: per rack, the chiller electricity of
/// the interval's heat at the interval's shared water temperature
/// (minimum of the co-hosted jobs' tolerable maxima); fleet-wide, the
/// active packages plus the idle floor of unoccupied servers.
pub(crate) fn integrate_energy(
    dispatcher: &'static str,
    placements: Vec<Placement>,
    config: &FleetConfig,
) -> FleetOutcome {
    // One +/− event per placement boundary, swept in time order so each
    // window is O(racks) instead of O(placements): removals before
    // additions at equal times (a placement covers `[start, end)`), then a
    // fixed (rack, kind) order so float accumulation is deterministic.
    struct Event {
        time: f64,
        add: bool,
        rack: usize,
        heat: f64,
        // Tolerable-water key: `to_bits` is monotone for the non-negative
        // temperatures in play, and round-trips the exact f64.
        water_bits: u64,
        power: f64,
    }
    let mut events: Vec<Event> = placements
        .iter()
        .filter(|p| p.end.value() > p.start.value())
        .flat_map(|p| {
            let make = |time: f64, add: bool| Event {
                time,
                add,
                rack: p.rack,
                heat: p.state.heat.value(),
                water_bits: p.state.max_water_temp.value().to_bits(),
                power: p.state.package_power.value(),
            };
            [make(p.start.value(), true), make(p.end.value(), false)]
        })
        .collect();
    events.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.add.cmp(&b.add))
            .then(a.rack.cmp(&b.rack))
    });
    let makespan = events.last().map_or(0.0, |e| e.time);

    let mut it = 0.0;
    let mut cooling = 0.0;
    let mut peak_rack_heat = 0.0f64;
    let mut busy = 0usize;
    let mut active_power = 0.0;
    let mut rack_heat = vec![0.0f64; config.racks];
    let mut rack_water: Vec<BTreeMap<u64, usize>> = vec![BTreeMap::new(); config.racks];
    let mut i = 0;
    while i < events.len() {
        let t = events[i].time;
        while i < events.len() && events[i].time == t {
            let e = &events[i];
            if e.add {
                busy += 1;
                active_power += e.power;
                rack_heat[e.rack] += e.heat;
                *rack_water[e.rack].entry(e.water_bits).or_insert(0) += 1;
            } else {
                busy -= 1;
                active_power -= e.power;
                rack_heat[e.rack] -= e.heat;
                if let Some(count) = rack_water[e.rack].get_mut(&e.water_bits) {
                    *count -= 1;
                    if *count == 0 {
                        rack_water[e.rack].remove(&e.water_bits);
                    }
                }
                // Pin drained sums back to exact zero so float residue
                // never leaks into later windows.
                if rack_water[e.rack].is_empty() {
                    rack_heat[e.rack] = 0.0;
                }
                if busy == 0 {
                    active_power = 0.0;
                }
            }
            i += 1;
        }
        let Some(next) = events.get(i) else { break };
        let dt = next.time - t;
        if dt <= 0.0 {
            continue;
        }
        let idle = (config.total_servers() - busy) as f64 * config.idle_server_power.value();
        it += (active_power + idle) * dt;
        for r in 0..config.racks {
            peak_rack_heat = peak_rack_heat.max(rack_heat[r]);
            if let Some((&bits, _)) = rack_water[r].first_key_value() {
                cooling += config
                    .chiller
                    .electrical_power(
                        Watts::new(rack_heat[r].max(0.0)),
                        tps_units::Celsius::new(f64::from_bits(bits)),
                    )
                    .value()
                    * dt;
            }
        }
    }

    let makespan = Seconds::new(makespan);
    let n = placements.len();
    let mean_wait = if n == 0 {
        Seconds::ZERO
    } else {
        placements.iter().map(|p| p.wait).sum::<Seconds>() / n as f64
    };
    let max_wait = placements
        .iter()
        .map(|p| p.wait)
        .fold(Seconds::ZERO, Seconds::max);
    let violations = placements.iter().filter(|p| p.violated).count();
    FleetOutcome {
        dispatcher,
        placements,
        makespan,
        it_energy: Joules::new(it),
        cooling_energy: Joules::new(cooling),
        violations,
        mean_wait,
        max_wait,
        peak_rack_heat: Watts::new(peak_rack_heat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use tps_units::Celsius;

    fn state(heat: f64, max_water: f64) -> SteadyState {
        SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(max_water),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        }
    }

    fn placement(server: usize, rack: usize, start: f64, end: f64, s: SteadyState) -> Placement {
        Placement {
            job: 0,
            server,
            rack,
            start: Seconds::new(start),
            end: Seconds::new(end),
            wait: Seconds::ZERO,
            violated: false,
            state: s,
        }
    }

    fn tiny_config() -> FleetConfig {
        let mut cfg = FleetConfig::new(2, 1);
        cfg.idle_server_power = Watts::ZERO;
        cfg
    }

    #[test]
    fn it_energy_is_power_times_time() {
        let cfg = tiny_config();
        let out = integrate_energy(
            "test",
            vec![placement(0, 0, 0.0, 10.0, state(50.0, 80.0))],
            &cfg,
        );
        assert!((out.it_energy.value() - 500.0).abs() < 1e-9);
        assert_eq!(out.makespan, Seconds::new(10.0));
        assert_eq!(out.peak_rack_heat, Watts::new(50.0));
    }

    #[test]
    fn cold_job_contaminates_cohosted_heat() {
        // Same two jobs; on one rack the cold job forces *all* heat through
        // the compressor, on separate racks only its own.
        let cfg = tiny_config(); // chiller: 60 °C heat-reuse loop
        let cold = state(70.0, 60.0); // below the 65 °C bypass threshold
        let warm = state(70.0, 80.0); // free-cools
        let together = integrate_energy(
            "t",
            vec![
                placement(0, 0, 0.0, 10.0, cold),
                placement(0, 0, 0.0, 10.0, warm),
            ],
            &cfg,
        );
        let apart = integrate_energy(
            "t",
            vec![
                placement(0, 0, 0.0, 10.0, cold),
                placement(1, 1, 0.0, 10.0, warm),
            ],
            &cfg,
        );
        assert!(
            together.cooling_energy.value() > apart.cooling_energy.value() * 1.3,
            "together {} vs apart {}",
            together.cooling_energy,
            apart.cooling_energy
        );
        assert_eq!(together.it_energy, apart.it_energy);
    }

    #[test]
    fn idle_floor_counts_toward_it_energy() {
        let mut cfg = tiny_config();
        cfg.idle_server_power = Watts::new(10.0);
        let out = integrate_energy(
            "t",
            vec![placement(0, 0, 0.0, 10.0, state(50.0, 80.0))],
            &cfg,
        );
        // One busy server at 50 W + one idle at 10 W over 10 s.
        assert!((out.it_energy.value() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn waits_and_violations_aggregate() {
        let cfg = tiny_config();
        let mut a = placement(0, 0, 5.0, 10.0, state(50.0, 80.0));
        a.wait = Seconds::new(5.0);
        a.violated = true;
        let b = placement(1, 1, 0.0, 10.0, state(50.0, 80.0));
        let out = integrate_energy("t", vec![a, b], &cfg);
        assert_eq!(out.violations, 1);
        assert_eq!(out.max_wait, Seconds::new(5.0));
        assert!((out.mean_wait.value() - 2.5).abs() < 1e-12);
    }
}
