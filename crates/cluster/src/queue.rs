//! The arena-backed calendar event queue behind the kernel's hot path,
//! and the [`KernelQueue`] abstraction that lets the original
//! [`EventQueue`](crate::EventQueue) binary heap stand in as a
//! correctness oracle.
//!
//! Both implementations order events by the same stable
//! `(time, class, seq)` key — `f64::to_bits` is monotone for the
//! non-negative times in play, `class` is the same-instant event ordering
//! and `seq` is the push order — so they pop the *identical* sequence for
//! any interleaving of pushes and pops. The property suite in
//! `tests/queue_model.rs` drives the calendar queue against a naive
//! sorted-`Vec` model and against the heap to pin that equivalence.
//!
//! The calendar queue ([`CalendarQueue`]) is Brown's classic design,
//! adapted for determinism and arena storage:
//!
//! * entries live in a flat arena (`Vec<Entry>` plus a free list), so a
//!   million-event run performs a handful of allocations instead of one
//!   per event;
//! * the bucket array covers one *year* of virtual time
//!   (`nbuckets × width`); an event at time `t` hashes to bucket
//!   `⌊t/width⌋ mod nbuckets`, and every bucket holds events of exactly
//!   one virtual bucket index, so a pop scans one bucket for the minimum
//!   key;
//! * events scheduled beyond the current year go to an *overflow* list
//!   (with its minimum key cached) and are folded back in bulk when one
//!   comes due or the calendar drains — far-future telemetry or
//!   completion events never slow the near-term scan;
//! * the bucket count doubles/halves with occupancy and the bucket width
//!   is re-derived from the live span at each resize, so both dense
//!   (million pre-pushed arrivals) and sparse (a lone control tick)
//!   regimes stay O(1) amortized per operation.

use crate::engine::{Event, EventQueue};
use tps_units::Seconds;

/// Depth and storage counters a queue accumulates over a run, surfaced
/// through [`KernelStats`](crate::KernelStats) so bench regressions are
/// diagnosable from CI logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events pushed over the queue's lifetime.
    pub pushed: u64,
    /// Highest number of events pending at once.
    pub peak_depth: usize,
    /// High-water mark of arena slots ever allocated (for the heap
    /// oracle, which has no arena, this equals the peak depth).
    pub arena_high_water: usize,
}

/// The kernel's event-queue contract: push events at non-negative finite
/// times, pop them in exact `(time, class, seq)` order.
///
/// [`engine::run`](crate::Fleet::simulate_with) is generic over this
/// trait; the shipping implementation is [`CalendarQueue`] and the
/// original binary-heap [`EventQueue`](crate::EventQueue) is kept as the
/// byte-determinism oracle
/// ([`Fleet::simulate_with_heap_queue`](crate::Fleet::simulate_with_heap_queue)).
pub trait KernelQueue {
    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    fn push(&mut self, time: Seconds, event: Event);

    /// Removes and returns the earliest event by `(time, class, seq)`.
    fn pop(&mut self) -> Option<(Seconds, Event)>;

    /// Pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime depth/storage counters.
    fn stats(&self) -> QueueStats;
}

impl KernelQueue for EventQueue {
    fn push(&mut self, time: Seconds, event: Event) {
        EventQueue::push(self, time, event);
    }

    fn pop(&mut self) -> Option<(Seconds, Event)> {
        EventQueue::pop(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn stats(&self) -> QueueStats {
        EventQueue::stats(self)
    }
}

/// One scheduled event in the arena.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// `(time_bits, class, seq)` — the same total order the heap uses.
    key: (u64, u8, u64),
    event: Event,
}

/// Smallest bucket count; kept a power of two so the slot computation is
/// a mask.
const MIN_BUCKETS: usize = 16;

/// An arena-backed calendar queue with the exact pop order of
/// [`EventQueue`](crate::EventQueue).
///
/// ```
/// use tps_cluster::{CalendarQueue, Event, KernelQueue};
/// use tps_units::Seconds;
///
/// let mut q = CalendarQueue::new();
/// q.push(Seconds::new(5.0), Event::JobArrival(1));
/// q.push(Seconds::new(5.0), Event::JobCompletion { job: 0, server: 0 });
/// q.push(Seconds::new(1.0), Event::ControlTick);
/// // Earliest time first; at equal times completions precede arrivals.
/// assert_eq!(q.pop(), Some((Seconds::new(1.0), Event::ControlTick)));
/// assert!(matches!(q.pop(), Some((_, Event::JobCompletion { .. }))));
/// assert_eq!(q.pop(), Some((Seconds::new(5.0), Event::JobArrival(1))));
/// assert_eq!(q.pop(), None);
/// assert!(q.stats().peak_depth >= 3);
/// ```
#[derive(Debug)]
pub struct CalendarQueue {
    /// All entries ever scheduled; slots are recycled through `free`.
    arena: Vec<Entry>,
    free: Vec<u32>,
    /// `buckets[vb % nbuckets]` holds exactly the entries of virtual
    /// bucket `vb`, for `vb` in `[base, base + nbuckets)`.
    buckets: Vec<Vec<u32>>,
    /// Entries at virtual buckets `≥ base + nbuckets` (the far future),
    /// folded back into the calendar when one comes due or the calendar
    /// drains.
    overflow: Vec<u32>,
    /// Smallest key in `overflow` (`None` when empty): pop compares the
    /// best calendar-resident key against it so an overflow event that
    /// comes due is served on time even while near-term re-arms keep the
    /// calendar from ever draining.
    overflow_min: Option<(u64, u8, u64)>,
    /// Seconds of virtual time each bucket covers.
    width: f64,
    /// Lower bound (inclusive) of the calendar's current year, as a
    /// virtual bucket index; no pending entry maps below it.
    base: u64,
    len: usize,
    seq: u64,
    pushed: u64,
    peak_depth: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            overflow: Vec::new(),
            overflow_min: None,
            width: 1.0,
            base: 0,
            len: 0,
            seq: 0,
            pushed: 0,
            peak_depth: 0,
        }
    }

    /// The virtual bucket an event time maps to (saturating cast: times
    /// past `u64::MAX × width` all land in the last representable bucket,
    /// which only coarsens their bucketing, never their pop order).
    fn vbucket(&self, time_bits: u64) -> u64 {
        (f64::from_bits(time_bits) / self.width) as u64
    }

    fn alloc(&mut self, entry: Entry) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.arena[i as usize] = entry;
                i
            }
            None => {
                let i = u32::try_from(self.arena.len()).expect("calendar arena capped at 2^32");
                self.arena.push(entry);
                i
            }
        }
    }

    /// Files an already-allocated entry into its bucket or the overflow
    /// list. Caller guarantees `vb ≥ base`.
    fn file(&mut self, idx: u32) {
        let vb = self.vbucket(self.arena[idx as usize].key.0);
        debug_assert!(vb >= self.base);
        if vb - self.base >= self.buckets.len() as u64 {
            let key = self.arena[idx as usize].key;
            if self.overflow_min.is_none_or(|m| key < m) {
                self.overflow_min = Some(key);
            }
            self.overflow.push(idx);
        } else {
            let slot = (vb % self.buckets.len() as u64) as usize;
            self.buckets[slot].push(idx);
        }
    }

    /// Rebuilds the bucket array: re-derives the width from the live
    /// span, resizes to `nbuckets`, resets `base` to the earliest pending
    /// entry and refiles everything. Deterministic — a pure function of
    /// the queue's current contents.
    fn rebuild(&mut self, nbuckets: usize) {
        let live: Vec<u32> = self
            .buckets
            .iter_mut()
            .flat_map(std::mem::take)
            .chain(self.overflow.drain(..))
            .collect();
        debug_assert_eq!(live.len(), self.len);
        self.overflow_min = None;
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &i in &live {
            let t = f64::from_bits(self.arena[i as usize].key.0);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        // Width ≈ the mean inter-event gap, clamped positive and finite;
        // a degenerate span (empty, or all events at one instant) keeps
        // the previous width so the mapping stays well defined.
        if self.len >= 2 && hi > lo {
            self.width = ((hi - lo) / self.len as f64).max(f64::MIN_POSITIVE);
        }
        self.buckets = vec![Vec::new(); nbuckets.max(MIN_BUCKETS)];
        self.base = if lo.is_finite() {
            self.vbucket(lo.to_bits())
        } else {
            0
        };
        for i in live {
            self.file(i);
        }
    }

    /// Lifetime depth/storage counters (also available through
    /// [`KernelQueue::stats`]).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed,
            peak_depth: self.peak_depth,
            arena_high_water: self.arena.len(),
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    pub fn push(&mut self, time: Seconds, event: Event) {
        assert!(
            time.value() >= 0.0 && time.value().is_finite(),
            "event time must be non-negative and finite, got {time}"
        );
        let key = (time.value().to_bits(), event.class(), self.seq);
        self.seq += 1;
        self.pushed += 1;
        let idx = self.alloc(Entry { key, event });
        self.len += 1;
        self.peak_depth = self.peak_depth.max(self.len);
        let vb = self.vbucket(key.0);
        if vb < self.base {
            // A push behind the calendar's cursor (never the kernel —
            // events are scheduled at or after `now` — but legal for the
            // general API): rewind by rebuilding around the new minimum.
            let n = self.buckets.len();
            self.buckets[(vb % n as u64) as usize].push(idx);
            self.rebuild(n);
        } else {
            self.file(idx);
        }
        if self.len > 2 * self.buckets.len() {
            let n = self.buckets.len() * 2;
            self.rebuild(n);
        }
    }

    /// Removes and returns the earliest event by `(time, class, seq)`.
    pub fn pop(&mut self) -> Option<(Seconds, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Scan at most one year of buckets from the calendar cursor;
            // the bucketing invariant (one virtual bucket per slot, all in
            // `[base, base + n)`) means the first non-empty slot in scan
            // order holds the earliest calendar-resident key.
            let n = self.buckets.len() as u64;
            let mut found = None;
            let mut vb = self.base;
            for _ in 0..n {
                let slot = (vb % n) as usize;
                if !self.buckets[slot].is_empty() {
                    found = Some((slot, vb));
                    break;
                }
                vb += 1;
            }
            let Some((slot, vb)) = found else {
                // The calendar year is empty but events remain: they are
                // all in the overflow list — rebuild the calendar around
                // them (re-deriving the width for the new time span).
                debug_assert!(!self.overflow.is_empty());
                let n = self.buckets.len();
                self.rebuild(n);
                continue;
            };
            let bucket = &self.buckets[slot];
            let mut best = 0;
            let mut best_key = self.arena[bucket[0] as usize].key;
            for (j, &i) in bucket.iter().enumerate().skip(1) {
                let key = self.arena[i as usize].key;
                if key < best_key {
                    best = j;
                    best_key = key;
                }
            }
            // An overflow event can come due while near-term re-arms keep
            // the calendar busy (so the drained-calendar path above never
            // runs): fold it back in before serving anything later than
            // it. After the rebuild the overflow minimum is strictly
            // later than the best bucketed key, so this cannot loop.
            if self.overflow_min.is_some_and(|m| m < best_key) {
                let n = self.buckets.len();
                self.rebuild(n);
                continue;
            }
            let idx = self.buckets[slot].swap_remove(best);
            self.free.push(idx);
            self.len -= 1;
            self.base = vb;
            let entry = self.arena[idx as usize];
            if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
                let half = self.buckets.len() / 2;
                self.rebuild(half);
            }
            return Some((Seconds::new(f64::from_bits(entry.key.0)), entry.event));
        }
    }
}

impl KernelQueue for CalendarQueue {
    fn push(&mut self, time: Seconds, event: Event) {
        CalendarQueue::push(self, time, event);
    }

    fn pop(&mut self) -> Option<(Seconds, Event)> {
        CalendarQueue::pop(self)
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn stats(&self) -> QueueStats {
        CalendarQueue::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_units::Celsius;

    #[test]
    fn calendar_orders_by_time_then_class_then_push_order() {
        let mut q = CalendarQueue::new();
        let t = Seconds::new(10.0);
        q.push(t, Event::JobArrival(0));
        q.push(t, Event::TelemetrySample);
        q.push(t, Event::ControlTick);
        q.push(t, Event::SetpointChange(Celsius::new(45.0)));
        q.push(t, Event::JobCompletion { job: 9, server: 1 });
        q.push(Seconds::new(2.0), Event::JobArrival(7));
        assert_eq!(q.len(), 6);

        assert_eq!(q.pop(), Some((Seconds::new(2.0), Event::JobArrival(7))));
        assert_eq!(
            q.pop(),
            Some((t, Event::JobCompletion { job: 9, server: 1 }))
        );
        assert_eq!(
            q.pop(),
            Some((t, Event::SetpointChange(Celsius::new(45.0))))
        );
        assert_eq!(q.pop(), Some((t, Event::ControlTick)));
        assert_eq!(q.pop(), Some((t, Event::TelemetrySample)));
        assert_eq!(q.pop(), Some((t, Event::JobArrival(0))));
        assert!(q.is_empty());
        let stats = q.stats();
        assert_eq!(stats.pushed, 6);
        assert_eq!(stats.peak_depth, 6);
        assert!(stats.arena_high_water <= 6);
    }

    #[test]
    fn calendar_matches_heap_on_an_interleaved_stream() {
        // Deterministic pseudo-random interleaving (SplitMix64).
        fn mix(seed: u64, i: u64) -> u64 {
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..4000u64 {
            let r = mix(7, i);
            if r % 3 != 0 {
                // Cluster times so classes and seq break plenty of ties.
                let t = Seconds::new((r % 97) as f64 * 0.5);
                let event = match r % 5 {
                    0 => Event::JobArrival(i as usize),
                    1 => Event::JobCompletion {
                        job: i as usize,
                        server: 0,
                    },
                    2 => Event::ControlTick,
                    3 => Event::TelemetrySample,
                    _ => Event::SetpointChange(Celsius::new(40.0)),
                };
                cal.push(t, event);
                heap.push(t, event);
            } else {
                assert_eq!(cal.pop(), heap.pop(), "diverged at op {i}");
            }
        }
        while !heap.is_empty() {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn far_future_events_ride_the_overflow_list() {
        let mut q = CalendarQueue::new();
        // A tight cluster fixes a small width, then a far-future event
        // must overflow (≥ one year ahead) and still pop last.
        for i in 0..64usize {
            q.push(Seconds::new(i as f64 * 0.01), Event::JobArrival(i));
        }
        q.push(Seconds::new(1.0e9), Event::ControlTick);
        for i in 0..64usize {
            assert_eq!(
                q.pop(),
                Some((Seconds::new(i as f64 * 0.01), Event::JobArrival(i)))
            );
        }
        assert_eq!(q.pop(), Some((Seconds::new(1.0e9), Event::ControlTick)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn all_events_at_one_instant_pop_in_class_then_push_order() {
        let mut q = CalendarQueue::new();
        let t = Seconds::new(3.0);
        for id in [4usize, 2, 9] {
            q.push(t, Event::JobArrival(id));
        }
        q.push(t, Event::ControlTick);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            popped,
            vec![
                Event::ControlTick,
                Event::JobArrival(4),
                Event::JobArrival(2),
                Event::JobArrival(9)
            ]
        );
    }

    #[test]
    fn pushes_behind_the_cursor_rewind_the_calendar() {
        let mut q = CalendarQueue::new();
        for i in 0..100usize {
            q.push(Seconds::new(100.0 + i as f64), Event::JobArrival(i));
        }
        assert_eq!(q.pop().map(|(t, _)| t), Some(Seconds::new(100.0)));
        // Legal for the general API: a push earlier than the last pop.
        q.push(Seconds::new(0.5), Event::ControlTick);
        assert_eq!(q.pop(), Some((Seconds::new(0.5), Event::ControlTick)));
        assert_eq!(q.pop().map(|(t, _)| t), Some(Seconds::new(101.0)));
    }

    #[test]
    fn overflow_events_are_served_when_due_despite_constant_rearms() {
        // The kernel's worst case for a calendar queue: a control tick
        // that re-arms itself a short step ahead forever (so the calendar
        // never drains) while completions land far in the future (so they
        // start life in the overflow list). Every event must still pop in
        // key order — a starved overflow entry would either pop late or
        // never.
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut push = |cal: &mut CalendarQueue, heap: &mut EventQueue, t: f64, e: Event| {
            cal.push(Seconds::new(t), e);
            heap.push(Seconds::new(t), e);
        };
        for i in 0..40usize {
            push(&mut cal, &mut heap, i as f64 * 0.5, Event::JobArrival(i));
        }
        push(&mut cal, &mut heap, 5.0, Event::ControlTick);
        push(&mut cal, &mut heap, 0.0, Event::TelemetrySample);
        let mut completions = 0usize;
        for step in 0..5000u64 {
            let got = cal.pop();
            assert_eq!(got, heap.pop(), "diverged at step {step}");
            let Some((now, event)) = got else { break };
            match event {
                Event::ControlTick => {
                    push(&mut cal, &mut heap, now.value() + 5.0, Event::ControlTick);
                }
                Event::TelemetrySample => {
                    push(
                        &mut cal,
                        &mut heap,
                        now.value() + 30.0,
                        Event::TelemetrySample,
                    );
                }
                Event::JobArrival(i) => {
                    // Single backlogged server: completions stack up far
                    // beyond the calendar's current year.
                    let end = 500.0 + i as f64 * 90.0;
                    push(
                        &mut cal,
                        &mut heap,
                        end,
                        Event::JobCompletion { job: i, server: 0 },
                    );
                }
                Event::JobCompletion { .. } => {
                    completions += 1;
                    if completions == 40 {
                        // Fleet drained: stop re-arming and flush.
                        while let Some(got) = cal.pop() {
                            assert_eq!(Some(got), heap.pop());
                        }
                        assert!(heap.is_empty());
                        return;
                    }
                }
                Event::SetpointChange(_) => unreachable!(),
            }
        }
        panic!("queue starved: only {completions} of 40 completions popped");
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = CalendarQueue::new();
        for round in 0..50usize {
            for i in 0..8usize {
                q.push(Seconds::new((round * 8 + i) as f64), Event::JobArrival(i));
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        let stats = q.stats();
        assert_eq!(stats.pushed, 400);
        // Steady-state depth 8: the arena never grows past the peak.
        assert!(
            stats.arena_high_water <= stats.peak_depth,
            "arena {} vs peak depth {}",
            stats.arena_high_water,
            stats.peak_depth
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn calendar_rejects_negative_times() {
        CalendarQueue::new().push(Seconds::new(-1.0), Event::ControlTick);
    }
}
