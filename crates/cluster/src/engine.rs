//! The discrete-event simulation kernel: a deterministic event queue, the
//! mutable `FleetState` it drives, and the main loop that turns a job
//! stream plus a [`ControlPolicy`](crate::ControlPolicy) into placements,
//! a set-point timeline and (optionally) a telemetry trace.
//!
//! Everything in here is sequential and byte-deterministic: events are
//! ordered by a stable `(time, class, seq)` key, so two runs of the same
//! inputs — at any warm-up thread count, and under either event-queue
//! implementation ([`EventQueue`] heap or
//! [`CalendarQueue`](crate::CalendarQueue)) — replay the identical event
//! sequence and produce bit-identical floats. The four event kinds and
//! their same-instant ordering:
//!
//! 1. [`Event::JobCompletion`] — a server finishes a job; committed rack
//!    load expires *before* anything else sees that instant (a placement
//!    covers `[start, end)`).
//! 2. [`Event::SetpointChange`] — the chiller/heat-reuse set-point moves;
//!    later dispatch decisions and energy windows see the new chiller.
//! 3. [`Event::ControlTick`] — the control policy observes the fleet and
//!    may emit actions.
//! 4. [`Event::TelemetrySample`] — a [`FleetSample`] is recorded.
//! 5. [`Event::JobArrival`] — the dispatcher places the job against the
//!    settled fleet state.

use crate::cache::{OutcomeCache, SolveTable, SteadyState};
use crate::catalog::ClassId;
use crate::control::{ControlAction, ControlPolicy, ControlStatus, PlacementHint, RunContext};
use crate::dispatch::{
    ClassDemand, FleetDispatcher, FleetHalls, FleetIndex, FleetView, JobDemand, RackView,
    ServerTable,
};
use crate::fleet::{Fleet, FleetConfig};
use crate::job::Job;
use crate::metrics::{
    integrate_energy, FleetSample, FleetTrace, HallStats, KernelStats, LatencyHistogram, Placement,
    ServingOutcome, ServingSample, SimResult, TelemetryConfig,
};
use crate::queue::{CalendarQueue, KernelQueue, QueueStats};
use std::collections::{BTreeMap, BTreeSet};
use tps_core::{MinPowerSelector, RunError};
use tps_units::{Celsius, Seconds, Watts};
use tps_workload::{Benchmark, QosClass};

/// How many future arrivals the kernel keeps enqueued ahead of the event
/// horizon. Arrivals are streamed from the time-sorted order, one pushed
/// per arrival processed, so the queue holds O(`ARRIVAL_LOOKAHEAD` +
/// in-flight completions) events instead of the whole job stream. Any
/// positive window preserves pop order (see `run_impl`); this one is
/// large enough to keep the calendar queue's buckets well fed.
pub const ARRIVAL_LOOKAHEAD: usize = 1024;

/// Minimum fleet size (racks) before a telemetry sample fans its per-rack
/// cooling pass out to worker threads: below this the per-sample scoped
/// spawn costs more than the arithmetic it parallelizes.
const HALL_FANOUT_MIN_RACKS: usize = 1024;

/// A typed simulation event.
///
/// Events carry only identities; the payloads they act on (committed rack
/// load, running power, set-point) live in the kernel's `FleetState`, which settles
/// lazily to the event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A job finishes executing on a server (its committed rack load
    /// expires at this instant).
    JobCompletion {
        /// The completing job's id.
        job: usize,
        /// The global server index it ran on.
        server: usize,
    },
    /// The chiller/heat-reuse set-point changes to the given temperature.
    SetpointChange(Celsius),
    /// The control policy is evaluated against a fleet snapshot.
    ControlTick,
    /// A telemetry sample is recorded into the trace ring.
    TelemetrySample,
    /// A job (index into the simulated stream) arrives at the front-end.
    JobArrival(usize),
}

impl Event {
    /// Same-instant ordering class (lower runs first); see the module
    /// docs for the rationale of completion-before-arrival.
    pub(crate) fn class(&self) -> u8 {
        match self {
            Event::JobCompletion { .. } => 0,
            Event::SetpointChange(_) => 1,
            Event::ControlTick => 2,
            Event::TelemetrySample => 3,
            Event::JobArrival(_) => 4,
        }
    }
}

/// A deterministic event queue ordered by `(time, class, seq)`.
///
/// `seq` is the push order, so ties within one class pop first-in
/// first-out no matter how the queue is used — results never depend on
/// insertion patterns, hashing or thread count.
///
/// This is the original binary-heap kernel queue. Production runs use the
/// O(1)-common-case [`CalendarQueue`](crate::CalendarQueue); the heap is
/// kept as the ordering *oracle* the calendar queue is tested against
/// (identical pop order by construction of the shared key).
///
/// ```
/// use tps_cluster::{Event, EventQueue};
/// use tps_units::Seconds;
///
/// let mut q = EventQueue::new();
/// q.push(Seconds::new(5.0), Event::JobArrival(1));
/// q.push(Seconds::new(5.0), Event::JobCompletion { job: 0, server: 0 });
/// q.push(Seconds::new(1.0), Event::ControlTick);
/// // Earliest time first; at equal times completions precede arrivals.
/// assert_eq!(q.pop(), Some((Seconds::new(1.0), Event::ControlTick)));
/// assert!(matches!(q.pop(), Some((_, Event::JobCompletion { .. }))));
/// assert_eq!(q.pop(), Some((Seconds::new(5.0), Event::JobArrival(1))));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    /// Min-heap over the full `(time_bits, class, seq)` key — the
    /// tie-break is total, so heap-internal order never leaks into
    /// results. `f64::to_bits` is monotone for the non-negative times in
    /// play.
    heap: std::collections::BinaryHeap<QueueEntry>,
    seq: u64,
    peak: usize,
}

/// One scheduled event; ordered *descending* by key so the std max-heap
/// pops the earliest `(time, class, seq)` first.
#[derive(Debug)]
struct QueueEntry {
    key: (u64, u8, u64),
    event: Event,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    pub fn push(&mut self, time: Seconds, event: Event) {
        assert!(
            time.value() >= 0.0 && time.value().is_finite(),
            "event time must be non-negative and finite, got {time}"
        );
        self.heap.push(QueueEntry {
            key: (time.value().to_bits(), event.class(), self.seq),
            event,
        });
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Seconds, Event)> {
        self.heap
            .pop()
            .map(|e| (Seconds::new(f64::from_bits(e.key.0)), e.event))
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime counters: total pushes and peak depth. The heap has no
    /// arena, so its high-water mark is reported as the peak depth (every
    /// pending event owns one heap node).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.seq,
            peak_depth: self.peak,
            arena_high_water: self.peak,
        }
    }
}

/// Incremental per-rack committed load: every placement that has not
/// finished (running or still queued) counts against its rack until its
/// end time expires. Keeps dispatch O(racks + log jobs) per arrival
/// instead of rescanning all placements.
///
/// Beyond the per-rack sums, the structure maintains the kernel's
/// *dispatch index* incrementally: the current [`RackView`] per rack, the
/// occupied racks ordered by `(heat bits, rack)`, the idle racks per rack
/// group, and a per-rack mutation stamp. Each placement or expiry touches
/// exactly one rack, so the index updates in O(log racks) — this is what
/// lets dispatchers skip the per-arrival full-fleet rescan.
///
/// Invariant note: the heat-sum / water-multiset / pin-drained-to-zero
/// bookkeeping here is mirrored (over different windows and orderings)
/// by the kernel's `RunningSet` and by `integrate_energy`'s event sweep
/// — a change to the accumulation rules must land in all three, and the
/// property tests plus the golden bit-for-bit fleet test pin the
/// behavior.
#[derive(Debug)]
pub struct RackLoads {
    heat: Vec<f64>,
    /// Multiset of tolerable-water keys per rack, as an ascending sorted
    /// `(key, count)` vector; `f64::to_bits` is monotone for the
    /// non-negative temperatures in play and round-trips the exact value.
    /// A vector, not a `BTreeMap`: the handful of distinct keys per rack
    /// makes the binary search trivial, and the capacity survives the
    /// rack draining — no node allocation per placement on the hot path.
    water: Vec<Vec<(u64, u32)>>,
    count: Vec<usize>,
    /// Min-heap of `(end_bits, insertion seq, rack, heat_bits,
    /// water_bits)`. The unique seq makes the key total, so pops replay
    /// the exact `(end, insertion)` order a sorted map would — on a flat
    /// array instead of B-tree nodes (this is a per-placement hot path).
    expiry: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, u32, u64, u64)>>,
    seq: usize,
    total: usize,
    /// The current dispatch view per rack, kept exactly equal to what a
    /// from-scratch rebuild would produce (heat clamped non-negative,
    /// coldest committed water, committed count).
    views: Vec<RackView>,
    /// Racks with committed load, an ascending sorted vector keyed
    /// `(view-heat bits, rack)` — the clamped heat is non-negative, so
    /// `to_bits` sorts like the float. A vector, not a tree: dispatchers
    /// scan it on every arrival, and membership churn moves only a few
    /// dozen in-flight entries per mutation. Each entry carries the
    /// rack's fold inputs (heat, supply, group) inline, so the dispatch
    /// hot loop reads one contiguous array instead of chasing four
    /// rack-indexed arrays across the cache.
    occupied: Vec<OccupiedRack>,
    /// Idle racks per rack group, ascending by rack index.
    idle: Vec<BTreeSet<u32>>,
    /// Cached per-group minimum idle rack — always exactly
    /// `idle[g].first()`, so the dispatch hot path reads each group's
    /// representative in O(1) instead of chasing B-tree nodes per
    /// arrival.
    idle_min: Vec<Option<u32>>,
    /// Rack → rack-group id.
    group_of: Vec<u32>,
    /// Rack → stamp of its last mutation (monotone clock).
    stamps: Vec<u64>,
    stamp_clock: u64,
}

/// One entry of the occupied-rack index: the sort key `(heat bits,
/// rack)` plus the rack's dispatch-fold inputs, denormalized inline so a
/// per-arrival candidate scan is a single contiguous read. The fields
/// replay the rack's [`RackView`] bit-for-bit: `heat_bits` is the view
/// heat's `to_bits` (clamped non-negative, so the sort order matches the
/// float) and `supply_bits` the view supply's, with [`Self::NO_SUPPLY`]
/// standing in for `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupiedRack {
    /// `to_bits` of the rack's clamped committed heat (key, major).
    pub heat_bits: u64,
    /// The rack id (key, minor — makes the key total).
    pub rack: u32,
    /// The rack's group id (its class pattern).
    pub group: u32,
    /// `to_bits` of the coldest committed water demand, or
    /// [`Self::NO_SUPPLY`] when the rack has none.
    pub supply_bits: u64,
}

impl OccupiedRack {
    /// Sentinel for "no settled supply" — an all-ones NaN pattern no real
    /// temperature produces.
    pub const NO_SUPPLY: u64 = u64::MAX;

    /// The sort key.
    #[inline]
    pub fn key(&self) -> (u64, u32) {
        (self.heat_bits, self.rack)
    }

    /// The rack's committed heat, exactly the [`RackView`]'s.
    #[inline]
    pub fn heat(&self) -> f64 {
        f64::from_bits(self.heat_bits)
    }

    /// The rack's settled supply, exactly the [`RackView`]'s.
    #[inline]
    pub fn supply(&self) -> Option<Celsius> {
        (self.supply_bits != Self::NO_SUPPLY)
            .then(|| Celsius::new(f64::from_bits(self.supply_bits)))
    }
}

impl RackLoads {
    /// Empty loads over `racks` racks, all in one rack group.
    pub fn new(racks: usize) -> Self {
        Self::with_groups(racks, vec![0; racks], 1)
    }

    /// Empty loads over `racks` racks partitioned into `groups` rack
    /// groups (`group_of[rack]` names each rack's group). Racks in one
    /// group must host the same class pattern — the dispatch fast path
    /// treats any idle rack of a group as interchangeable with the rest.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` has the wrong length or names a group out of
    /// range.
    pub fn with_groups(racks: usize, group_of: Vec<u32>, groups: usize) -> Self {
        Self::with_groups_range(racks, group_of, groups, 0, racks)
    }

    /// Empty loads *owning only the contiguous rack range `[lo, hi)`* of a
    /// fleet with `racks` racks in total — one hall of a sharded kernel.
    /// Vectors are full-size and globally indexed (so hall views compose
    /// into one global view by range), but only the owned range is seeded
    /// idle: the hall tracks exactly its own racks and nothing else.
    /// `with_groups` is the whole-fleet special case `[0, racks)`.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` has the wrong length, names a group out of
    /// range, or the rack range is empty or out of bounds.
    pub fn with_groups_range(
        racks: usize,
        group_of: Vec<u32>,
        groups: usize,
        lo: usize,
        hi: usize,
    ) -> Self {
        assert_eq!(group_of.len(), racks, "one group id per rack");
        assert!(
            group_of.iter().all(|&g| (g as usize) < groups.max(1)),
            "rack group out of range"
        );
        assert!(lo < hi && hi <= racks, "rack range out of bounds");
        let mut idle = vec![BTreeSet::new(); groups.max(1)];
        for (r, &g) in group_of.iter().enumerate().take(hi).skip(lo) {
            idle[g as usize].insert(r as u32);
        }
        let idle_min = idle.iter().map(|s| s.first().copied()).collect();
        Self {
            heat: vec![0.0; racks],
            water: vec![Vec::new(); racks],
            count: vec![0; racks],
            expiry: std::collections::BinaryHeap::new(),
            seq: 0,
            total: 0,
            views: vec![
                RackView {
                    heat: Watts::new(0.0),
                    supply: None,
                    committed: 0,
                };
                racks
            ],
            occupied: Vec::new(),
            idle,
            idle_min,
            group_of,
            stamps: vec![0; racks],
            stamp_clock: 0,
        }
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.heat.len()
    }

    /// Committed placements across all racks.
    pub fn total_committed(&self) -> usize {
        self.total
    }

    /// Re-derives `rack`'s view and index membership after a mutation.
    /// The view expressions are exactly the from-scratch rebuild's, so
    /// the maintained views stay bit-identical to [`views`](Self::views).
    fn sync_rack(&mut self, rack: usize, was_occupied: bool, old_bits: u64) {
        let view = RackView {
            heat: Watts::new(self.heat[rack].max(0.0)),
            supply: self.water[rack]
                .first()
                .map(|&(bits, _)| Celsius::new(f64::from_bits(bits))),
            committed: self.count[rack],
        };
        let new_bits = view.heat.value().to_bits();
        let now_occupied = view.committed > 0;
        let supply_bits = view
            .supply
            .map_or(OccupiedRack::NO_SUPPLY, |s| s.value().to_bits());
        self.views[rack] = view;
        let r = rack as u32;
        let g = self.group_of[rack] as usize;
        let entry = OccupiedRack {
            heat_bits: new_bits,
            rack: r,
            group: self.group_of[rack],
            supply_bits,
        };
        match (was_occupied, now_occupied) {
            (false, true) => {
                self.idle[g].remove(&r);
                if self.idle_min[g] == Some(r) {
                    self.idle_min[g] = self.idle[g].first().copied();
                }
                if let Err(at) = self
                    .occupied
                    .binary_search_by_key(&(new_bits, r), |e| e.key())
                {
                    self.occupied.insert(at, entry);
                }
            }
            (true, false) => {
                if let Ok(at) = self
                    .occupied
                    .binary_search_by_key(&(old_bits, r), |e| e.key())
                {
                    self.occupied.remove(at);
                }
                self.idle[g].insert(r);
                if self.idle_min[g].map_or(true, |m| r < m) {
                    self.idle_min[g] = Some(r);
                }
            }
            (true, true) => {
                if old_bits != new_bits {
                    if let Ok(at) = self
                        .occupied
                        .binary_search_by_key(&(old_bits, r), |e| e.key())
                    {
                        self.occupied.remove(at);
                    }
                    if let Err(at) = self
                        .occupied
                        .binary_search_by_key(&(new_bits, r), |e| e.key())
                    {
                        self.occupied.insert(at, entry);
                    }
                } else if let Ok(at) = self
                    .occupied
                    .binary_search_by_key(&(new_bits, r), |e| e.key())
                {
                    // Heat unchanged but the supply may have moved (e.g. a
                    // zero-heat placement changing the coldest water
                    // demand): keep the inline fields in lockstep with the
                    // view.
                    self.occupied[at].supply_bits = supply_bits;
                }
            }
            (false, false) => {}
        }
        self.stamp_clock += 1;
        self.stamps[rack] = self.stamp_clock;
    }

    /// Commits `state`'s load to `rack` until `end`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn add(&mut self, rack: usize, state: &SteadyState, end: Seconds) {
        let was_occupied = self.count[rack] > 0;
        let old_bits = self.views[rack].heat.value().to_bits();
        let water_bits = state.max_water_temp.value().to_bits();
        self.heat[rack] += state.heat.value();
        self.count[rack] += 1;
        self.total += 1;
        match self.water[rack].binary_search_by_key(&water_bits, |e| e.0) {
            Ok(i) => self.water[rack][i].1 += 1,
            Err(i) => self.water[rack].insert(i, (water_bits, 1)),
        }
        self.expiry.push(std::cmp::Reverse((
            end.value().to_bits(),
            self.seq,
            rack as u32,
            state.heat.value().to_bits(),
            water_bits,
        )));
        self.seq += 1;
        self.sync_rack(rack, was_occupied, old_bits);
    }

    /// Drops every placement with `end ≤ now` (it covered `[start, end)`),
    /// in `(end, insertion)` order so float accumulation is deterministic.
    /// Returns how many placements expired.
    pub fn expire_until(&mut self, now: Seconds) -> usize {
        let mut expired = 0;
        while let Some(&std::cmp::Reverse((end_bits, _, rack, heat_bits, water_bits))) =
            self.expiry.peek()
        {
            if f64::from_bits(end_bits) > now.value() {
                break;
            }
            let (rack, heat) = (rack as usize, f64::from_bits(heat_bits));
            expired += 1;
            self.expiry.pop();
            let was_occupied = self.count[rack] > 0;
            let old_bits = self.views[rack].heat.value().to_bits();
            self.heat[rack] -= heat;
            self.count[rack] -= 1;
            self.total -= 1;
            if let Ok(i) = self.water[rack].binary_search_by_key(&water_bits, |e| e.0) {
                self.water[rack][i].1 -= 1;
                if self.water[rack][i].1 == 0 {
                    self.water[rack].remove(i);
                }
            }
            // Pin drained racks back to exact zero: float residue must not
            // perturb later dispatch comparisons.
            if self.count[rack] == 0 {
                self.heat[rack] = 0.0;
            }
            self.sync_rack(rack, was_occupied, old_bits);
        }
        expired
    }

    /// The earliest pending expiry, `None` while nothing is committed.
    pub fn next_expiry(&self) -> Option<f64> {
        self.expiry
            .peek()
            .map(|&std::cmp::Reverse((end_bits, ..))| f64::from_bits(end_bits))
    }

    /// The maintained per-rack dispatch views — always equal to what a
    /// from-scratch rebuild would compute.
    pub fn view_slice(&self) -> &[RackView] {
        &self.views
    }

    /// Racks with committed load, ordered `(view-heat bits, rack)`, each
    /// entry carrying its fold inputs inline (see [`OccupiedRack`]).
    pub fn occupied_racks(&self) -> &[OccupiedRack] {
        &self.occupied
    }

    /// Idle racks per rack group, each ascending by rack index.
    pub fn idle_groups(&self) -> &[BTreeSet<u32>] {
        &self.idle
    }

    /// Per-group cached minimum idle rack, always equal to
    /// `idle_groups()[g].first()` (`None` while the group has no idle
    /// racks).
    pub fn idle_group_mins(&self) -> &[Option<u32>] {
        &self.idle_min
    }

    /// Rack → rack-group id.
    pub fn rack_groups(&self) -> &[u32] {
        &self.group_of
    }

    /// Rack → stamp of its last mutation; unchanged stamp ⇒ bit-identical
    /// [`RackView`].
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Writes the per-rack dispatch views into `out` (cleared first).
    ///
    /// Takes a caller-owned scratch buffer instead of allocating; since
    /// the views are now maintained incrementally this is a plain copy of
    /// [`view_slice`](Self::view_slice).
    pub fn views_into(&self, out: &mut Vec<RackView>) {
        out.clear();
        out.extend_from_slice(&self.views);
    }

    /// The per-rack dispatch views as a fresh vector (allocating
    /// convenience over [`views_into`](Self::views_into)).
    pub fn views(&self) -> Vec<RackView> {
        self.views.clone()
    }
}

/// The fleet's committed load partitioned into **halls**: contiguous rack
/// ranges, each owning its racks' [`RackLoads`] (views, occupancy index,
/// expiry events) outright. Halls share nothing, so between global
/// decision points they can advance expiries and score candidates
/// independently; every cross-hall reduction here folds in ascending hall
/// order, which is what keeps a sharded run bit-identical to `shards = 1`
/// (see `ARCHITECTURE.md`, "Sharded halls").
///
/// With one hall this is exactly the old single-`RackLoads` kernel — the
/// same struct, the same mutation order, the same bits.
#[derive(Debug)]
pub struct HallLoads {
    parts: Vec<RackLoads>,
    /// Hall → `[lo, hi)` rack range (contiguous, covering all racks).
    bounds: Vec<(usize, usize)>,
    /// Rack → owning hall.
    hall_of: Vec<u32>,
    /// Committed placements across all halls (Σ per-hall totals — an
    /// integer, so the split cannot perturb it).
    total: usize,
    /// Per-hall placement counters (diagnostics only).
    adds: Vec<u64>,
    /// Per-hall expiry counters (diagnostics only).
    expired: Vec<u64>,
    /// Per-hall earliest pending expiry (`f64::INFINITY` when drained) —
    /// one contiguous compare per hall lets `expire_until` skip quiet
    /// halls without touching their heaps. Always a lower bound on the
    /// hall's true front, so a skip expires exactly what the hall itself
    /// would have expired: nothing.
    next_end: Vec<f64>,
}

impl HallLoads {
    /// Partitions `racks` racks into `shards` contiguous halls of
    /// near-equal size (the first `racks % shards` halls get one extra).
    /// `shards` is clamped to `[1, racks]`.
    pub fn new(racks: usize, group_of: Vec<u32>, groups: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, racks.max(1));
        let base = racks / shards;
        let rem = racks % shards;
        let mut bounds = Vec::with_capacity(shards);
        let mut lo = 0;
        for h in 0..shards {
            let hi = lo + base + usize::from(h < rem);
            bounds.push((lo, hi));
            lo = hi;
        }
        let hall_of = (0..racks as u32)
            .map(|r| {
                bounds
                    .iter()
                    .position(|&(lo, hi)| (r as usize) >= lo && (r as usize) < hi)
                    .expect("every rack is in exactly one hall") as u32
            })
            .collect();
        let parts = bounds
            .iter()
            .map(|&(lo, hi)| RackLoads::with_groups_range(racks, group_of.clone(), groups, lo, hi))
            .collect();
        Self {
            parts,
            bounds,
            hall_of,
            total: 0,
            adds: vec![0; shards],
            expired: vec![0; shards],
            next_end: vec![f64::INFINITY; shards],
        }
    }

    /// Number of halls.
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// The halls' `RackLoads`, ascending by rack range.
    pub fn parts(&self) -> &[RackLoads] {
        &self.parts
    }

    /// Hall → `[lo, hi)` owned rack range.
    pub fn bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// Rack → owning hall.
    pub fn hall_of(&self) -> &[u32] {
        &self.hall_of
    }

    /// Per-hall `(placements, expiries)` counters.
    pub fn counters(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.adds.iter().copied().zip(self.expired.iter().copied())
    }

    /// The single hall when the fleet is unsharded — the kernel then runs
    /// the exact pre-hall code path (global index, global views slice).
    pub fn single(&self) -> Option<&RackLoads> {
        (self.parts.len() == 1).then(|| &self.parts[0])
    }

    /// Committed placements across all halls.
    pub fn total_committed(&self) -> usize {
        self.total
    }

    /// Commits `state`'s load to `rack`'s hall until `end`.
    pub fn add(&mut self, rack: usize, state: &SteadyState, end: Seconds) {
        let h = self.hall_of[rack] as usize;
        self.parts[h].add(rack, state, end);
        self.adds[h] += 1;
        self.total += 1;
        if end.value() < self.next_end[h] {
            self.next_end[h] = end.value();
        }
    }

    /// Expires every placement with `end ≤ now`, hall by hall in
    /// ascending order. Halls are disjoint — each expiry touches only its
    /// own rack's floats, and the per-rack `(end, insertion)` fold order
    /// inside a hall matches the global kernel's, so the cross-hall
    /// processing order cannot change any bit of state. Halls whose
    /// cached earliest expiry is still in the future are skipped without
    /// touching their heaps — they would have expired nothing.
    pub fn expire_until(&mut self, now: Seconds) {
        for (h, part) in self.parts.iter_mut().enumerate() {
            if now.value() < self.next_end[h] {
                continue;
            }
            let n = part.expire_until(now);
            self.expired[h] += n as u64;
            self.total -= n;
            self.next_end[h] = part.next_expiry().unwrap_or(f64::INFINITY);
        }
    }

    /// Writes the global per-rack dispatch views into `out` (cleared
    /// first) by concatenating each hall's owned range in rack order.
    pub fn views_into(&self, out: &mut Vec<RackView>) {
        out.clear();
        for (part, &(lo, hi)) in self.parts.iter().zip(&self.bounds) {
            out.extend_from_slice(&part.view_slice()[lo..hi]);
        }
    }
}

/// One running placement's contribution, folded in at its start time and
/// out at its end time.
#[derive(Debug, Clone, Copy)]
struct RunningRec {
    rack: usize,
    class: ClassId,
    heat: f64,
    power: f64,
    water_bits: u64,
}

/// The *running* (started, not finished) layer of the fleet, maintained
/// lazily for telemetry and control snapshots. Distinct from
/// [`RackLoads`], which tracks *committed* (running or queued) load —
/// the quantity dispatch decisions are made against. Shares its
/// accumulation rules with [`RackLoads`] and `integrate_energy` (see the
/// invariant note on [`RackLoads`]).
#[derive(Debug)]
struct RunningSet {
    /// Placements not yet started: `(start_bits, seq) → rec`.
    starts: BTreeMap<(u64, u64), RunningRec>,
    /// Placements started, not yet folded out: `(end_bits, seq) → rec`.
    ends: BTreeMap<(u64, u64), RunningRec>,
    seq: u64,
    active_power: f64,
    heat: Vec<f64>,
    water: Vec<BTreeMap<u64, usize>>,
    count: Vec<usize>,
    running: usize,
    /// Per-class running counts and active package power (telemetry's
    /// per-class columns on heterogeneous fleets).
    class_running: Vec<usize>,
    class_power: Vec<f64>,
}

impl RunningSet {
    fn new(racks: usize, classes: usize) -> Self {
        Self {
            starts: BTreeMap::new(),
            ends: BTreeMap::new(),
            seq: 0,
            active_power: 0.0,
            heat: vec![0.0; racks],
            water: vec![BTreeMap::new(); racks],
            count: vec![0; racks],
            running: 0,
            class_running: vec![0; classes],
            class_power: vec![0.0; classes],
        }
    }

    fn commit(
        &mut self,
        rack: usize,
        class: ClassId,
        state: &SteadyState,
        start: Seconds,
        end: Seconds,
    ) {
        let rec = RunningRec {
            rack,
            class,
            heat: state.heat.value(),
            power: state.package_power.value(),
            water_bits: state.max_water_temp.value().to_bits(),
        };
        self.starts.insert((start.value().to_bits(), self.seq), rec);
        self.ends.insert((end.value().to_bits(), self.seq), rec);
        self.seq += 1;
    }

    /// Folds all starts, then all ends, with time ≤ `now` into the
    /// aggregates, in `(time, insertion)` order.
    fn settle(&mut self, now: Seconds) {
        while let Some((&(bits, _), _)) = self.starts.first_key_value() {
            if f64::from_bits(bits) > now.value() {
                break;
            }
            let (_, rec) = self.starts.pop_first().expect("peeked above");
            self.active_power += rec.power;
            self.heat[rec.rack] += rec.heat;
            self.count[rec.rack] += 1;
            self.running += 1;
            self.class_running[rec.class] += 1;
            self.class_power[rec.class] += rec.power;
            *self.water[rec.rack].entry(rec.water_bits).or_insert(0) += 1;
        }
        while let Some((&(bits, _), _)) = self.ends.first_key_value() {
            if f64::from_bits(bits) > now.value() {
                break;
            }
            let (_, rec) = self.ends.pop_first().expect("peeked above");
            self.active_power -= rec.power;
            self.heat[rec.rack] -= rec.heat;
            self.count[rec.rack] -= 1;
            self.running -= 1;
            self.class_running[rec.class] -= 1;
            self.class_power[rec.class] -= rec.power;
            if let Some(n) = self.water[rec.rack].get_mut(&rec.water_bits) {
                *n -= 1;
                if *n == 0 {
                    self.water[rec.rack].remove(&rec.water_bits);
                }
            }
            if self.count[rec.rack] == 0 {
                self.heat[rec.rack] = 0.0;
            }
            // Pin drained sums to exact zero (fleet-wide and per class)
            // so float residue never leaks into later samples.
            if self.class_running[rec.class] == 0 {
                self.class_power[rec.class] = 0.0;
            }
            if self.running == 0 {
                self.active_power = 0.0;
            }
        }
    }
}

/// The kernel's mutable fleet state: per-rack committed load, the
/// structure-of-arrays server table, the running layer behind telemetry,
/// and the control surface (current chiller, shedding flag).
#[derive(Debug)]
pub(crate) struct FleetState {
    loads: HallLoads,
    running: RunningSet,
    servers: ServerTable,
    chiller: tps_cooling::Chiller,
    /// Bumped on every chiller change; dispatch score caches key on it.
    chiller_epoch: u64,
    setpoint: Celsius,
    shedding: bool,
    shed: usize,
    violations: usize,
    pending_arrivals: usize,
}

impl FleetState {
    fn new(
        config: &FleetConfig,
        classes: usize,
        pending_arrivals: usize,
        servers: ServerTable,
        loads: HallLoads,
    ) -> Self {
        Self {
            loads,
            running: RunningSet::new(config.racks, classes),
            servers,
            chiller: config.chiller.clone(),
            chiller_epoch: 0,
            setpoint: config.chiller.ambient(),
            shedding: false,
            shed: 0,
            violations: 0,
            pending_arrivals,
        }
    }

    /// All arrivals processed and nothing committed: the simulation can
    /// stop re-arming periodic events.
    fn done(&self) -> bool {
        self.pending_arrivals == 0 && self.loads.total_committed() == 0
    }

    /// Placed but not yet started.
    fn queued(&self) -> usize {
        self.loads.total_committed() - self.running.running
    }
}

/// Runs the event loop with the production [`CalendarQueue`].
pub(crate) fn run(
    fleet: &Fleet,
    jobs: &[Job],
    dispatcher: &mut dyn FleetDispatcher,
    control: &mut dyn ControlPolicy,
    telemetry: Option<&TelemetryConfig>,
    cache: &OutcomeCache,
    table: Option<&SolveTable>,
) -> Result<SimResult, RunError> {
    run_impl::<CalendarQueue>(fleet, jobs, dispatcher, control, telemetry, cache, table)
}

/// Runs the event loop with the original binary-heap [`EventQueue`] — the
/// ordering oracle the determinism regression tests pit the calendar
/// queue against.
pub(crate) fn run_with_heap(
    fleet: &Fleet,
    jobs: &[Job],
    dispatcher: &mut dyn FleetDispatcher,
    control: &mut dyn ControlPolicy,
    telemetry: Option<&TelemetryConfig>,
    cache: &OutcomeCache,
    table: Option<&SolveTable>,
) -> Result<SimResult, RunError> {
    run_impl::<EventQueue>(fleet, jobs, dispatcher, control, telemetry, cache, table)
}

/// Runs the event loop: arrivals dispatched against settled state,
/// completions expiring committed load, control ticks and set-point
/// changes steering the chiller, telemetry sampled on its own cadence.
///
/// When a published [`SolveTable`] is supplied the run's demand states
/// resolve lock-free off the frozen epoch ([`Fleet::simulate_with`](crate::Fleet::simulate_with)
/// publishes a covering table first); keys the table lacks — and the
/// whole resolution when `table` is `None`, the mutex-map oracle path —
/// fall back to [`OutcomeCache::get_or_solve`], still correct, just
/// locked.
fn run_impl<Q: KernelQueue + Default>(
    fleet: &Fleet,
    jobs: &[Job],
    dispatcher: &mut dyn FleetDispatcher,
    control: &mut dyn ControlPolicy,
    telemetry: Option<&TelemetryConfig>,
    cache: &OutcomeCache,
    table: Option<&SolveTable>,
) -> Result<SimResult, RunError> {
    let config = fleet.config();
    let locks_at_entry = cache.lock_acquisitions();
    let selector = MinPowerSelector;
    let solvers = fleet.class_solvers();
    let class_of = fleet.server_classes();
    let n_servers = config.total_servers();

    // Structure-of-arrays server state: availability, class and rack ids
    // as flat columns indexed by server id.
    let servers = ServerTable::new(class_of.to_vec(), config.servers_per_rack);
    // Rack groups: racks hosting the same class pattern are
    // interchangeable while idle, which is what collapses the dispatch
    // ranking from O(racks) to O(occupied + groups) per arrival.
    let mut group_classes: Vec<Vec<ClassId>> = Vec::new();
    let group_of: Vec<u32> = (0..config.racks)
        .map(|r| {
            let classes = servers.classes_in_rack(r);
            match group_classes.iter().position(|g| g.as_slice() == classes) {
                Some(i) => i as u32,
                None => {
                    group_classes.push(classes.to_vec());
                    (group_classes.len() - 1) as u32
                }
            }
        })
        .collect();
    // The hall partition: `shards = 1` is the old single-`RackLoads`
    // kernel verbatim; more shards split the racks into contiguous halls
    // whose candidate reductions and expiry streams merge back
    // deterministically (bit-identical outcomes either way — the
    // determinism matrix pins it). Dispatchers whose candidate fold
    // gains nothing from the partition (round-robin's counter, the
    // planner's hint replay, coolest-rack-first's group-min scan) opt
    // out and keep the cheaper single-hall indexed path — telemetry
    // sampling fans out over raw rack ranges either way, so no
    // parallelism is lost.
    let shards = if dispatcher.wants_hall_fanout() {
        config.shards.max(1)
    } else {
        1
    };
    let loads = HallLoads::new(config.racks, group_of, group_classes.len(), shards);

    // The per-(benchmark, QoS) demand states, solved once up front — a
    // million arrivals share a handful of distinct demand signatures, so
    // the per-arrival cache round-trip collapses to a slice index. The
    // per-job fields (runtime, wait budget) are derived per arrival from
    // the shared steady state with the exact same expressions as before.
    let mut pairs: Vec<(Benchmark, QosClass)> = jobs.iter().map(|j| (j.bench, j.qos)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    // With a published table, each class's `(policy, inlet)` solve slot
    // resolves once and every `(bench, qos)` lookup after that is pure
    // arithmetic on the shared frozen epoch — zero lock acquisitions.
    // Keys the table predates (or the oracle path, `table: None`) fall
    // back to the striped solve path.
    let class_slots: Vec<Option<usize>> = match table {
        Some(t) => solvers.iter().map(|s| t.class_slot(s)).collect(),
        None => Vec::new(),
    };
    let mut table_hits = 0usize;
    let mut miss_solves = 0usize;
    let mut pair_states: Vec<Vec<SteadyState>> = Vec::with_capacity(pairs.len());
    for &(bench, qos) in &pairs {
        let mut per_class = Vec::with_capacity(solvers.len());
        for (ci, solver) in solvers.iter().enumerate() {
            let frozen = table
                .and_then(|t| class_slots[ci].and_then(|slot| t.get(slot, solver.id, bench, qos)));
            per_class.push(match frozen {
                Some(state) => {
                    table_hits += 1;
                    state
                }
                None => {
                    if table.is_some() {
                        miss_solves += 1;
                    }
                    cache.get_or_solve(solver, bench, qos, &selector, config.t_case_max)?
                }
            });
        }
        pair_states.push(per_class);
    }
    if table_hits > 0 {
        cache.record_table_hits(table_hits);
    }
    if miss_solves > 0 {
        cache.record_miss_solves(miss_solves);
    }

    let mut queue = Q::default();
    // Arrivals in time order (id on ties), pushed in that order so the
    // queue's seq tie-break preserves it. Only a bounded lookahead window
    // is in the queue at once: each processed arrival streams the next
    // one in, so peak queue depth (and the calendar arena) stay O(window
    // + in-flight) instead of O(total jobs). Order is unaffected — every
    // unpushed arrival is no earlier than the latest pending one, and on
    // exact time ties the arrival class pops last anyway, so nothing can
    // pop before the window catches up to it.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival
            .value()
            .total_cmp(&jobs[b].arrival.value())
            .then(jobs[a].id.cmp(&jobs[b].id))
    });
    for &ji in order.iter().take(ARRIVAL_LOOKAHEAD) {
        queue.push(jobs[ji].arrival, Event::JobArrival(ji));
    }
    let mut next_arrival = order.len().min(ARRIVAL_LOOKAHEAD);
    // The control policy's pre-scheduled set-point program…
    for (t, c) in control.setpoint_program() {
        queue.push(t, Event::SetpointChange(c));
    }
    // …its tick cadence, and the telemetry cadence (both re-armed from
    // their own handlers while work remains).
    let tick = control.tick_interval();
    if let Some(dt) = tick {
        assert!(dt.value() > 0.0, "control tick interval must be positive");
        queue.push(dt, Event::ControlTick);
    }
    if let Some(t) = telemetry {
        assert!(
            t.sample_interval.value() > 0.0,
            "telemetry sample interval must be positive"
        );
        queue.push(Seconds::ZERO, Event::TelemetrySample);
    }

    // Planning policies capture the job stream, the solved physics and
    // the rack layout before the first event; reactive policies no-op.
    control.begin_run(&RunContext {
        jobs,
        pairs: &pairs,
        pair_states: &pair_states,
        chiller: &config.chiller,
        servers: &servers,
        classes: solvers.len(),
    });
    let mut state = FleetState::new(config, solvers.len(), jobs.len(), servers, loads);
    dispatcher.begin_run();
    // Closed-loop machinery — the running layer (telemetry's view of
    // started-not-finished jobs) and the JobCompletion events that keep
    // it and the tick/sample re-arming honest — costs two queue pushes
    // and two ordered-map insertions per placement. When nothing reads
    // it (open loop: no ticks, no telemetry) the kernel elides it: the
    // committed layer already expires lazily at each arrival, so the
    // event stream degenerates to arrivals only and the replay runs at
    // the pre-kernel simulator's speed.
    let closed_loop = telemetry.is_some() || tick.is_some();
    let mut placements: Vec<Placement> = Vec::with_capacity(jobs.len());
    let mut setpoints: Vec<(Seconds, Celsius)> = Vec::new();
    // Serving mode: per-request latency (dispatch wait + runtime, known
    // at placement time) feeds two integer-bucket sketches — the whole
    // run for reported percentiles, plus a per-tick window the
    // autoscaler reads and clears. The active-server timeline mirrors
    // the set-point timeline into the energy integration.
    let serving = config.serving;
    let mut latency_all = LatencyHistogram::default();
    let mut latency_window = LatencyHistogram::default();
    let mut activations: Vec<(Seconds, usize)> = Vec::new();
    let mut trace = telemetry.map(|t| {
        let mut trace = FleetTrace::with_classes(config.racks, fleet.class_names(), t.capacity);
        if serving {
            trace.enable_serving();
        }
        trace
    });
    let mut final_sampled = false;
    // Scratch for the control-tick rack views and per-class demands (hot
    // path: one buffer for the whole run instead of one allocation per
    // event).
    let mut rack_scratch: Vec<RackView> = Vec::with_capacity(config.racks);
    let mut class_scratch: Vec<ClassDemand> = Vec::with_capacity(solvers.len());

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::JobCompletion { .. } => {
                state.loads.expire_until(now);
                state.running.settle(now);
                // The trace ends exactly at the makespan: record the
                // drained fleet once, at the event that drains it.
                if state.done() && !final_sampled {
                    if let Some(trace) = trace.as_mut() {
                        trace.push(sample(&state, now, config, serving.then_some(&latency_all)));
                        final_sampled = true;
                    }
                }
            }
            Event::SetpointChange(c) => {
                state.chiller = config.chiller.with_ambient(c);
                state.chiller_epoch += 1;
                state.setpoint = c;
                setpoints.push((now, c));
            }
            Event::ControlTick => {
                if !state.done() {
                    state.loads.expire_until(now);
                    state.running.settle(now);
                    state.loads.views_into(&mut rack_scratch);
                    let status = ControlStatus {
                        now,
                        committed: state.loads.total_committed(),
                        running: state.running.running,
                        queued: state.queued(),
                        shed: state.shed,
                        violations: state.violations,
                        setpoint: state.setpoint,
                        shedding: state.shedding,
                        racks: &rack_scratch,
                        active_servers: state.servers.active_servers(),
                        total_servers: n_servers,
                        recent_p99: if serving {
                            latency_window.quantile(0.99)
                        } else {
                            None
                        },
                    };
                    for action in control.on_tick(&status) {
                        match action {
                            ControlAction::SetSetpoint(c) => {
                                state.chiller = config.chiller.with_ambient(c);
                                state.chiller_epoch += 1;
                                state.setpoint = c;
                                setpoints.push((now, c));
                            }
                            ControlAction::SetShedding(on) => state.shedding = on,
                            ControlAction::SetActiveServers(n) => {
                                let prev = state.servers.active_servers();
                                let actual = state.servers.set_active_servers(n);
                                if actual != prev {
                                    activations.push((now, actual));
                                }
                            }
                        }
                    }
                    // Each tick reads a fresh latency window.
                    if serving {
                        latency_window.clear();
                    }
                    let dt = tick.expect("ticks only fire when an interval is set");
                    queue.push(now + dt, Event::ControlTick);
                }
            }
            Event::TelemetrySample => {
                if !state.done() {
                    state.running.settle(now);
                    let t = telemetry.expect("samples only fire when telemetry is on");
                    if let Some(trace) = trace.as_mut() {
                        trace.push(sample(&state, now, config, serving.then_some(&latency_all)));
                    }
                    queue.push(now + t.sample_interval, Event::TelemetrySample);
                }
            }
            Event::JobArrival(ji) => {
                // Stream the next arrival in to replace this one, keeping
                // the lookahead window full until the stream runs dry.
                if next_arrival < order.len() {
                    let nj = order[next_arrival];
                    queue.push(jobs[nj].arrival, Event::JobArrival(nj));
                    next_arrival += 1;
                }
                let job = &jobs[ji];
                state.pending_arrivals -= 1;
                state.loads.expire_until(now);
                if state.shedding {
                    state.shed += 1;
                    // A run can end on a shed arrival (everything placed
                    // has finished, the rest of the stream is dropped):
                    // the final trace row must still carry the final shed
                    // count, so the drained-fleet sample records here too.
                    if state.done() && !final_sampled {
                        if let Some(trace) = trace.as_mut() {
                            state.running.settle(now);
                            trace.push(sample(
                                &state,
                                now,
                                config,
                                serving.then_some(&latency_all),
                            ));
                            final_sampled = true;
                        }
                    }
                    continue;
                }
                // The job's demand on every catalog class: the same
                // workload runs hotter (or slower) on one hardware bin
                // than another, and the dispatcher ranks those options.
                let pair = pairs
                    .binary_search(&(job.bench, job.qos))
                    .expect("every (bench, qos) pair was precomputed")
                    as u32;
                class_scratch.clear();
                for steady in &pair_states[pair as usize] {
                    class_scratch.push(ClassDemand {
                        state: *steady,
                        runtime: job.service * steady.normalized_time,
                        wait_budget: job.wait_budget(steady.normalized_time),
                    });
                }
                let demand = JobDemand {
                    job,
                    classes: &class_scratch,
                    sig: pair,
                };
                // Unsharded: the exact pre-hall view (global slice +
                // incremental index). Sharded: the per-hall view, where
                // each dispatcher reduces one candidate per hall on the
                // same total tie-break key the global walk sorts by.
                let single = state.loads.single();
                let view = FleetView {
                    now,
                    racks: single.map_or(&[][..], |l| l.view_slice()),
                    servers: &state.servers,
                    chiller: &state.chiller,
                    chiller_epoch: state.chiller_epoch,
                    index: single.map(|l| FleetIndex {
                        occupied: l.occupied_racks(),
                        idle_min: l.idle_group_mins(),
                        group_of: l.rack_groups(),
                        group_classes: &group_classes,
                        stamps: l.stamps(),
                    }),
                    halls: single.is_none().then(|| FleetHalls {
                        parts: state.loads.parts(),
                        bounds: state.loads.bounds(),
                        hall_of: state.loads.hall_of(),
                        group_classes: &group_classes,
                    }),
                };
                // A planning control policy may have a placement hint for
                // this job; the kernel validates it against the live
                // fleet and falls back to the dispatcher when it's stale,
                // so hints can redirect placements but never add QoS
                // violations the dispatcher would have avoided.
                let placed = hinted_server(control.placement_hint(job), &demand, &view)
                    .unwrap_or_else(|| dispatcher.place(&demand, &view));
                assert!(
                    placed < state.servers.active_servers(),
                    "dispatcher placed outside the active fleet"
                );
                let class = state.servers.class_of(placed);
                let chosen = demand.classes[class];
                let steady = chosen.state;
                let start = Seconds::new(now.value().max(state.servers.free_at(placed).value()));
                let wait = start - now;
                if serving {
                    // Request latency is fully determined at placement:
                    // dispatch wait plus the chosen configuration's runtime.
                    let latency = wait + chosen.runtime;
                    latency_all.record(latency);
                    latency_window.record(latency);
                }
                let rack = state.servers.rack_of(placed);
                let end = start + chosen.runtime;
                let violated = wait.value() > chosen.wait_budget.value() + 1e-9;
                if violated {
                    state.violations += 1;
                }
                placements.push(Placement {
                    job: job.id,
                    server: placed,
                    rack,
                    class,
                    start,
                    end,
                    wait,
                    violated,
                    state: steady,
                });
                state.loads.add(rack, &steady, end);
                state.servers.set_free_at(placed, end);
                if closed_loop {
                    state.running.commit(rack, class, &steady, start, end);
                    queue.push(
                        end,
                        Event::JobCompletion {
                            job: job.id,
                            server: placed,
                        },
                    );
                }
            }
        }
    }

    let qstats = queue.stats();
    let mut outcome = integrate_energy(
        dispatcher.name(),
        control.name(),
        placements,
        state.shed,
        config,
        &fleet.class_names(),
        &setpoints,
        &activations,
    );
    if serving {
        // Time-weighted mean of the active-server timeline over the run,
        // plus the envelope the autoscaler actually explored.
        let makespan = outcome.makespan.value();
        let mut mean = 0.0;
        let mut t_prev = 0.0;
        let mut cur = n_servers;
        let mut min_a = n_servers;
        let mut max_a = n_servers;
        for &(t, n) in &activations {
            let t = t.value().clamp(0.0, makespan);
            mean += cur as f64 * (t - t_prev);
            t_prev = t;
            cur = n;
            min_a = min_a.min(n);
            max_a = max_a.max(n);
        }
        mean += cur as f64 * (makespan - t_prev);
        let mean = if makespan > 0.0 {
            mean / makespan
        } else {
            cur as f64
        };
        outcome.serving = Some(ServingOutcome {
            requests: outcome.placements.len(),
            latency_p50: latency_all.quantile(0.5).unwrap_or(Seconds::ZERO),
            latency_p95: latency_all.quantile(0.95).unwrap_or(Seconds::ZERO),
            latency_p99: latency_all.quantile(0.99).unwrap_or(Seconds::ZERO),
            mean_active_servers: mean,
            min_active_servers: min_a,
            max_active_servers: max_a,
        });
    }
    let halls = state
        .loads
        .bounds()
        .iter()
        .zip(state.loads.counters())
        .enumerate()
        .map(
            |(hall, (&(rack_lo, rack_hi), (placements, expiries)))| HallStats {
                hall,
                rack_lo,
                rack_hi,
                placements,
                expiries,
            },
        )
        .collect();
    Ok(SimResult {
        outcome,
        trace,
        stats: KernelStats {
            events: qstats.pushed,
            peak_queue_depth: qstats.peak_depth,
            arena_high_water: qstats.arena_high_water,
            table_hits,
            miss_solves,
            // Cache locks observed over this run. A steady-state replay
            // on a covering table reads 0 — the zero-lock smoke pins it.
            lock_acquisitions: cache.lock_acquisitions() - locks_at_entry,
            halls,
        },
    })
}

/// Resolves a control-policy placement hint to a concrete server, or
/// `None` when the hint no longer holds: the rack left the active
/// prefix, the class id is unknown, the rack hosts no such class, or the
/// earliest free server of that class would blow the job's wait budget.
/// Falling back to the dispatcher in all of those cases means hints can
/// only redirect placements the fleet can absorb.
fn hinted_server(
    hint: Option<PlacementHint>,
    demand: &JobDemand<'_>,
    view: &FleetView<'_>,
) -> Option<usize> {
    let hint = hint?;
    if hint.rack >= view.servers.active_racks() || hint.class >= demand.classes.len() {
        return None;
    }
    let (server, _) = view.servers.earliest_free_of_class(hint.rack, hint.class)?;
    let wait = view.wait_on(server);
    (wait.value() <= demand.class(hint.class).wait_budget.value() + 1e-9).then_some(server)
}

/// Captures one telemetry sample from the settled running layer. In
/// serving mode `latency` carries the whole-run percentile sketch and the
/// sample gains the active-server count and latency quantiles.
/// Fills one contiguous rack range's telemetry columns: settled running
/// heat, coldest running supply, and that rack's chiller electrical power
/// (left at `0.0` for racks with no supply — the caller's sequential sum
/// skips those, exactly like the old fused loop did).
fn cooling_chunk(
    running: &RunningSet,
    chiller: &tps_cooling::Chiller,
    lo: usize,
    heat_out: &mut [Watts],
    water_out: &mut [Option<Celsius>],
    cooling_out: &mut [f64],
) {
    for (i, ((h, w), c)) in heat_out
        .iter_mut()
        .zip(water_out.iter_mut())
        .zip(cooling_out.iter_mut())
        .enumerate()
    {
        let r = lo + i;
        let heat = running.heat[r].max(0.0);
        let supply = running.water[r]
            .first_key_value()
            .map(|(&bits, _)| Celsius::new(f64::from_bits(bits)));
        if let Some(supply) = supply {
            *c = chiller.electrical_power(Watts::new(heat), supply).value();
        }
        *h = Watts::new(heat);
        *w = supply;
    }
}

fn sample(
    state: &FleetState,
    now: Seconds,
    config: &FleetConfig,
    latency: Option<&LatencyHistogram>,
) -> FleetSample {
    let running = &state.running;
    let idle = state
        .servers
        .active_servers()
        .saturating_sub(running.running) as f64
        * config.idle_server_power.value();
    // Two-pass cooling: per-rack heat/supply/chiller power first (each
    // rack's values are independent, so halls can fill their ranges on
    // worker threads), then one *sequential* rack-order sum — the exact
    // accumulation order of the unsharded kernel, so the fan-out can
    // never perturb a bit of the trace.
    let racks = config.racks;
    let mut rack_heat = vec![Watts::ZERO; racks];
    let mut rack_water: Vec<Option<Celsius>> = vec![None; racks];
    let mut rack_cooling = vec![0.0f64; racks];
    // The fan-out chunks raw rack ranges, not hall bounds: per-rack
    // values are independent, so the partition owes nothing to the hall
    // layout — a dispatcher that opts out of hall sharding keeps full
    // telemetry parallelism.
    let workers = config.threads.max(1);
    if workers > 1 && racks >= HALL_FANOUT_MIN_RACKS {
        // Split `0..racks` into `workers` contiguous ranges (the thread
        // budget is shared with sweep workers — see `thread_budget`), one
        // scoped worker per range, each writing disjoint rack slices.
        let per = racks.div_ceil(workers);
        let chiller = &state.chiller;
        std::thread::scope(|s| {
            let mut heat_rest = &mut rack_heat[..];
            let mut water_rest = &mut rack_water[..];
            let mut cool_rest = &mut rack_cooling[..];
            let mut lo = 0;
            while lo < racks {
                let hi = (lo + per).min(racks);
                let (heat, hr) = heat_rest.split_at_mut(hi - lo);
                let (water, wr) = water_rest.split_at_mut(hi - lo);
                let (cool, cr) = cool_rest.split_at_mut(hi - lo);
                heat_rest = hr;
                water_rest = wr;
                cool_rest = cr;
                s.spawn(move || cooling_chunk(running, chiller, lo, heat, water, cool));
                lo = hi;
            }
        });
    } else {
        cooling_chunk(
            running,
            &state.chiller,
            0,
            &mut rack_heat,
            &mut rack_water,
            &mut rack_cooling,
        );
    }
    let mut cooling = 0.0;
    for r in 0..racks {
        if rack_water[r].is_some() {
            cooling += rack_cooling[r];
        }
    }
    FleetSample {
        t: now,
        setpoint: state.setpoint,
        queued: state.queued(),
        running: running.running,
        shed: state.shed,
        violations: state.violations,
        it_power: Watts::new(running.active_power + idle),
        cooling_power: Watts::new(cooling),
        rack_heat,
        rack_water,
        class_running: running.class_running.clone(),
        class_it_power: running.class_power.iter().map(|&p| Watts::new(p)).collect(),
        serving: latency.map(|h| ServingSample {
            active_servers: state.servers.active_servers(),
            p50: h.quantile(0.5).unwrap_or(Seconds::ZERO),
            p95: h.quantile(0.95).unwrap_or(Seconds::ZERO),
            p99: h.quantile(0.99).unwrap_or(Seconds::ZERO),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_class_then_push_order() {
        let mut q = EventQueue::new();
        let t = Seconds::new(10.0);
        q.push(t, Event::JobArrival(0));
        q.push(t, Event::TelemetrySample);
        q.push(t, Event::ControlTick);
        q.push(t, Event::SetpointChange(Celsius::new(45.0)));
        q.push(t, Event::JobCompletion { job: 9, server: 1 });
        q.push(Seconds::new(2.0), Event::JobArrival(7));
        assert_eq!(q.len(), 6);

        // Earlier time first, regardless of class.
        assert_eq!(q.pop(), Some((Seconds::new(2.0), Event::JobArrival(7))));
        // Same instant: completion, set-point, tick, sample, arrival.
        assert_eq!(
            q.pop(),
            Some((t, Event::JobCompletion { job: 9, server: 1 }))
        );
        assert_eq!(
            q.pop(),
            Some((t, Event::SetpointChange(Celsius::new(45.0))))
        );
        assert_eq!(q.pop(), Some((t, Event::ControlTick)));
        assert_eq!(q.pop(), Some((t, Event::TelemetrySample)));
        assert_eq!(q.pop(), Some((t, Event::JobArrival(0))));
        assert!(q.is_empty());
        let stats = q.stats();
        assert_eq!(stats.pushed, 6);
        assert_eq!(stats.peak_depth, 6);
    }

    #[test]
    fn queue_ties_within_a_class_pop_in_push_order() {
        let mut q = EventQueue::new();
        let t = Seconds::new(3.0);
        for id in [4usize, 2, 9] {
            q.push(t, Event::JobArrival(id));
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            popped,
            vec![
                Event::JobArrival(4),
                Event::JobArrival(2),
                Event::JobArrival(9)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn queue_rejects_negative_times() {
        EventQueue::new().push(Seconds::new(-1.0), Event::ControlTick);
    }

    #[test]
    fn rack_loads_track_supply_and_drain_to_exact_zero() {
        let mut loads = RackLoads::new(2);
        let state = |heat: f64, water: f64| SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(water),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        };
        loads.add(0, &state(50.0, 80.0), Seconds::new(10.0));
        loads.add(0, &state(70.0, 60.0), Seconds::new(20.0));
        assert_eq!(loads.total_committed(), 2);
        let views = loads.views();
        assert_eq!(views[0].heat, Watts::new(120.0));
        // The coldest committed demand caps the shared supply.
        assert_eq!(views[0].supply, Some(Celsius::new(60.0)));
        assert_eq!(views[1].supply, None);

        loads.expire_until(Seconds::new(10.0));
        let views = loads.views();
        assert_eq!(views[0].heat, Watts::new(70.0));
        assert_eq!(views[0].supply, Some(Celsius::new(60.0)));

        loads.expire_until(Seconds::new(25.0));
        let views = loads.views();
        assert_eq!(views[0].heat.value(), 0.0);
        assert_eq!(views[0].supply, None);
        assert_eq!(loads.total_committed(), 0);
    }

    #[test]
    fn rack_loads_maintain_the_occupancy_index() {
        let mut loads = RackLoads::with_groups(4, vec![0, 0, 1, 1], 2);
        assert_eq!(loads.occupied_racks().len(), 0);
        assert_eq!(loads.idle_groups()[0].len(), 2);
        assert_eq!(loads.idle_groups()[1].len(), 2);

        let state = |heat: f64| SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(70.0),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        };
        loads.add(2, &state(50.0), Seconds::new(10.0));
        loads.add(0, &state(30.0), Seconds::new(20.0));
        // Occupied orders by heat (bits), not rack index.
        let occ: Vec<u32> = loads.occupied_racks().iter().map(|e| e.rack).collect();
        assert_eq!(occ, vec![0, 2]);
        assert_eq!(
            loads.idle_groups()[0].iter().copied().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            loads.idle_groups()[1].iter().copied().collect::<Vec<_>>(),
            vec![3]
        );
        let stamp_before = loads.stamps()[2];

        loads.expire_until(Seconds::new(15.0));
        // Rack 2 drained: back to its group's idle set, stamp bumped.
        assert_eq!(loads.occupied_racks().len(), 1);
        assert_eq!(
            loads.idle_groups()[1].iter().copied().collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(loads.stamps()[2] > stamp_before);
        // Maintained views match a naive read of the drained state.
        assert_eq!(loads.view_slice()[2].heat.value(), 0.0);
        assert_eq!(loads.view_slice()[2].committed, 0);
        assert_eq!(loads.view_slice()[0].heat, Watts::new(30.0));
    }

    #[test]
    fn running_set_settles_starts_before_ends_and_pins_zero() {
        let mut run = RunningSet::new(1, 2);
        let state = |heat: f64| SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(70.0),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        };
        run.commit(0, 0, &state(40.0), Seconds::new(0.0), Seconds::new(10.0));
        run.commit(0, 1, &state(60.0), Seconds::new(10.0), Seconds::new(20.0));
        run.settle(Seconds::new(5.0));
        assert_eq!(run.running, 1);
        assert_eq!(run.active_power, 40.0);
        assert_eq!(run.class_running, vec![1, 0]);
        // At t = 10 the first job's end and the second's start coincide:
        // both fold, leaving exactly the second running.
        run.settle(Seconds::new(10.0));
        assert_eq!(run.running, 1);
        assert_eq!(run.active_power, 60.0);
        assert_eq!(run.class_running, vec![0, 1]);
        assert_eq!(run.class_power, vec![0.0, 60.0]);
        run.settle(Seconds::new(30.0));
        assert_eq!(run.running, 0);
        assert_eq!(run.active_power, 0.0);
        assert_eq!(run.heat[0], 0.0);
        assert_eq!(run.class_power, vec![0.0, 0.0]);
    }
}
