//! Runtime control: policies evaluated by the event kernel while the
//! simulation runs.
//!
//! The dispatchers of [`crate::dispatch`] decide *where* a job goes at its
//! arrival instant; a [`ControlPolicy`] decides how the *fleet itself*
//! behaves over time — re-programming the chiller/heat-reuse set-point
//! ([`Event::SetpointChange`](crate::Event)) and observing the fleet on a
//! fixed cadence ([`Event::ControlTick`](crate::Event)) to steer admission.
//! This mirrors the controlled-dynamical-system view of thermal-aware data
//! centers (Van Damme et al.; Rostami et al.): placement is the inner
//! loop, set-point and admission control the outer one.
//!
//! Three policies ship:
//!
//! * [`StaticControl`] — no ticks, no set-point moves; exactly the
//!   open-loop behavior of the plain fleet simulator.
//! * [`SetpointScheduler`] — a time-tagged chiller set-point program
//!   (e.g. drop the heat-reuse loop during the diurnal peak).
//! * [`LoadSheddingControl`] — hysteretic admission control: shed
//!   arrivals while the queue backlog exceeds a high watermark, re-admit
//!   once it drains below the low one.

use crate::dispatch::RackView;
use tps_units::{Celsius, Seconds};

/// A read-only snapshot of the fleet handed to the control policy on
/// every [`ControlTick`](crate::Event::ControlTick).
#[derive(Debug)]
pub struct ControlStatus<'a> {
    /// The tick instant.
    pub now: Seconds,
    /// Placements committed (running or queued).
    pub committed: usize,
    /// Placements currently executing.
    pub running: usize,
    /// Placements queued behind busy servers.
    pub queued: usize,
    /// Arrivals shed so far.
    pub shed: usize,
    /// QoS violations so far.
    pub violations: usize,
    /// The current chiller/heat-reuse set-point.
    pub setpoint: Celsius,
    /// Whether admission control is currently shedding arrivals.
    pub shedding: bool,
    /// Per-rack committed load (same views the dispatchers see).
    pub racks: &'a [RackView],
}

/// An action a control policy emits from a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Move the chiller/heat-reuse set-point (takes effect immediately
    /// for dispatch and energy accounting).
    SetSetpoint(Celsius),
    /// Engage (`true`) or release (`false`) arrival shedding.
    SetShedding(bool),
}

/// A runtime control policy evaluated by the event kernel.
///
/// All methods have no-op defaults, so a policy only implements the
/// surfaces it uses: a pre-computed set-point program, a tick cadence
/// with a feedback rule, or both.
pub trait ControlPolicy {
    /// Policy name, carried into [`FleetOutcome`](crate::FleetOutcome)
    /// and report tables.
    fn name(&self) -> &'static str;

    /// Set-point changes to pre-schedule as
    /// [`SetpointChange`](crate::Event::SetpointChange) events, as
    /// `(time, set-point)` pairs. Times must be non-negative and finite.
    fn setpoint_program(&self) -> Vec<(Seconds, Celsius)> {
        Vec::new()
    }

    /// Cadence of [`ControlTick`](crate::Event::ControlTick) events
    /// (first tick one interval in); `None` disables ticks.
    fn tick_interval(&self) -> Option<Seconds> {
        None
    }

    /// Evaluated on every tick; returned actions apply in order.
    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        let _ = status;
        Vec::new()
    }
}

/// Today's open-loop behavior: no ticks, no set-point program. With this
/// policy (and telemetry off) the kernel reproduces the pre-kernel fleet
/// simulator bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticControl;

impl ControlPolicy for StaticControl {
    fn name(&self) -> &'static str {
        "static"
    }
}

/// A time-tagged chiller set-point program, e.g. a diurnal schedule that
/// sacrifices heat-reuse temperature for chiller COP during the load
/// peak and restores it overnight.
///
/// ```
/// use tps_cluster::{ControlPolicy, SetpointScheduler};
/// use tps_units::{Celsius, Seconds};
///
/// let sched = SetpointScheduler::new(vec![
///     (Seconds::ZERO, Celsius::new(70.0)),
///     (Seconds::new(150.0), Celsius::new(45.0)),
///     (Seconds::new(450.0), Celsius::new(70.0)),
/// ]);
/// assert_eq!(sched.name(), "setpoint");
/// assert_eq!(sched.setpoint_program().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SetpointScheduler {
    program: Vec<(Seconds, Celsius)>,
}

impl SetpointScheduler {
    /// A scheduler that replays `program` (strictly ascending times).
    ///
    /// # Panics
    ///
    /// Panics if the program is empty, a time is negative or not finite,
    /// the times are not strictly ascending, or a set-point is not finite.
    pub fn new(program: Vec<(Seconds, Celsius)>) -> Self {
        assert!(!program.is_empty(), "set-point program must not be empty");
        for (i, (t, c)) in program.iter().enumerate() {
            assert!(
                t.value() >= 0.0 && t.value().is_finite(),
                "set-point time {t} must be non-negative and finite"
            );
            assert!(c.value().is_finite(), "set-point {c} must be finite");
            if i > 0 {
                assert!(
                    program[i - 1].0.value() < t.value(),
                    "set-point times must be strictly ascending"
                );
            }
        }
        Self { program }
    }
}

impl ControlPolicy for SetpointScheduler {
    fn name(&self) -> &'static str {
        "setpoint"
    }

    fn setpoint_program(&self) -> Vec<(Seconds, Celsius)> {
        self.program.clone()
    }
}

/// Hysteretic admission control: on every tick, start shedding arrivals
/// when the queued backlog reaches `high_watermark`, stop once it drains
/// to `low_watermark` or below. Shed jobs are counted, never placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSheddingControl {
    tick: Seconds,
    high_watermark: usize,
    low_watermark: usize,
}

impl LoadSheddingControl {
    /// A shedding controller ticking every `tick` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `tick` is positive and finite and
    /// `low_watermark < high_watermark`.
    pub fn new(tick: Seconds, high_watermark: usize, low_watermark: usize) -> Self {
        assert!(
            tick.value() > 0.0 && tick.value().is_finite(),
            "tick interval must be positive and finite"
        );
        assert!(
            low_watermark < high_watermark,
            "need low_watermark < high_watermark for hysteresis"
        );
        Self {
            tick,
            high_watermark,
            low_watermark,
        }
    }
}

impl ControlPolicy for LoadSheddingControl {
    fn name(&self) -> &'static str {
        "shed"
    }

    fn tick_interval(&self) -> Option<Seconds> {
        Some(self.tick)
    }

    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        if !status.shedding && status.queued >= self.high_watermark {
            vec![ControlAction::SetShedding(true)]
        } else if status.shedding && status.queued <= self.low_watermark {
            vec![ControlAction::SetShedding(false)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(queued: usize, shedding: bool) -> ControlStatus<'static> {
        ControlStatus {
            now: Seconds::new(60.0),
            committed: queued + 2,
            running: 2,
            queued,
            shed: 0,
            violations: 0,
            setpoint: Celsius::new(70.0),
            shedding,
            racks: &[],
        }
    }

    #[test]
    fn static_control_is_inert() {
        let mut c = StaticControl;
        assert_eq!(c.name(), "static");
        assert!(c.setpoint_program().is_empty());
        assert!(c.tick_interval().is_none());
        assert!(c.on_tick(&status(100, false)).is_empty());
    }

    #[test]
    fn shedding_hysteresis_engages_and_releases() {
        let mut c = LoadSheddingControl::new(Seconds::new(30.0), 8, 2);
        assert_eq!(c.tick_interval(), Some(Seconds::new(30.0)));
        // Below the high watermark: nothing.
        assert!(c.on_tick(&status(7, false)).is_empty());
        // At the high watermark: engage.
        assert_eq!(
            c.on_tick(&status(8, false)),
            vec![ControlAction::SetShedding(true)]
        );
        // Inside the hysteresis band while shedding: hold.
        assert!(c.on_tick(&status(5, true)).is_empty());
        // At the low watermark: release.
        assert_eq!(
            c.on_tick(&status(2, true)),
            vec![ControlAction::SetShedding(false)]
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn shedding_rejects_inverted_watermarks() {
        let _ = LoadSheddingControl::new(Seconds::new(30.0), 2, 8);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn scheduler_rejects_unsorted_programs() {
        let _ = SetpointScheduler::new(vec![
            (Seconds::new(10.0), Celsius::new(45.0)),
            (Seconds::new(10.0), Celsius::new(70.0)),
        ]);
    }
}
