//! Runtime control: policies evaluated by the event kernel while the
//! simulation runs.
//!
//! The dispatchers of [`crate::dispatch`] decide *where* a job goes at its
//! arrival instant; a [`ControlPolicy`] decides how the *fleet itself*
//! behaves over time — re-programming the chiller/heat-reuse set-point
//! ([`Event::SetpointChange`](crate::Event)) and observing the fleet on a
//! fixed cadence ([`Event::ControlTick`](crate::Event)) to steer admission.
//! This mirrors the controlled-dynamical-system view of thermal-aware data
//! centers (Van Damme et al.; Rostami et al.): placement is the inner
//! loop, set-point and admission control the outer one.
//!
//! Five policies ship:
//!
//! * [`StaticControl`] — no ticks, no set-point moves; exactly the
//!   open-loop behavior of the plain fleet simulator.
//! * [`SetpointScheduler`] — a time-tagged chiller set-point program
//!   (e.g. drop the heat-reuse loop during the diurnal peak).
//! * [`LoadSheddingControl`] — hysteretic admission control: shed
//!   arrivals while the queue backlog exceeds a high watermark, re-admit
//!   once it drains below the low one.
//! * [`AutoscaleControl`] — hysteretic capacity control for serving
//!   mode: grow the active-server set when queueing or tail latency
//!   breaches its targets, shrink it when the fleet runs well under
//!   them, and pocket the idle-floor energy in between.
//! * [`PlannerControl`](crate::plan::PlannerControl) — a global
//!   optimizing planner that re-plans joint placements and the chiller
//!   set-point over a job horizon on every tick, publishing placement
//!   hints the kernel consults via [`ControlPolicy::placement_hint`].

use crate::cache::SteadyState;
use crate::catalog::ClassId;
use crate::dispatch::{RackView, ServerTable};
use crate::job::Job;
use tps_cooling::Chiller;
use tps_units::{Celsius, Seconds};
use tps_workload::{Benchmark, QosClass};

/// Read-only run inputs handed to [`ControlPolicy::begin_run`] before the
/// kernel's event loop starts: the full job stream and the physics it
/// was solved against. Planning policies capture what they need here;
/// reactive policies ignore it.
#[derive(Debug)]
pub struct RunContext<'a> {
    /// Every job in the run, in input order.
    pub jobs: &'a [Job],
    /// Sorted, deduplicated `(bench, qos)` pairs present in the stream.
    pub pairs: &'a [(Benchmark, QosClass)],
    /// Steady states per pair (outer index) × server class (inner).
    pub pair_states: &'a [Vec<SteadyState>],
    /// The configured chiller (base ambient for set-point candidates).
    pub chiller: &'a Chiller,
    /// The fleet's server table (rack layout and class placement).
    pub servers: &'a ServerTable,
    /// Number of server classes in the catalog.
    pub classes: usize,
}

/// A per-job placement suggestion published by a planning control policy.
///
/// The kernel treats hints as advisory: a hint is validated against the
/// live fleet (active rack, hosted class, wait budget) and silently falls
/// back to the configured dispatcher when it no longer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementHint {
    /// Target rack index.
    pub rack: usize,
    /// Target server class within the rack.
    pub class: ClassId,
}

/// A read-only snapshot of the fleet handed to the control policy on
/// every [`ControlTick`](crate::Event::ControlTick).
#[derive(Debug)]
pub struct ControlStatus<'a> {
    /// The tick instant.
    pub now: Seconds,
    /// Placements committed (running or queued).
    pub committed: usize,
    /// Placements currently executing.
    pub running: usize,
    /// Placements queued behind busy servers.
    pub queued: usize,
    /// Arrivals shed so far.
    pub shed: usize,
    /// QoS violations so far.
    pub violations: usize,
    /// The current chiller/heat-reuse set-point.
    pub setpoint: Celsius,
    /// Whether admission control is currently shedding arrivals.
    pub shedding: bool,
    /// Per-rack committed load (same views the dispatchers see).
    pub racks: &'a [RackView],
    /// Servers currently active (eligible for placement).
    pub active_servers: usize,
    /// Total servers in the fleet (the activation ceiling).
    pub total_servers: usize,
    /// 99th-percentile request latency over the window since the last
    /// tick (`None` in batch mode or when no request completed dispatch
    /// in the window).
    pub recent_p99: Option<Seconds>,
}

/// An action a control policy emits from a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Move the chiller/heat-reuse set-point (takes effect immediately
    /// for dispatch and energy accounting).
    SetSetpoint(Celsius),
    /// Engage (`true`) or release (`false`) arrival shedding.
    SetShedding(bool),
    /// Resize the active-server set. The kernel rounds the request to
    /// rack granularity and clamps it to `[servers_per_rack, total]`;
    /// running jobs on deactivated servers drain to completion.
    SetActiveServers(usize),
}

/// A runtime control policy evaluated by the event kernel.
///
/// All methods have no-op defaults, so a policy only implements the
/// surfaces it uses: a pre-computed set-point program, a tick cadence
/// with a feedback rule, or both.
pub trait ControlPolicy {
    /// Policy name, carried into [`FleetOutcome`](crate::FleetOutcome)
    /// and report tables.
    fn name(&self) -> &'static str;

    /// Set-point changes to pre-schedule as
    /// [`SetpointChange`](crate::Event::SetpointChange) events, as
    /// `(time, set-point)` pairs. Times must be non-negative and finite.
    fn setpoint_program(&self) -> Vec<(Seconds, Celsius)> {
        Vec::new()
    }

    /// Cadence of [`ControlTick`](crate::Event::ControlTick) events
    /// (first tick one interval in); `None` disables ticks.
    fn tick_interval(&self) -> Option<Seconds> {
        None
    }

    /// Evaluated on every tick; returned actions apply in order.
    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        let _ = status;
        Vec::new()
    }

    /// Called once before the event loop starts with the run's inputs.
    /// Planning policies capture the job stream and fleet layout here;
    /// the default keeps reactive policies oblivious.
    fn begin_run(&mut self, ctx: &RunContext<'_>) {
        let _ = ctx;
    }

    /// A placement hint for an arriving job, consulted by the kernel
    /// before the configured dispatcher. Returning `None` (the default)
    /// leaves placement entirely to the dispatcher; hints are validated
    /// by the kernel and fall back to the dispatcher when stale.
    fn placement_hint(&mut self, job: &Job) -> Option<PlacementHint> {
        let _ = job;
        None
    }
}

/// Today's open-loop behavior: no ticks, no set-point program. With this
/// policy (and telemetry off) the kernel reproduces the pre-kernel fleet
/// simulator bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticControl;

impl ControlPolicy for StaticControl {
    fn name(&self) -> &'static str {
        "static"
    }
}

/// A time-tagged chiller set-point program, e.g. a diurnal schedule that
/// sacrifices heat-reuse temperature for chiller COP during the load
/// peak and restores it overnight.
///
/// ```
/// use tps_cluster::{ControlPolicy, SetpointScheduler};
/// use tps_units::{Celsius, Seconds};
///
/// let sched = SetpointScheduler::new(vec![
///     (Seconds::ZERO, Celsius::new(70.0)),
///     (Seconds::new(150.0), Celsius::new(45.0)),
///     (Seconds::new(450.0), Celsius::new(70.0)),
/// ]);
/// assert_eq!(sched.name(), "setpoint");
/// assert_eq!(sched.setpoint_program().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SetpointScheduler {
    program: Vec<(Seconds, Celsius)>,
}

impl SetpointScheduler {
    /// A scheduler that replays `program` (strictly ascending times).
    ///
    /// # Panics
    ///
    /// Panics if the program is empty, a time is negative or not finite,
    /// the times are not strictly ascending, or a set-point is not finite.
    pub fn new(program: Vec<(Seconds, Celsius)>) -> Self {
        assert!(!program.is_empty(), "set-point program must not be empty");
        for (i, (t, c)) in program.iter().enumerate() {
            assert!(
                t.value() >= 0.0 && t.value().is_finite(),
                "set-point time {t} must be non-negative and finite"
            );
            assert!(c.value().is_finite(), "set-point {c} must be finite");
            if i > 0 {
                assert!(
                    program[i - 1].0.value() < t.value(),
                    "set-point times must be strictly ascending"
                );
            }
        }
        Self { program }
    }
}

impl ControlPolicy for SetpointScheduler {
    fn name(&self) -> &'static str {
        "setpoint"
    }

    fn setpoint_program(&self) -> Vec<(Seconds, Celsius)> {
        self.program.clone()
    }
}

/// Hysteretic admission control: on every tick, start shedding arrivals
/// when the queued backlog reaches `high_watermark`, stop once it drains
/// to `low_watermark` or below. Shed jobs are counted, never placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSheddingControl {
    tick: Seconds,
    high_watermark: usize,
    low_watermark: usize,
}

impl LoadSheddingControl {
    /// A shedding controller ticking every `tick` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `tick` is positive and finite and
    /// `low_watermark < high_watermark`.
    pub fn new(tick: Seconds, high_watermark: usize, low_watermark: usize) -> Self {
        assert!(
            tick.value() > 0.0 && tick.value().is_finite(),
            "tick interval must be positive and finite"
        );
        assert!(
            low_watermark < high_watermark,
            "need low_watermark < high_watermark for hysteresis"
        );
        Self {
            tick,
            high_watermark,
            low_watermark,
        }
    }
}

impl ControlPolicy for LoadSheddingControl {
    fn name(&self) -> &'static str {
        "shed"
    }

    fn tick_interval(&self) -> Option<Seconds> {
        Some(self.tick)
    }

    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        if !status.shedding && status.queued >= self.high_watermark {
            vec![ControlAction::SetShedding(true)]
        } else if status.shedding && status.queued <= self.low_watermark {
            vec![ControlAction::SetShedding(false)]
        } else {
            Vec::new()
        }
    }
}

/// Hysteretic capacity control for serving mode: on every tick, compare
/// the queued backlog *per active server* and the windowed p99 latency
/// against their targets.
///
/// * **Scale up** by `step` servers when the per-server backlog reaches
///   `queue_high` or the window's p99 breaches the SLO.
/// * **Scale down** by `step` servers (never below `min_servers`) only
///   when the backlog sits at or below `queue_low`, the SLO holds, *and*
///   the backlog would still clear `queue_high` at the smaller size — the
///   projection that, with `queue_low < queue_high`, keeps a constant
///   load from oscillating.
///
/// The kernel applies the request at rack granularity; deactivated
/// servers finish their running jobs but receive no new placements.
///
/// ```
/// use tps_cluster::{AutoscaleControl, ControlPolicy};
/// use tps_units::Seconds;
///
/// let ctrl = AutoscaleControl::new(Seconds::new(30.0), 8, 8, 2.0, 0.25, Seconds::new(10.0));
/// assert_eq!(ctrl.name(), "autoscale");
/// assert_eq!(ctrl.tick_interval(), Some(Seconds::new(30.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleControl {
    tick: Seconds,
    min_servers: usize,
    step: usize,
    queue_high: f64,
    queue_low: f64,
    p99_slo: Seconds,
}

impl AutoscaleControl {
    /// An autoscaler ticking every `tick` seconds, moving `step` servers
    /// at a time, never below `min_servers`, against a per-server backlog
    /// band `[queue_low, queue_high]` and a p99 latency SLO.
    ///
    /// # Panics
    ///
    /// Panics unless `tick` is positive and finite, `min_servers` and
    /// `step` are at least 1, `0 ≤ queue_low < queue_high` are finite,
    /// and `p99_slo` is positive and finite.
    pub fn new(
        tick: Seconds,
        min_servers: usize,
        step: usize,
        queue_high: f64,
        queue_low: f64,
        p99_slo: Seconds,
    ) -> Self {
        assert!(
            tick.value() > 0.0 && tick.value().is_finite(),
            "tick interval must be positive and finite"
        );
        assert!(min_servers >= 1, "need at least one server active");
        assert!(step >= 1, "scaling step must be at least one server");
        assert!(
            queue_low >= 0.0 && queue_low < queue_high && queue_high.is_finite(),
            "need 0 <= queue_low < queue_high for hysteresis"
        );
        assert!(
            p99_slo.value() > 0.0 && p99_slo.value().is_finite(),
            "p99 SLO must be positive and finite"
        );
        Self {
            tick,
            min_servers,
            step,
            queue_high,
            queue_low,
            p99_slo,
        }
    }

    /// The p99 latency SLO the controller defends.
    pub fn p99_slo(&self) -> Seconds {
        self.p99_slo
    }
}

impl ControlPolicy for AutoscaleControl {
    fn name(&self) -> &'static str {
        "autoscale"
    }

    fn tick_interval(&self) -> Option<Seconds> {
        Some(self.tick)
    }

    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        let active = status.active_servers.max(1);
        let per_server = status.queued as f64 / active as f64;
        let breach = status
            .recent_p99
            .is_some_and(|p99| p99.value() > self.p99_slo.value());
        if (per_server >= self.queue_high || breach) && status.active_servers < status.total_servers
        {
            return vec![ControlAction::SetActiveServers(
                status.active_servers.saturating_add(self.step),
            )];
        }
        if per_server <= self.queue_low && !breach && status.active_servers > self.min_servers {
            let target = status
                .active_servers
                .saturating_sub(self.step)
                .max(self.min_servers);
            // Project the same backlog onto the smaller fleet: only
            // shrink if it stays strictly inside the scale-up trigger.
            if (status.queued as f64) < self.queue_high * target as f64 {
                return vec![ControlAction::SetActiveServers(target)];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(queued: usize, shedding: bool) -> ControlStatus<'static> {
        ControlStatus {
            now: Seconds::new(60.0),
            committed: queued + 2,
            running: 2,
            queued,
            shed: 0,
            violations: 0,
            setpoint: Celsius::new(70.0),
            shedding,
            racks: &[],
            active_servers: 16,
            total_servers: 16,
            recent_p99: None,
        }
    }

    fn serving_status(
        queued: usize,
        active: usize,
        total: usize,
        p99: Option<f64>,
    ) -> ControlStatus<'static> {
        ControlStatus {
            now: Seconds::new(60.0),
            committed: queued,
            running: 0,
            queued,
            shed: 0,
            violations: 0,
            setpoint: Celsius::new(70.0),
            shedding: false,
            racks: &[],
            active_servers: active,
            total_servers: total,
            recent_p99: p99.map(Seconds::new),
        }
    }

    #[test]
    fn static_control_is_inert() {
        let mut c = StaticControl;
        assert_eq!(c.name(), "static");
        assert!(c.setpoint_program().is_empty());
        assert!(c.tick_interval().is_none());
        assert!(c.on_tick(&status(100, false)).is_empty());
    }

    #[test]
    fn shedding_hysteresis_engages_and_releases() {
        let mut c = LoadSheddingControl::new(Seconds::new(30.0), 8, 2);
        assert_eq!(c.tick_interval(), Some(Seconds::new(30.0)));
        // Below the high watermark: nothing.
        assert!(c.on_tick(&status(7, false)).is_empty());
        // At the high watermark: engage.
        assert_eq!(
            c.on_tick(&status(8, false)),
            vec![ControlAction::SetShedding(true)]
        );
        // Inside the hysteresis band while shedding: hold.
        assert!(c.on_tick(&status(5, true)).is_empty());
        // At the low watermark: release.
        assert_eq!(
            c.on_tick(&status(2, true)),
            vec![ControlAction::SetShedding(false)]
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn shedding_rejects_inverted_watermarks() {
        let _ = LoadSheddingControl::new(Seconds::new(30.0), 2, 8);
    }

    #[test]
    fn autoscale_scales_up_on_backlog_or_latency_breach() {
        let mut c = AutoscaleControl::new(Seconds::new(30.0), 4, 4, 2.0, 0.25, Seconds::new(5.0));
        // Backlog trigger: 20 queued / 8 active = 2.5 ≥ 2.0.
        assert_eq!(
            c.on_tick(&serving_status(20, 8, 32, None)),
            vec![ControlAction::SetActiveServers(12)]
        );
        // Latency trigger fires even with an empty queue.
        assert_eq!(
            c.on_tick(&serving_status(0, 8, 32, Some(6.0))),
            vec![ControlAction::SetActiveServers(12)]
        );
        // Already at the ceiling: hold.
        assert!(c
            .on_tick(&serving_status(100, 32, 32, Some(6.0)))
            .is_empty());
    }

    #[test]
    fn autoscale_scales_down_only_with_projected_headroom() {
        let mut c = AutoscaleControl::new(Seconds::new(30.0), 4, 4, 2.0, 0.25, Seconds::new(5.0));
        // 2 queued / 16 active = 0.125 ≤ 0.25, and 2 < 2.0 × 12: shrink.
        assert_eq!(
            c.on_tick(&serving_status(2, 16, 32, Some(1.0))),
            vec![ControlAction::SetActiveServers(12)]
        );
        // Inside the hysteresis band: hold.
        assert!(c.on_tick(&serving_status(16, 16, 32, Some(1.0))).is_empty());
        // SLO breached: never shrink, grow instead.
        assert_eq!(
            c.on_tick(&serving_status(0, 16, 32, Some(9.0))),
            vec![ControlAction::SetActiveServers(20)]
        );
        // At the floor: hold.
        assert!(c.on_tick(&serving_status(0, 4, 32, None)).is_empty());
        // The floor also clamps a partial step.
        let mut wide =
            AutoscaleControl::new(Seconds::new(30.0), 4, 16, 2.0, 0.25, Seconds::new(5.0));
        assert_eq!(
            wide.on_tick(&serving_status(0, 8, 32, None)),
            vec![ControlAction::SetActiveServers(4)]
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn autoscale_rejects_inverted_watermarks() {
        let _ = AutoscaleControl::new(Seconds::new(30.0), 4, 4, 0.25, 2.0, Seconds::new(5.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn scheduler_rejects_unsorted_programs() {
        let _ = SetpointScheduler::new(vec![
            (Seconds::new(10.0), Celsius::new(45.0)),
            (Seconds::new(10.0), Celsius::new(70.0)),
        ]);
    }
}
