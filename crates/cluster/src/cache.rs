//! Memoized per-server steady-state outcomes, two-tiered.
//!
//! A fleet run dispatches hundreds to thousands of jobs, but the
//! per-server physics depends only on `(server class, benchmark, qos,
//! mapping policy, water inlet)` — the coupled thermosyphon/thermal solve
//! is steady-state and every server of one class is identical.
//! [`OutcomeCache`] therefore computes each distinct key once (in
//! parallel across OS threads) and the event-driven simulator replays the
//! cached [`SteadyState`] summaries, which is what lets a million-job
//! scenario finish in seconds even on a heterogeneous fleet.
//!
//! The cache has two tiers:
//!
//! * a **frozen dense [`SolveTable`]** — a flat `Vec` indexed by a dense
//!   `(solve slot, class, bench, qos)` key computed arithmetically (no
//!   hashing, no tree walk, no lock), published as an immutable epoch and
//!   shared read-only (`Arc`) across halls and sweep workers. This is the
//!   steady-state hot path: once a run's keys are published, resolving
//!   its demand states acquires **zero** locks.
//! * a **sharded on-demand miss path** — the mutable `BTreeMap`, striped
//!   across [`STRIPES`] locks by key hash, that absorbs keys the table
//!   does not cover yet (a new `inlet_milli` from a swept set-point, a
//!   planner grid, lazily-solved pairs). Misses are folded into a *new*
//!   table epoch at the next global synchronization point — a run start,
//!   the same place the kernel's chiller epoch advances — so readers
//!   never observe a torn table: they hold the epoch they started with.
//!
//! Counter taxonomy: `hits`/`solves` account the striped map (the oracle
//! tier), `table_hits`/`miss_solves` account the dense tier, and
//! `lock_acquisitions` counts every stripe or publication lock taken —
//! the determinism smoke asserts it stays flat across a steady-state run.

use crate::catalog::ClassId;
use crate::fleet::PolicyId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tps_core::{ConfigSelector, RunError, Server};
use tps_units::{Celsius, Watts};
use tps_workload::{Benchmark, QosClass};

/// The steady-state summary of running one `(benchmark, qos)` job on a
/// server: everything the fleet layer needs, with the temperature fields
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Package (IT) power of the selected configuration.
    pub package_power: Watts,
    /// Heat rejected into the rack water loop.
    pub heat: Watts,
    /// Warmest tolerable water supply (case-margin model, see
    /// `RunOutcome::cooling_load`).
    pub max_water_temp: Celsius,
    /// Execution-time slowdown of the selected configuration.
    pub normalized_time: f64,
    /// Active cores of the selected configuration.
    pub n_cores: u8,
    /// Peak die temperature at the design operating point.
    pub die_max: Celsius,
}

/// Cache key: the five coordinates the steady-state outcome depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// The server class the solve ran on (catalog index).
    pub class: ClassId,
    /// The application.
    pub bench: Benchmark,
    /// The QoS class.
    pub qos: QosClass,
    /// The mapping policy (typed, not a name string — two policies can
    /// never alias, and the compiler checks exhaustiveness).
    pub policy: PolicyId,
    /// Water inlet (ambient of the server loop) in milli-°C, quantized so
    /// the key is hashable/orderable.
    pub inlet_milli: i64,
}

impl CacheKey {
    fn new(
        class: ClassId,
        bench: Benchmark,
        qos: QosClass,
        policy: PolicyId,
        inlet: Celsius,
    ) -> Self {
        Self {
            class,
            bench,
            qos,
            policy,
            inlet_milli: quantize_inlet(inlet),
        }
    }

    /// The stripe this key hashes to — a SplitMix64-style mix over every
    /// coordinate, so sweeps that vary only the inlet (or only the class)
    /// still spread across stripes.
    fn stripe(&self) -> usize {
        let mut x = (self.class as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.bench as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(self.qos as u64)
            .wrapping_mul(0x94d0_49bb_1331_11eb)
            .wrapping_add(self.policy as u64)
            .wrapping_add(self.inlet_milli as u64);
        x ^= x >> 31;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 29;
        (x as usize) % STRIPES
    }
}

/// The milli-°C quantization shared by the map key and the table's
/// solve-slot axis.
fn quantize_inlet(inlet: Celsius) -> i64 {
    (inlet.value() * 1000.0).round() as i64
}

/// One server class's solve context: what [`OutcomeCache::warm`] and the
/// event kernel need to run jobs on that class.
#[derive(Debug, Clone, Copy)]
pub struct ClassSolve<'a> {
    /// The class's catalog index (part of the cache key).
    pub id: ClassId,
    /// The class's assembled server template.
    pub server: &'a Server,
    /// The class's (possibly overridden) mapping policy.
    pub policy: PolicyId,
}

impl ClassSolve<'_> {
    /// The class's water inlet, quantized exactly like the cache key.
    fn inlet_milli(&self) -> i64 {
        quantize_inlet(self.server.simulation().operating_point().water_inlet())
    }
}

/// Stripe count of the miss path. A power of two comfortably above the
/// warm-up thread counts seen in practice; the hash spreads keys evenly,
/// so two workers only collide on a stripe 1/16th of the time.
const STRIPES: usize = 16;

/// A frozen, dense, read-only snapshot of the cache: every key the cache
/// held at publication, laid out flat so a lookup is pure arithmetic.
///
/// The dense key has four axes. `(policy, inlet_milli)` pairs — the two
/// coordinates that are *per-run constants* for a given class — collapse
/// into a **solve slot** (an index into a small sorted list, resolved
/// once per class per run via [`class_slot`](Self::class_slot)); the
/// remaining axes are the class id and the fixed `Benchmark`/`QosClass`
/// cardinalities. The value index is then
///
/// ```text
/// ((slot · classes + class) · |Benchmark| + bench) · |QosClass| + qos
/// ```
///
/// — no hash, no tree, no lock, shared read-only via `Arc` across halls
/// and sweep workers. Absent keys hold `None` and fall through to the
/// striped miss path.
///
/// Epoch-publication invariant: a `SolveTable` is immutable after
/// construction. New keys are solved into the striped map and appear
/// only in the *next* published table (a higher [`epoch`](Self::epoch)),
/// swapped in at a global synchronization point (a run start — the same
/// cadence the kernel's chiller epoch advances on). Readers therefore
/// never race a mutation: they keep using the epoch they fetched until
/// the next sync point.
#[derive(Debug)]
pub struct SolveTable {
    epoch: u64,
    classes: usize,
    /// Sorted distinct `(policy, inlet_milli)` solve slots.
    slots: Vec<(PolicyId, i64)>,
    /// Dense values; `None` where the cache held no entry.
    values: Vec<Option<SteadyState>>,
    entries: usize,
}

impl SolveTable {
    /// The benchmark axis length of the dense layout.
    pub const BENCH_AXIS: usize = Benchmark::ALL.len();
    /// The QoS axis length of the dense layout.
    pub const QOS_AXIS: usize = QosClass::ALL.len();

    /// The publication epoch (1-based; each publication bumps it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Distinct outcomes frozen into this table.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The class-axis length.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The solve slot for a `(policy, inlet)` pair, or `None` when the
    /// table predates that pair. The slot list is a handful of entries
    /// (one per distinct policy × inlet in the run or sweep), so this
    /// resolves in a few comparisons — and callers resolve it **once per
    /// class per run**, after which every lookup is pure arithmetic.
    pub fn slot(&self, policy: PolicyId, inlet: Celsius) -> Option<usize> {
        self.slots
            .binary_search(&(policy, quantize_inlet(inlet)))
            .ok()
    }

    /// The solve slot for a class's own `(policy, inlet)`.
    pub fn class_slot(&self, class: &ClassSolve<'_>) -> Option<usize> {
        self.slots
            .binary_search(&(class.policy, class.inlet_milli()))
            .ok()
    }

    /// The frozen outcome at `(slot, class, bench, qos)` — the arithmetic
    /// hot-path lookup. `None` when the key was absent at publication.
    #[inline]
    pub fn get(
        &self,
        slot: usize,
        class: ClassId,
        bench: Benchmark,
        qos: QosClass,
    ) -> Option<SteadyState> {
        if slot >= self.slots.len() || class >= self.classes {
            return None;
        }
        let i = ((slot * self.classes + class) * Self::BENCH_AXIS + bench as usize)
            * Self::QOS_AXIS
            + qos as usize;
        self.values[i]
    }

    /// Convenience lookup resolving the class's slot first (tests and
    /// one-off callers; hot paths resolve the slot once instead).
    pub fn lookup(
        &self,
        class: &ClassSolve<'_>,
        bench: Benchmark,
        qos: QosClass,
    ) -> Option<SteadyState> {
        self.class_slot(class)
            .and_then(|s| self.get(s, class.id, bench, qos))
    }
}

/// A concurrent memo table of [`SteadyState`] outcomes: the striped
/// mutable miss path plus the latest published [`SolveTable`] epoch.
///
/// Deterministic by construction: values are pure functions of their key,
/// so neither thread count nor insertion order affects what a lookup
/// returns — and the dense table replays the exact map bits.
#[derive(Debug)]
pub struct OutcomeCache {
    /// The miss path: key-hash-striped so concurrent warm-up workers and
    /// sweep threads don't serialize on one lock.
    stripes: Vec<Mutex<BTreeMap<CacheKey, SteadyState>>>,
    /// The latest published epoch (`None` until the first publication).
    published: Mutex<Option<Arc<SolveTable>>>,
    epoch: AtomicU64,
    hits: AtomicUsize,
    solves: AtomicUsize,
    table_hits: AtomicUsize,
    miss_solves: AtomicUsize,
    lock_acquisitions: AtomicUsize,
}

impl Default for OutcomeCache {
    fn default() -> Self {
        Self {
            stripes: (0..STRIPES).map(|_| Mutex::new(BTreeMap::new())).collect(),
            published: Mutex::new(None),
            epoch: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            solves: AtomicUsize::new(0),
            table_hits: AtomicUsize::new(0),
            miss_solves: AtomicUsize::new(0),
            lock_acquisitions: AtomicUsize::new(0),
        }
    }
}

impl OutcomeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct outcomes computed so far.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                self.note_lock();
                s.lock().expect("cache poisoned").len()
            })
            .sum()
    }

    /// Whether nothing has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the striped map.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Full coupled solves performed.
    pub fn solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Lookups served lock-free from a published [`SolveTable`].
    pub fn table_hits(&self) -> usize {
        self.table_hits.load(Ordering::Relaxed)
    }

    /// Solves taken through the miss path because the published table
    /// lacked the key (a subset of [`solves`](Self::solves); prefetch
    /// solves are not misses).
    pub fn miss_solves(&self) -> usize {
        self.miss_solves.load(Ordering::Relaxed)
    }

    /// Stripe and publication locks acquired so far. Steady-state replays
    /// on a published table add **zero** — the determinism smoke pins
    /// that. The count is a deterministic function of the operation
    /// sequence (each miss costs exactly one lookup lock and one insert
    /// lock), not of thread interleaving.
    pub fn lock_acquisitions(&self) -> usize {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Publication epochs so far (0 until the first [`publish`](Self::publish)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Credits `n` dense-table lookups to this cache's counters — the
    /// kernel resolves its demand states straight off the `Arc` and
    /// reports in bulk, so the hot path touches no shared atomics.
    pub fn record_table_hits(&self, n: usize) {
        self.table_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Credits `n` table misses that went through the solve path.
    pub fn record_miss_solves(&self, n: usize) {
        self.miss_solves.fetch_add(n, Ordering::Relaxed);
    }

    fn note_lock(&self) {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// The latest published table, if any. One publication-lock fetch —
    /// callers clone the `Arc` once per run at a synchronization point,
    /// never per lookup.
    pub fn table(&self) -> Option<Arc<SolveTable>> {
        self.note_lock();
        self.published.lock().expect("cache poisoned").clone()
    }

    /// The cached outcome for `(class, bench, qos)` without solving —
    /// the striped-map oracle read (micro-bench and test hook).
    pub fn peek(
        &self,
        class: &ClassSolve<'_>,
        bench: Benchmark,
        qos: QosClass,
    ) -> Option<SteadyState> {
        let op = class.server.simulation().operating_point();
        let key = CacheKey::new(class.id, bench, qos, class.policy, op.water_inlet());
        self.note_lock();
        self.stripes[key.stripe()]
            .lock()
            .expect("cache poisoned")
            .get(&key)
            .copied()
    }

    /// Returns the cached outcome for `(bench, qos)` on the given server
    /// class, solving the coupled problem on a miss. This is the striped
    /// miss/oracle path; steady-state readers go through a published
    /// [`SolveTable`] instead.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the per-server pipeline.
    pub fn get_or_solve(
        &self,
        class: &ClassSolve<'_>,
        bench: Benchmark,
        qos: QosClass,
        selector: &dyn ConfigSelector,
        t_case_max: Celsius,
    ) -> Result<SteadyState, RunError> {
        let op = class.server.simulation().operating_point();
        let key = CacheKey::new(class.id, bench, qos, class.policy, op.water_inlet());
        let stripe = &self.stripes[key.stripe()];
        self.note_lock();
        if let Some(state) = stripe.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*state);
        }
        // Solve outside the lock: a rare duplicate solve beats serializing
        // every worker behind one coupled simulation.
        let outcome = class
            .server
            .run(bench, qos, selector, class.policy.as_policy())?;
        let load = outcome.cooling_load(op, t_case_max);
        let state = SteadyState {
            package_power: outcome.profile.package_power,
            heat: load.heat,
            max_water_temp: load.max_water_temp,
            normalized_time: outcome.profile.normalized_time,
            n_cores: outcome.profile.config.n_cores(),
            die_max: outcome.die.max,
        };
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.note_lock();
        stripe.lock().expect("cache poisoned").insert(key, state);
        Ok(state)
    }

    /// Freezes the striped map into a new immutable [`SolveTable`] epoch
    /// and publishes it. Call only at global synchronization points (run
    /// starts, sweep phase boundaries): readers that fetched an earlier
    /// epoch keep it — `Arc` keeps every epoch alive while referenced, so
    /// publication can never tear a table out from under a hall.
    pub fn publish(&self) -> Arc<SolveTable> {
        let mut entries: Vec<(CacheKey, SteadyState)> = Vec::new();
        for stripe in &self.stripes {
            self.note_lock();
            let map = stripe.lock().expect("cache poisoned");
            entries.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        let mut slots: Vec<(PolicyId, i64)> = entries
            .iter()
            .map(|(k, _)| (k.policy, k.inlet_milli))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        let classes = entries.iter().map(|(k, _)| k.class + 1).max().unwrap_or(0);
        let mut values =
            vec![None; slots.len() * classes * SolveTable::BENCH_AXIS * SolveTable::QOS_AXIS];
        for (k, v) in &entries {
            let slot = slots
                .binary_search(&(k.policy, k.inlet_milli))
                .expect("slot list was built from these keys");
            let i = ((slot * classes + k.class) * SolveTable::BENCH_AXIS + k.bench as usize)
                * SolveTable::QOS_AXIS
                + k.qos as usize;
            values[i] = Some(*v);
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let table = Arc::new(SolveTable {
            epoch,
            classes,
            slots,
            values,
            entries: entries.len(),
        });
        self.note_lock();
        *self.published.lock().expect("cache poisoned") = Some(Arc::clone(&table));
        table
    }

    /// Returns a published table covering every `(class, bench, qos)`
    /// triple of `classes × pairs`, warming only the **missing** triples
    /// (in parallel) and publishing a fresh epoch when needed. On a fully
    /// covered cache this is one publication-lock fetch — the steady-state
    /// replay path; on a cold cache it is the old eager warm-up, now as
    /// an on-demand prefetch.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server [`RunError`] a worker hit.
    pub fn ensure_published(
        &self,
        classes: &[ClassSolve<'_>],
        pairs: &[(Benchmark, QosClass)],
        selector: &(dyn ConfigSelector + Sync),
        t_case_max: Celsius,
        threads: usize,
    ) -> Result<Arc<SolveTable>, RunError> {
        let published = self.table();
        let missing: Vec<(usize, Benchmark, QosClass)> = match &published {
            Some(table) => {
                let slots: Vec<Option<usize>> =
                    classes.iter().map(|c| table.class_slot(c)).collect();
                classes
                    .iter()
                    .enumerate()
                    .flat_map(|(ci, _)| pairs.iter().map(move |&(b, q)| (ci, b, q)))
                    .filter(|&(ci, b, q)| match slots[ci] {
                        Some(slot) => table.get(slot, classes[ci].id, b, q).is_none(),
                        None => true,
                    })
                    .collect()
            }
            None => classes
                .iter()
                .enumerate()
                .flat_map(|(ci, _)| pairs.iter().map(move |&(b, q)| (ci, b, q)))
                .collect(),
        };
        if missing.is_empty() {
            if let Some(table) = published {
                return Ok(table);
            }
        } else {
            self.record_miss_solves(missing.len());
            self.warm_triples(&missing, classes, selector, t_case_max, threads)?;
        }
        Ok(self.publish())
    }

    /// Pre-computes the outcomes for every `(class, bench, qos)` triple —
    /// the cartesian product of `classes` and `pairs` — across up to
    /// `threads` OS threads (scoped, no new dependencies). The per-server
    /// solves are independent, so this is the simulator's parallel
    /// section; everything after it is cache replay, and since every
    /// value is a pure function of its key the results are byte-identical
    /// at any thread count.
    ///
    /// This is an **optional prefetch**: runs resolve their own missing
    /// keys on demand through [`ensure_published`](Self::ensure_published),
    /// so warming is only worth it to front-load the parallel section
    /// (the sweep engine warms each physics group's union of pairs once).
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] any worker hit (remaining workers
    /// finish their current solve and stop).
    pub fn warm(
        &self,
        classes: &[ClassSolve<'_>],
        pairs: &[(Benchmark, QosClass)],
        selector: &(dyn ConfigSelector + Sync),
        t_case_max: Celsius,
        threads: usize,
    ) -> Result<(), RunError> {
        let triples: Vec<(usize, Benchmark, QosClass)> = classes
            .iter()
            .enumerate()
            .flat_map(|(ci, _)| pairs.iter().map(move |&(b, q)| (ci, b, q)))
            .collect();
        self.warm_triples(&triples, classes, selector, t_case_max, threads)
    }

    /// The shared warm-up worker loop over an explicit triple list.
    /// Workers poll a lock-free `AtomicBool` failure flag each iteration
    /// and take the failure mutex only to record the first actual error.
    fn warm_triples(
        &self,
        triples: &[(usize, Benchmark, QosClass)],
        classes: &[ClassSolve<'_>],
        selector: &(dyn ConfigSelector + Sync),
        t_case_max: Celsius,
        threads: usize,
    ) -> Result<(), RunError> {
        let jobs = triples.len();
        let workers = threads.clamp(1, jobs.max(1));
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let failure: Mutex<Option<RunError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs || failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let (ci, bench, qos) = triples[i];
                    let class = &classes[ci];
                    if let Err(e) = self.get_or_solve(class, bench, qos, selector, t_case_max) {
                        failed.store(true, Ordering::Relaxed);
                        let mut slot = failure.lock().expect("poisoned");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                });
            }
        });
        match failure.into_inner().expect("poisoned") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::{MinPowerSelector, T_CASE_MAX};

    fn server() -> Server {
        Server::xeon(3.0)
    }

    fn class(server: &Server) -> ClassSolve<'_> {
        ClassSolve {
            id: 0,
            server,
            policy: PolicyId::Proposed,
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = OutcomeCache::new();
        let s = server();
        let c = class(&s);
        let a = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::TwoX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        let b = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::TwoX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.solves(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_class_ids_never_alias() {
        // Same physics, different catalog index: the key keeps them
        // apart (class ids map to distinct hardware in a real catalog).
        let cache = OutcomeCache::new();
        let s = server();
        let a = ClassSolve {
            id: 0,
            server: &s,
            policy: PolicyId::Proposed,
        };
        let b = ClassSolve {
            id: 1,
            server: &s,
            policy: PolicyId::Proposed,
        };
        for c in [&a, &b] {
            cache
                .get_or_solve(
                    c,
                    Benchmark::X264,
                    QosClass::TwoX,
                    &MinPowerSelector,
                    T_CASE_MAX,
                )
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.solves(), 2);
    }

    #[test]
    fn inlet_quantization_collides_within_half_a_millidegree() {
        // The key quantizes the inlet to milli-°C: two inlets within
        // 0.5 m°C are *deliberately* the same key (they are the same
        // physics to far beyond solver tolerance)…
        let close_a = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.0001),
        );
        let close_b = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.0004),
        );
        assert_eq!(close_a, close_b, "inlets within 0.5 m°C must collide");
        // …while inlets a full millidegree apart stay distinct.
        let apart = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.001),
        );
        assert_ne!(close_a, apart, "distinct milli-°C bins must not collide");
        // And the policy is a typed component: changing it alone changes
        // the key.
        let other_policy = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Coskun,
            Celsius::new(30.0001),
        );
        assert_ne!(close_a, other_policy);
    }

    #[test]
    fn warm_is_parallel_and_complete_across_classes() {
        let cache = OutcomeCache::new();
        let s = server();
        let classes = [
            ClassSolve {
                id: 0,
                server: &s,
                policy: PolicyId::Proposed,
            },
            ClassSolve {
                id: 1,
                server: &s,
                policy: PolicyId::Coskun,
            },
        ];
        let pairs: Vec<(Benchmark, QosClass)> = [
            (Benchmark::X264, QosClass::OneX),
            (Benchmark::Canneal, QosClass::ThreeX),
        ]
        .to_vec();
        cache
            .warm(&classes, &pairs, &MinPowerSelector, T_CASE_MAX, 4)
            .unwrap();
        assert_eq!(cache.len(), 4);
        // Replay after warm never solves again.
        let before = cache.solves();
        for c in &classes {
            for &(b, q) in &pairs {
                cache
                    .get_or_solve(c, b, q, &MinPowerSelector, T_CASE_MAX)
                    .unwrap();
            }
        }
        assert_eq!(cache.solves(), before);
    }

    #[test]
    fn hot_jobs_demand_colder_water_than_cool_jobs() {
        // The fleet-level differentiator: a 1× job leaves less case margin
        // than a 3× job, so it caps the rack water lower.
        let cache = OutcomeCache::new();
        let s = server();
        let c = class(&s);
        let hot = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::OneX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        let cool = cache
            .get_or_solve(
                &c,
                Benchmark::Canneal,
                QosClass::ThreeX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        assert!(hot.max_water_temp < cool.max_water_temp);
        assert!(hot.package_power > cool.package_power);
    }

    #[test]
    fn published_table_replays_the_map_bit_for_bit() {
        let cache = OutcomeCache::new();
        let s = server();
        let classes = [
            ClassSolve {
                id: 0,
                server: &s,
                policy: PolicyId::Proposed,
            },
            ClassSolve {
                id: 1,
                server: &s,
                policy: PolicyId::Coskun,
            },
        ];
        let pairs = [
            (Benchmark::X264, QosClass::OneX),
            (Benchmark::Canneal, QosClass::ThreeX),
        ];
        cache
            .warm(&classes, &pairs, &MinPowerSelector, T_CASE_MAX, 2)
            .unwrap();
        let table = cache.publish();
        assert_eq!(table.len(), 4);
        assert_eq!(table.epoch(), 1);
        for c in &classes {
            for &(b, q) in &pairs {
                let dense = table.lookup(c, b, q).expect("warmed key is in the table");
                let oracle = cache
                    .get_or_solve(c, b, q, &MinPowerSelector, T_CASE_MAX)
                    .unwrap();
                assert_eq!(dense, oracle);
            }
        }
        // Absent keys fall through, never alias.
        assert!(table
            .lookup(&classes[0], Benchmark::Dedup, QosClass::TwoX)
            .is_none());
    }

    #[test]
    fn ensure_published_is_lock_flat_once_covered() {
        let cache = OutcomeCache::new();
        let s = server();
        let classes = [class(&s)];
        let pairs = [(Benchmark::X264, QosClass::TwoX)];
        let first = cache
            .ensure_published(&classes, &pairs, &MinPowerSelector, T_CASE_MAX, 2)
            .unwrap();
        assert_eq!(first.epoch(), 1);
        assert_eq!(cache.miss_solves(), 1);
        // Covered: the second call fetches the same epoch with exactly
        // one publication-lock acquisition and no new solves.
        let locks = cache.lock_acquisitions();
        let second = cache
            .ensure_published(&classes, &pairs, &MinPowerSelector, T_CASE_MAX, 2)
            .unwrap();
        assert_eq!(second.epoch(), 1);
        assert_eq!(cache.lock_acquisitions(), locks + 1);
        assert_eq!(cache.miss_solves(), 1);
        // A new pair republishes a richer epoch.
        let wider = [
            (Benchmark::X264, QosClass::TwoX),
            (Benchmark::X264, QosClass::OneX),
        ];
        let third = cache
            .ensure_published(&classes, &wider, &MinPowerSelector, T_CASE_MAX, 2)
            .unwrap();
        assert_eq!(third.epoch(), 2);
        assert_eq!(third.len(), 2);
        // The earlier epoch is still alive and unchanged for its holders.
        assert_eq!(first.len(), 1);
    }
}
