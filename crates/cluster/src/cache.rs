//! Memoized per-server steady-state outcomes.
//!
//! A fleet run dispatches hundreds to thousands of jobs, but the
//! per-server physics depends only on `(server class, benchmark, qos,
//! mapping policy, water inlet)` — the coupled thermosyphon/thermal solve
//! is steady-state and every server of one class is identical.
//! [`OutcomeCache`] therefore computes each distinct key once (in
//! parallel across OS threads) and the event-driven simulator replays the
//! cached [`SteadyState`] summaries, which is what lets a thousand-job
//! scenario finish in seconds even on a heterogeneous fleet.

use crate::catalog::ClassId;
use crate::fleet::PolicyId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tps_core::{ConfigSelector, RunError, Server};
use tps_units::{Celsius, Watts};
use tps_workload::{Benchmark, QosClass};

/// The steady-state summary of running one `(benchmark, qos)` job on a
/// server: everything the fleet layer needs, with the temperature fields
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Package (IT) power of the selected configuration.
    pub package_power: Watts,
    /// Heat rejected into the rack water loop.
    pub heat: Watts,
    /// Warmest tolerable water supply (case-margin model, see
    /// `RunOutcome::cooling_load`).
    pub max_water_temp: Celsius,
    /// Execution-time slowdown of the selected configuration.
    pub normalized_time: f64,
    /// Active cores of the selected configuration.
    pub n_cores: u8,
    /// Peak die temperature at the design operating point.
    pub die_max: Celsius,
}

/// Cache key: the five coordinates the steady-state outcome depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// The server class the solve ran on (catalog index).
    pub class: ClassId,
    /// The application.
    pub bench: Benchmark,
    /// The QoS class.
    pub qos: QosClass,
    /// The mapping policy (typed, not a name string — two policies can
    /// never alias, and the compiler checks exhaustiveness).
    pub policy: PolicyId,
    /// Water inlet (ambient of the server loop) in milli-°C, quantized so
    /// the key is hashable/orderable.
    pub inlet_milli: i64,
}

impl CacheKey {
    fn new(
        class: ClassId,
        bench: Benchmark,
        qos: QosClass,
        policy: PolicyId,
        inlet: Celsius,
    ) -> Self {
        Self {
            class,
            bench,
            qos,
            policy,
            inlet_milli: (inlet.value() * 1000.0).round() as i64,
        }
    }
}

/// One server class's solve context: what [`OutcomeCache::warm`] and the
/// event kernel need to run jobs on that class.
#[derive(Debug, Clone, Copy)]
pub struct ClassSolve<'a> {
    /// The class's catalog index (part of the cache key).
    pub id: ClassId,
    /// The class's assembled server template.
    pub server: &'a Server,
    /// The class's (possibly overridden) mapping policy.
    pub policy: PolicyId,
}

/// A concurrent memo table of [`SteadyState`] outcomes.
///
/// Deterministic by construction: values are pure functions of their key,
/// so neither thread count nor insertion order affects what a lookup
/// returns.
#[derive(Debug, Default)]
pub struct OutcomeCache {
    map: Mutex<BTreeMap<CacheKey, SteadyState>>,
    hits: AtomicUsize,
    solves: AtomicUsize,
}

impl OutcomeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct outcomes computed so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether nothing has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Full coupled solves performed.
    pub fn solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Returns the cached outcome for `(bench, qos)` on the given server
    /// class, solving the coupled problem on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the per-server pipeline.
    pub fn get_or_solve(
        &self,
        class: &ClassSolve<'_>,
        bench: Benchmark,
        qos: QosClass,
        selector: &dyn ConfigSelector,
        t_case_max: Celsius,
    ) -> Result<SteadyState, RunError> {
        let op = class.server.simulation().operating_point();
        let key = CacheKey::new(class.id, bench, qos, class.policy, op.water_inlet());
        if let Some(state) = self.map.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*state);
        }
        // Solve outside the lock: a rare duplicate solve beats serializing
        // every worker behind one coupled simulation.
        let outcome = class
            .server
            .run(bench, qos, selector, class.policy.as_policy())?;
        let load = outcome.cooling_load(op, t_case_max);
        let state = SteadyState {
            package_power: outcome.profile.package_power,
            heat: load.heat,
            max_water_temp: load.max_water_temp,
            normalized_time: outcome.profile.normalized_time,
            n_cores: outcome.profile.config.n_cores(),
            die_max: outcome.die.max,
        };
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.map.lock().expect("cache poisoned").insert(key, state);
        Ok(state)
    }

    /// Pre-computes the outcomes for every `(class, bench, qos)` triple —
    /// the cartesian product of `classes` and `pairs` — across up to
    /// `threads` OS threads (scoped, no new dependencies). The per-server
    /// solves are independent, so this is the simulator's parallel
    /// section; everything after it is cache replay, and since every
    /// value is a pure function of its key the results are byte-identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] any worker hit (remaining workers
    /// finish their current solve and stop).
    pub fn warm(
        &self,
        classes: &[ClassSolve<'_>],
        pairs: &[(Benchmark, QosClass)],
        selector: &(dyn ConfigSelector + Sync),
        t_case_max: Celsius,
        threads: usize,
    ) -> Result<(), RunError> {
        let jobs = classes.len() * pairs.len();
        let workers = threads.clamp(1, jobs.max(1));
        let next = AtomicUsize::new(0);
        let failure: Mutex<Option<RunError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs || failure.lock().expect("poisoned").is_some() {
                        break;
                    }
                    let class = &classes[i / pairs.len()];
                    let (bench, qos) = pairs[i % pairs.len()];
                    if let Err(e) = self.get_or_solve(class, bench, qos, selector, t_case_max) {
                        *failure.lock().expect("poisoned") = Some(e);
                    }
                });
            }
        });
        match failure.into_inner().expect("poisoned") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::{MinPowerSelector, T_CASE_MAX};

    fn server() -> Server {
        Server::xeon(3.0)
    }

    fn class(server: &Server) -> ClassSolve<'_> {
        ClassSolve {
            id: 0,
            server,
            policy: PolicyId::Proposed,
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = OutcomeCache::new();
        let s = server();
        let c = class(&s);
        let a = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::TwoX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        let b = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::TwoX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.solves(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_class_ids_never_alias() {
        // Same physics, different catalog index: the key keeps them
        // apart (class ids map to distinct hardware in a real catalog).
        let cache = OutcomeCache::new();
        let s = server();
        let a = ClassSolve {
            id: 0,
            server: &s,
            policy: PolicyId::Proposed,
        };
        let b = ClassSolve {
            id: 1,
            server: &s,
            policy: PolicyId::Proposed,
        };
        for c in [&a, &b] {
            cache
                .get_or_solve(
                    c,
                    Benchmark::X264,
                    QosClass::TwoX,
                    &MinPowerSelector,
                    T_CASE_MAX,
                )
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.solves(), 2);
    }

    #[test]
    fn inlet_quantization_collides_within_half_a_millidegree() {
        // The key quantizes the inlet to milli-°C: two inlets within
        // 0.5 m°C are *deliberately* the same key (they are the same
        // physics to far beyond solver tolerance)…
        let close_a = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.0001),
        );
        let close_b = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.0004),
        );
        assert_eq!(close_a, close_b, "inlets within 0.5 m°C must collide");
        // …while inlets a full millidegree apart stay distinct.
        let apart = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Proposed,
            Celsius::new(30.001),
        );
        assert_ne!(close_a, apart, "distinct milli-°C bins must not collide");
        // And the policy is a typed component: changing it alone changes
        // the key.
        let other_policy = CacheKey::new(
            0,
            Benchmark::X264,
            QosClass::TwoX,
            PolicyId::Coskun,
            Celsius::new(30.0001),
        );
        assert_ne!(close_a, other_policy);
    }

    #[test]
    fn warm_is_parallel_and_complete_across_classes() {
        let cache = OutcomeCache::new();
        let s = server();
        let classes = [
            ClassSolve {
                id: 0,
                server: &s,
                policy: PolicyId::Proposed,
            },
            ClassSolve {
                id: 1,
                server: &s,
                policy: PolicyId::Coskun,
            },
        ];
        let pairs: Vec<(Benchmark, QosClass)> = [
            (Benchmark::X264, QosClass::OneX),
            (Benchmark::Canneal, QosClass::ThreeX),
        ]
        .to_vec();
        cache
            .warm(&classes, &pairs, &MinPowerSelector, T_CASE_MAX, 4)
            .unwrap();
        assert_eq!(cache.len(), 4);
        // Replay after warm never solves again.
        let before = cache.solves();
        for c in &classes {
            for &(b, q) in &pairs {
                cache
                    .get_or_solve(c, b, q, &MinPowerSelector, T_CASE_MAX)
                    .unwrap();
            }
        }
        assert_eq!(cache.solves(), before);
    }

    #[test]
    fn hot_jobs_demand_colder_water_than_cool_jobs() {
        // The fleet-level differentiator: a 1× job leaves less case margin
        // than a 3× job, so it caps the rack water lower.
        let cache = OutcomeCache::new();
        let s = server();
        let c = class(&s);
        let hot = cache
            .get_or_solve(
                &c,
                Benchmark::X264,
                QosClass::OneX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        let cool = cache
            .get_or_solve(
                &c,
                Benchmark::Canneal,
                QosClass::ThreeX,
                &MinPowerSelector,
                T_CASE_MAX,
            )
            .unwrap();
        assert!(hot.max_water_temp < cool.max_water_temp);
        assert!(hot.package_power > cool.package_power);
    }
}
