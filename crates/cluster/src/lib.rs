//! Fleet-scale simulation: a stream of jobs dispatched across racks of
//! two-phase-cooled servers.
//!
//! The paper optimizes one server; its Sec. V rack constraint — every
//! thermosyphon on a rack shares one chiller water temperature — is what
//! makes *placement* a fleet-wide energy decision. This crate drives
//! `N racks × M servers` of the existing per-server pipeline
//! (`MinPowerSelector` → mapping policy → coupled thermal/thermosyphon
//! solve) through a job-arrival trace and accounts IT plus cooling energy
//! through `tps-cooling`:
//!
//! * [`synthesize_jobs`] — reproducible job streams from the
//!   diurnal/bursty demand generators of `tps-workload`,
//! * [`OutcomeCache`] — per-server physics memoized by
//!   `(benchmark, qos, policy, water inlet)` and warmed across OS threads,
//! * [`FleetDispatcher`] — [`RoundRobin`], [`CoolestRackFirst`] and the
//!   paper-style [`ThermalAwareDispatch`] that ranks racks by marginal
//!   chiller power,
//! * [`Fleet::simulate`] — the event-driven engine: FIFO servers,
//!   arrival-time placement, piecewise-constant energy integration into a
//!   [`FleetOutcome`].
//!
//! ```
//! use tps_cluster::{
//!     synthesize_jobs, Fleet, FleetConfig, JobMix, OutcomeCache, ThermalAwareDispatch,
//! };
//! use tps_workload::ConstantDemand;
//!
//! // A small fleet on a coarse grid so the doctest stays quick.
//! let mut config = FleetConfig::new(2, 2);
//! config.grid_pitch_mm = 3.0;
//! let fleet = Fleet::new(config);
//! let jobs = synthesize_jobs(8, &ConstantDemand::new(0.5), JobMix::default(), 42);
//! let cache = OutcomeCache::new();
//! let outcome = fleet
//!     .simulate(&jobs, &mut ThermalAwareDispatch, &cache)
//!     .expect("paper workloads are feasible");
//! assert_eq!(outcome.placements.len(), 8);
//! assert!(outcome.total_energy() > outcome.it_energy);
//! println!("fleet PUE {:.3}", outcome.pue());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dispatch;
mod fleet;
mod job;
mod metrics;

pub use cache::{CacheKey, OutcomeCache, SteadyState};
pub use dispatch::{
    CoolestRackFirst, FleetDispatcher, FleetView, JobDemand, RackView, RoundRobin,
    ThermalAwareDispatch,
};
pub use fleet::{Fleet, FleetConfig, ServerPolicy};
pub use job::{synthesize_jobs, Job, JobMix};
pub use metrics::{FleetOutcome, Placement};
