//! Fleet-scale simulation: a stream of jobs dispatched across racks of
//! two-phase-cooled servers, driven by a discrete-event kernel with
//! runtime control and time-series telemetry.
//!
//! The paper optimizes one server; its Sec. V rack constraint — every
//! thermosyphon on a rack shares one chiller water temperature — is what
//! makes *placement* a fleet-wide energy decision. This crate drives
//! `N racks × M servers` of the existing per-server pipeline
//! (`MinPowerSelector` → mapping policy → coupled thermal/thermosyphon
//! solve) through a job-arrival trace and accounts IT plus cooling energy
//! through `tps-cooling`:
//!
//! * [`synthesize_jobs`] — reproducible job streams from the
//!   diurnal/bursty demand generators of `tps-workload`,
//! * [`ServerClass`]/[`FleetCatalog`] — the server catalog: named
//!   hardware classes (pitch/inlet/policy overrides) assigned per rack
//!   slot; the default uniform catalog is the homogeneous fleet, bit for
//!   bit,
//! * [`OutcomeCache`] — per-server physics memoized by
//!   `(class, benchmark, qos, policy, water inlet)` and warmed across OS
//!   threads,
//! * [`FleetDispatcher`] — [`RoundRobin`], [`CoolestRackFirst`] and the
//!   paper-style [`ThermalAwareDispatch`] that ranks `(rack, class)`
//!   slots by marginal chiller power,
//! * [`CalendarQueue`]/[`EventQueue`]/[`Event`] — the deterministic
//!   kernel: typed events ordered by a stable `(time, class, seq)` key,
//!   so results are byte-identical across runs and thread counts; the
//!   arena-backed calendar queue drives production runs, the heap stays
//!   as the ordering oracle,
//! * [`ControlPolicy`] — runtime control evaluated on
//!   [`ControlTick`](Event::ControlTick): [`StaticControl`] (open loop),
//!   [`SetpointScheduler`] (chiller set-point program),
//!   [`LoadSheddingControl`] (hysteretic admission control),
//!   [`AutoscaleControl`] (serving-mode capacity scaling against queue
//!   depth and the p99 latency SLO) and [`PlannerControl`] (joint
//!   placement + set-point co-optimization over a job horizon),
//! * [`plan`] — the planner subsystem: piecewise-linear chiller
//!   linearization, dense-simplex lower bounds, branch-and-bound and
//!   simulated annealing, all hand-rolled with no external deps,
//! * [`FleetTrace`]/[`FleetSample`] — sampled time-series telemetry with
//!   deterministic fixed-precision CSV emission,
//! * [`Fleet::simulate`]/[`Fleet::simulate_with`] — thin drivers over the
//!   kernel, producing a [`FleetOutcome`] (and a trace).
//!
//! ```
//! use tps_cluster::{
//!     synthesize_jobs, Fleet, FleetConfig, JobMix, OutcomeCache, ThermalAwareDispatch,
//! };
//! use tps_workload::ConstantDemand;
//!
//! // A small fleet on a coarse grid so the doctest stays quick.
//! let mut config = FleetConfig::new(2, 2);
//! config.grid_pitch_mm = 3.0;
//! let fleet = Fleet::new(config);
//! let jobs = synthesize_jobs(8, &ConstantDemand::new(0.5), JobMix::default(), 42);
//! let cache = OutcomeCache::new();
//! let outcome = fleet
//!     .simulate(&jobs, &mut ThermalAwareDispatch::default(), &cache)
//!     .expect("paper workloads are feasible");
//! assert_eq!(outcome.placements.len(), 8);
//! assert!(outcome.total_energy() > outcome.it_energy);
//! println!("fleet PUE {:.3}", outcome.pue());
//! ```
//!
//! Closing the loop — a set-point schedule plus telemetry:
//!
//! ```
//! use tps_cluster::{
//!     synthesize_jobs, Fleet, FleetConfig, JobMix, OutcomeCache, RoundRobin,
//!     SetpointScheduler, TelemetryConfig,
//! };
//! use tps_units::{Celsius, Seconds};
//! use tps_workload::ConstantDemand;
//!
//! let mut config = FleetConfig::new(1, 2);
//! config.grid_pitch_mm = 3.0;
//! let fleet = Fleet::new(config);
//! let jobs = synthesize_jobs(6, &ConstantDemand::new(0.5), JobMix::default(), 42);
//! let cache = OutcomeCache::new();
//! let mut control = SetpointScheduler::new(vec![(Seconds::new(20.0), Celsius::new(45.0))]);
//! let result = fleet
//!     .simulate_with(
//!         &jobs,
//!         &mut RoundRobin::default(),
//!         &mut control,
//!         Some(&TelemetryConfig::default()),
//!         &cache,
//!     )
//!     .expect("paper workloads are feasible");
//! let trace = result.trace.expect("telemetry was on");
//! assert!(trace.to_csv().starts_with("t_s,setpoint_c"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod catalog;
mod control;
mod dispatch;
mod engine;
mod fleet;
mod job;
mod metrics;
pub mod plan;
mod queue;

pub use cache::{CacheKey, ClassSolve, OutcomeCache, SolveTable, SteadyState};
pub use catalog::{ClassId, FleetCatalog, ServerClass};
pub use control::{
    AutoscaleControl, ControlAction, ControlPolicy, ControlStatus, LoadSheddingControl,
    PlacementHint, RunContext, SetpointScheduler, StaticControl,
};
pub use dispatch::{
    ClassDemand, CoolestRackFirst, FleetDispatcher, FleetHalls, FleetIndex, FleetView, JobDemand,
    PlannedDispatch, RackView, RoundRobin, ServerTable, ThermalAwareDispatch,
};
pub use engine::{Event, EventQueue, HallLoads, OccupiedRack, RackLoads, ARRIVAL_LOOKAHEAD};
pub use fleet::{thread_budget, Fleet, FleetConfig, PolicyId, ServerPolicy};
pub use job::{synthesize_jobs, synthesize_request_jobs, Job, JobMix};
pub use metrics::{
    FleetOutcome, FleetSample, FleetTrace, HallStats, KernelStats, LatencyHistogram, Placement,
    ServingOutcome, ServingSample, SimResult, TelemetryConfig,
};
pub use plan::{PlanSolver, PlannerControl};
pub use queue::{CalendarQueue, KernelQueue, QueueStats};
