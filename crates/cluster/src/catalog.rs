//! The server catalog: named hardware classes and their assignment to
//! rack slots.
//!
//! The paper models one server; real fleets mix hardware generations,
//! thermal-grid densities and de-rated bins, and the heterogeneous regime
//! is exactly where thermal-aware placement earns its keep (Sun et al.;
//! Rostami et al.). A [`ServerClass`] names one configuration — any field
//! left at `None` inherits the fleet-wide default from
//! [`FleetConfig`](crate::FleetConfig) — and a [`FleetCatalog`] maps every
//! `(rack, slot)` to a class. The default catalog is a single fully
//! inheriting class on every slot, which reproduces the homogeneous fleet
//! bit for bit.

use crate::fleet::PolicyId;

/// Index of a [`ServerClass`] within its [`FleetCatalog`].
pub type ClassId = usize;

/// One named server hardware configuration.
///
/// Fields at `None` inherit the fleet-wide default, so a catalog whose
/// classes override nothing behaves exactly like the homogeneous fleet.
///
/// ```
/// use tps_cluster::{PolicyId, ServerClass};
///
/// let dense = ServerClass::new("dense").pitch(2.0);
/// let sparse = ServerClass::new("sparse").pitch(3.0).inlet(35.0);
/// let derated = ServerClass::new("derated").policy(PolicyId::Packed);
/// assert_eq!(dense.name, "dense");
/// assert_eq!(sparse.water_inlet_c, Some(35.0));
/// assert_eq!(derated.policy, Some(PolicyId::Packed));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerClass {
    /// Class name (report tables, trace columns, spec files).
    pub name: String,
    /// Thermal-grid pitch of this class's per-server simulation, mm
    /// (`None` ⇒ the fleet's `grid_pitch_mm`).
    pub grid_pitch_mm: Option<f64>,
    /// Water inlet of this class's thermosyphon loop, °C (`None` ⇒ the
    /// fleet operating point's inlet).
    pub water_inlet_c: Option<f64>,
    /// Per-class mapping-policy override (`None` ⇒ the fleet's policy).
    pub policy: Option<PolicyId>,
}

impl ServerClass {
    /// A class that inherits every fleet default.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            grid_pitch_mm: None,
            water_inlet_c: None,
            policy: None,
        }
    }

    /// Overrides the thermal-grid pitch (mm).
    ///
    /// # Panics
    ///
    /// Panics if `mm` is not positive and finite.
    pub fn pitch(mut self, mm: f64) -> Self {
        assert!(mm > 0.0 && mm.is_finite(), "class pitch must be positive");
        self.grid_pitch_mm = Some(mm);
        self
    }

    /// Overrides the water inlet (°C).
    pub fn inlet(mut self, celsius: f64) -> Self {
        assert!(celsius.is_finite(), "class inlet must be finite");
        self.water_inlet_c = Some(celsius);
        self
    }

    /// Overrides the mapping policy.
    pub fn policy(mut self, policy: PolicyId) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// Which [`ServerClass`] sits in every rack slot.
///
/// Each rack carries a class *pattern* cycled across its slots, so
/// `["dense", "sparse"]` on a 4-server rack yields
/// dense/sparse/dense/sparse. Racks without a pattern (and the default
/// [`uniform`](Self::uniform) catalog) are class 0 throughout.
///
/// ```
/// use tps_cluster::{FleetCatalog, ServerClass};
///
/// let catalog = FleetCatalog::new(vec![
///     ServerClass::new("dense").pitch(2.5),
///     ServerClass::new("sparse").pitch(3.0),
/// ])
/// .assign(vec![vec![0], vec![0, 1]]);
/// assert_eq!(catalog.class_of(0, 3), 0); // rack 0: all dense
/// assert_eq!(catalog.class_of(1, 0), 0); // rack 1 alternates…
/// assert_eq!(catalog.class_of(1, 1), 1);
/// assert_eq!(catalog.class_of(7, 0), 0); // unassigned racks: class 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCatalog {
    classes: Vec<ServerClass>,
    /// Per-rack class pattern, cycled across the rack's slots. Racks
    /// beyond this vector (or with an empty pattern) are class 0.
    racks: Vec<Vec<ClassId>>,
}

impl Default for FleetCatalog {
    fn default() -> Self {
        Self::uniform()
    }
}

impl FleetCatalog {
    /// The homogeneous catalog: one fully inheriting class everywhere.
    pub fn uniform() -> Self {
        Self {
            classes: vec![ServerClass::new("default")],
            racks: Vec::new(),
        }
    }

    /// A catalog over the given classes, all racks class 0 until
    /// [`assign`](Self::assign)ed.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or two classes share a name.
    pub fn new(classes: Vec<ServerClass>) -> Self {
        assert!(!classes.is_empty(), "a catalog needs at least one class");
        for (i, c) in classes.iter().enumerate() {
            assert!(
                classes[..i].iter().all(|p| p.name != c.name),
                "duplicate server class `{}`",
                c.name
            );
        }
        Self {
            classes,
            racks: Vec::new(),
        }
    }

    /// Sets the per-rack class patterns (cycled across each rack's
    /// slots). A pattern may be empty (class 0); racks beyond the vector
    /// are class 0.
    ///
    /// # Panics
    ///
    /// Panics if any pattern references a class id out of range.
    pub fn assign(mut self, racks: Vec<Vec<ClassId>>) -> Self {
        for (r, pattern) in racks.iter().enumerate() {
            for &id in pattern {
                assert!(
                    id < self.classes.len(),
                    "rack {r} references class {id}, but the catalog has {} classes",
                    self.classes.len()
                );
            }
        }
        self.racks = racks;
        self
    }

    /// The declared classes, in catalog order (index = [`ClassId`]).
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalog declares a single class (the homogeneous
    /// special case all emitters collapse to).
    pub fn is_uniform(&self) -> bool {
        self.classes.len() == 1
    }

    /// `false` — a catalog always declares at least one class.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The class occupying `(rack, slot)`.
    pub fn class_of(&self, rack: usize, slot: usize) -> ClassId {
        match self.racks.get(rack) {
            Some(pattern) if !pattern.is_empty() => pattern[slot % pattern.len()],
            _ => 0,
        }
    }

    /// Looks a class up by name.
    pub fn find(&self, name: &str) -> Option<ClassId> {
        self.classes.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_is_class_zero_everywhere() {
        let c = FleetCatalog::uniform();
        assert!(c.is_uniform());
        assert_eq!(c.len(), 1);
        assert_eq!(c.class_of(3, 7), 0);
        assert_eq!(c.classes()[0].name, "default");
        assert_eq!(c.classes()[0].grid_pitch_mm, None);
    }

    #[test]
    fn patterns_cycle_across_slots_and_lookup_by_name_works() {
        let c = FleetCatalog::new(vec![
            ServerClass::new("a"),
            ServerClass::new("b").pitch(3.0),
        ])
        .assign(vec![vec![1], vec![0, 1, 1]]);
        assert_eq!(c.class_of(0, 0), 1);
        assert_eq!(c.class_of(0, 5), 1);
        assert_eq!(c.class_of(1, 0), 0);
        assert_eq!(c.class_of(1, 4), 1); // 4 % 3 = 1 → b
        assert_eq!(c.class_of(2, 0), 0); // unassigned rack
        assert_eq!(c.find("b"), Some(1));
        assert_eq!(c.find("zzz"), None);
        assert!(!c.is_uniform());
    }

    #[test]
    #[should_panic(expected = "duplicate server class")]
    fn duplicate_names_panic() {
        FleetCatalog::new(vec![ServerClass::new("x"), ServerClass::new("x")]);
    }

    #[test]
    #[should_panic(expected = "references class")]
    fn out_of_range_assignment_panics() {
        FleetCatalog::new(vec![ServerClass::new("x")]).assign(vec![vec![1]]);
    }
}
