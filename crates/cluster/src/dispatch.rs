//! Fleet dispatchers: which server gets the next arriving job.
//!
//! The rack constraint of Sec. V — all thermosyphons on a rack share one
//! chiller water temperature — makes placement a fleet-wide energy
//! decision: one thermally demanding job drags its whole rack's chiller
//! efficiency down. [`ThermalAwareDispatch`] extends the paper's
//! minimum-incremental-power idea (Algorithm 1) from configurations to
//! racks; [`RoundRobin`] and [`CoolestRackFirst`] are the baselines.

use crate::cache::SteadyState;
use crate::job::Job;
use tps_cooling::Chiller;
use tps_units::{Celsius, Seconds, Watts};

/// The demand an arriving job places on the fleet, after per-server
/// configuration selection.
#[derive(Debug, Clone, Copy)]
pub struct JobDemand<'a> {
    /// The arriving job.
    pub job: &'a Job,
    /// Its cached steady-state outcome on one server.
    pub state: SteadyState,
    /// Its runtime under the selected configuration.
    pub runtime: Seconds,
    /// The queueing slack its QoS class leaves.
    pub wait_budget: Seconds,
}

/// The committed load of one rack at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackView {
    /// Heat of all committed (running or queued) jobs on the rack.
    pub heat: Watts,
    /// The warmest supply satisfying every committed job, `None` if idle.
    pub supply: Option<Celsius>,
    /// Committed jobs on the rack.
    pub committed: usize,
}

/// A read-only snapshot of the fleet as one job arrives.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// The arrival instant.
    pub now: Seconds,
    /// Per-rack committed load.
    pub racks: &'a [RackView],
    /// Per-server earliest availability (global server index).
    pub free_at: &'a [Seconds],
    /// Servers per rack (global index = `rack · servers_per_rack + slot`).
    pub servers_per_rack: usize,
    /// The scenario's per-rack chiller model.
    pub chiller: &'a Chiller,
}

impl FleetView<'_> {
    /// The server of `rack` that frees up first (lowest index on ties).
    pub fn earliest_free_in(&self, rack: usize) -> (usize, Seconds) {
        let base = rack * self.servers_per_rack;
        (base..base + self.servers_per_rack)
            .map(|s| (s, self.free_at[s]))
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("racks have at least one server")
    }

    /// The wait a job dispatched to `server` right now would incur.
    pub fn wait_on(&self, server: usize) -> Seconds {
        Seconds::new((self.free_at[server].value() - self.now.value()).max(0.0))
    }
}

/// A placement strategy for arriving jobs.
pub trait FleetDispatcher {
    /// Human-readable dispatcher name (used in report tables).
    fn name(&self) -> &'static str;

    /// Picks the global server index for `demand` given the fleet state.
    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize;
}

/// Thermally blind striping: job `k` goes to server `k mod N`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl FleetDispatcher for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, _demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let server = self.next % view.free_at.len();
        self.next += 1;
        server
    }
}

/// Load balancing by rack heat: the job goes to the rack currently
/// carrying the least committed heat (its earliest-free server). This is
/// the fleet analogue of temperature-balancing policies like \[9\]: it
/// equalizes load but, like round-robin, ends up mixing thermally
/// demanding jobs into every rack.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoolestRackFirst;

impl FleetDispatcher for CoolestRackFirst {
    fn name(&self) -> &'static str {
        "coolest-rack-first"
    }

    fn place(&mut self, _demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let rack = view
            .racks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.heat.value().total_cmp(&b.1.heat.value()))
            .map(|(i, _)| i)
            .expect("fleet has at least one rack");
        view.earliest_free_in(rack).0
    }
}

/// The paper's policy, lifted to the fleet: rank racks by the *marginal
/// chiller electrical power* of accepting the job — accounting for both
/// the added heat and the supply-temperature drop the job forces on every
/// co-hosted watt — and take the cheapest rack whose queue still meets the
/// job's QoS wait budget.
///
/// The effect is thermal segregation: jobs that tolerate warm water gather
/// on racks that free-cool (or run at high COP), while the few jobs that
/// need cold supply are concentrated instead of contaminating every rack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermalAwareDispatch;

impl ThermalAwareDispatch {
    /// Chiller electricity the rack pays per unit time if `demand` joins it.
    fn marginal_power(chiller: &Chiller, rack: &RackView, demand: &JobDemand<'_>) -> f64 {
        let current = match rack.supply {
            Some(supply) => chiller.electrical_power(rack.heat, supply),
            None => Watts::ZERO,
        };
        let joint_supply = rack.supply.map_or(demand.state.max_water_temp, |s| {
            s.min(demand.state.max_water_temp)
        });
        let joint = chiller.electrical_power(rack.heat + demand.state.heat, joint_supply);
        (joint - current).value()
    }
}

impl FleetDispatcher for ThermalAwareDispatch {
    fn name(&self) -> &'static str {
        "thermal-aware"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let mut ranked: Vec<(f64, f64, usize)> = view
            .racks
            .iter()
            .enumerate()
            .map(|(i, rack)| {
                (
                    Self::marginal_power(view.chiller, rack, demand),
                    rack.heat.value(),
                    i,
                )
            })
            .collect();
        // Cheapest marginal cooling first; lighter rack, then index, on ties.
        ranked.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        // Take the cheapest rack that can still honour the QoS wait budget…
        for &(_, _, rack) in &ranked {
            let (server, _) = view.earliest_free_in(rack);
            if view.wait_on(server) <= demand.wait_budget {
                return server;
            }
        }
        // …or, if every queue blows the deadline anyway, the server that
        // frees up soonest fleet-wide (minimize the violation).
        (0..view.free_at.len())
            .min_by(|&a, &b| view.free_at[a].value().total_cmp(&view.free_at[b].value()))
            .expect("fleet has at least one server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_workload::{Benchmark, QosClass};

    fn demand(job: &Job, heat: f64, max_water: f64, budget: f64) -> JobDemand<'_> {
        JobDemand {
            job,
            state: SteadyState {
                package_power: Watts::new(heat),
                heat: Watts::new(heat),
                max_water_temp: Celsius::new(max_water),
                normalized_time: 1.0,
                n_cores: 8,
                die_max: Celsius::new(70.0),
            },
            runtime: Seconds::new(30.0),
            wait_budget: Seconds::new(budget),
        }
    }

    fn job() -> Job {
        Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let free = vec![Seconds::ZERO; 4];
        let chiller = Chiller::default();
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
        };
        let mut rr = RoundRobin::default();
        let d = demand(&j, 70.0, 64.0, 30.0);
        let picks: Vec<usize> = (0..5).map(|_| rr.place(&d, &view)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn coolest_rack_first_picks_the_lightest_rack() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::new(150.0),
                supply: Some(Celsius::new(70.0)),
                committed: 2,
            },
            RackView {
                heat: Watts::new(20.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let free = vec![
            Seconds::ZERO,
            Seconds::ZERO,
            Seconds::new(5.0),
            Seconds::ZERO,
        ];
        let chiller = Chiller::default();
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
        };
        let d = demand(&j, 70.0, 70.0, 30.0);
        assert_eq!(CoolestRackFirst.place(&d, &view), 3);
    }

    #[test]
    fn thermal_aware_segregates_a_cold_demanding_job() {
        let j = job();
        // Rack 0 already runs cold water; rack 1 free-cools at 75 °C.
        let racks = vec![
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(60.0)),
                committed: 1,
            },
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let free = vec![Seconds::ZERO; 4];
        // Heat-reuse loop at 60 °C: supplies below 65 °C pay compressor lift.
        let chiller = Chiller::new(Celsius::new(60.0));
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
        };
        let mut ta = ThermalAwareDispatch;
        // A job needing 60 °C water joins the already-cold rack 0…
        let cold = demand(&j, 70.0, 60.0, 30.0);
        assert_eq!(view.free_at.len() % 2, 0);
        let pick = ta.place(&cold, &view);
        assert!(pick < 2, "cold job went to rack {}", pick / 2);
        // …while a warm-tolerant job joins the free-cooling rack 1.
        let warm = demand(&j, 70.0, 76.0, 30.0);
        let pick = ta.place(&warm, &view);
        assert!(pick >= 2, "warm job went to rack {}", pick / 2);
    }

    #[test]
    fn thermal_aware_respects_the_wait_budget() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
        ];
        // Rack 0 is thermally ideal but saturated for 100 s; rack 1 is free.
        let free = vec![
            Seconds::new(100.0),
            Seconds::new(100.0),
            Seconds::ZERO,
            Seconds::ZERO,
        ];
        let chiller = Chiller::default();
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
        };
        let mut ta = ThermalAwareDispatch;
        let d = demand(&j, 70.0, 64.0, 10.0);
        let pick = ta.place(&d, &view);
        assert!(pick >= 2, "budget-violating rack chosen");
    }
}
