//! Fleet dispatchers: which server gets the next arriving job.
//!
//! The rack constraint of Sec. V — all thermosyphons on a rack share one
//! chiller water temperature — makes placement a fleet-wide energy
//! decision: one thermally demanding job drags its whole rack's chiller
//! efficiency down. On a heterogeneous fleet the decision is
//! two-dimensional: the same job runs hotter (or needs colder water) on
//! one server class than another, so [`ThermalAwareDispatch`] ranks
//! `(rack, class)` slots — extending the paper's
//! minimum-incremental-power idea (Algorithm 1) from configurations to
//! racks *and* hardware bins — while [`RoundRobin`] stays class-blind as
//! the baseline and [`CoolestRackFirst`] balances heat across racks
//! before picking the cheapest class within the winner.

use crate::cache::SteadyState;
use crate::catalog::ClassId;
use crate::job::Job;
use tps_cooling::Chiller;
use tps_units::{Celsius, Seconds, Watts};

/// One job's demand on one server class, after per-server configuration
/// selection: the class's cached steady state plus the runtime and
/// queueing slack that follow from it.
#[derive(Debug, Clone, Copy)]
pub struct ClassDemand {
    /// The job's cached steady-state outcome on this class.
    pub state: SteadyState,
    /// Its runtime under the class's selected configuration.
    pub runtime: Seconds,
    /// The queueing slack the class's slowdown leaves within the job's
    /// QoS budget.
    pub wait_budget: Seconds,
}

/// The demand an arriving job places on the fleet: one [`ClassDemand`]
/// per catalog class (a homogeneous fleet has exactly one).
#[derive(Debug, Clone, Copy)]
pub struct JobDemand<'a> {
    /// The arriving job.
    pub job: &'a Job,
    /// Per-class demand, indexed by [`ClassId`].
    pub classes: &'a [ClassDemand],
}

impl JobDemand<'_> {
    /// The demand on one class.
    pub fn class(&self, id: ClassId) -> &ClassDemand {
        &self.classes[id]
    }
}

/// The committed load of one rack at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackView {
    /// Heat of all committed (running or queued) jobs on the rack.
    pub heat: Watts,
    /// The warmest supply satisfying every committed job, `None` if idle.
    pub supply: Option<Celsius>,
    /// Committed jobs on the rack.
    pub committed: usize,
}

/// A read-only snapshot of the fleet as one job arrives.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// The arrival instant.
    pub now: Seconds,
    /// Per-rack committed load.
    pub racks: &'a [RackView],
    /// Per-server earliest availability (global server index).
    pub free_at: &'a [Seconds],
    /// Servers per rack (global index = `rack · servers_per_rack + slot`).
    pub servers_per_rack: usize,
    /// The scenario's per-rack chiller model.
    pub chiller: &'a Chiller,
    /// Per-server catalog class (global server index).
    pub class_of: &'a [ClassId],
    /// Distinct classes hosted by each rack, ascending by class id —
    /// immutable for a run, so precomputed once (the dispatch hot path
    /// must not allocate per placement).
    pub rack_classes: &'a [Vec<ClassId>],
}

impl FleetView<'_> {
    /// The server of `rack` that frees up first (lowest index on ties).
    pub fn earliest_free_in(&self, rack: usize) -> (usize, Seconds) {
        let base = rack * self.servers_per_rack;
        (base..base + self.servers_per_rack)
            .map(|s| (s, self.free_at[s]))
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("racks have at least one server")
    }

    /// The `class` server of `rack` that frees up first (lowest index on
    /// ties), `None` if the rack hosts no server of that class.
    pub fn earliest_free_of_class(&self, rack: usize, class: ClassId) -> Option<(usize, Seconds)> {
        let base = rack * self.servers_per_rack;
        (base..base + self.servers_per_rack)
            .filter(|&s| self.class_of[s] == class)
            .map(|s| (s, self.free_at[s]))
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
    }

    /// The distinct classes hosted by `rack`, ascending by class id.
    pub fn classes_in_rack(&self, rack: usize) -> &[ClassId] {
        &self.rack_classes[rack]
    }

    /// Precomputes the per-rack distinct-class lists for
    /// [`rack_classes`](Self::rack_classes) from a per-server class map.
    pub fn rack_classes_of(class_of: &[ClassId], servers_per_rack: usize) -> Vec<Vec<ClassId>> {
        class_of
            .chunks(servers_per_rack)
            .map(|rack| {
                let mut out: Vec<ClassId> = Vec::new();
                for &c in rack {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
                out.sort_unstable();
                out
            })
            .collect()
    }

    /// The wait a job dispatched to `server` right now would incur.
    pub fn wait_on(&self, server: usize) -> Seconds {
        Seconds::new((self.free_at[server].value() - self.now.value()).max(0.0))
    }
}

/// A placement strategy for arriving jobs.
pub trait FleetDispatcher {
    /// Human-readable dispatcher name (used in report tables).
    fn name(&self) -> &'static str;

    /// Picks the global server index for `demand` given the fleet state.
    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize;
}

/// Thermally blind striping: job `k` goes to server `k mod N`. Also
/// class-blind — the heterogeneity baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl FleetDispatcher for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, _demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let server = self.next % view.free_at.len();
        self.next += 1;
        server
    }
}

/// Chiller electricity the rack pays per unit time if the job joins it on
/// the given class.
fn marginal_power(chiller: &Chiller, rack: &RackView, state: &SteadyState) -> f64 {
    let current = match rack.supply {
        Some(supply) => chiller.electrical_power(rack.heat, supply),
        None => Watts::ZERO,
    };
    let joint_supply = rack
        .supply
        .map_or(state.max_water_temp, |s| s.min(state.max_water_temp));
    let joint = chiller.electrical_power(rack.heat + state.heat, joint_supply);
    (joint - current).value()
}

/// Load balancing by rack heat: the job goes to the rack currently
/// carrying the least committed heat. This is the fleet analogue of
/// temperature-balancing policies like \[9\]: it equalizes load but, like
/// round-robin, ends up mixing thermally demanding jobs into every rack.
/// Within the chosen rack it is class-*aware*: among the rack's classes
/// it takes the one with the cheapest marginal chiller power (earliest
/// free server of that class).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoolestRackFirst;

impl FleetDispatcher for CoolestRackFirst {
    fn name(&self) -> &'static str {
        "coolest-rack-first"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let rack = view
            .racks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.heat.value().total_cmp(&b.1.heat.value()))
            .map(|(i, _)| i)
            .expect("fleet has at least one rack");
        // One marginal-power evaluation per class (not per comparison);
        // ties break toward the lower class id.
        let class = view
            .classes_in_rack(rack)
            .iter()
            .map(|&c| {
                (
                    marginal_power(view.chiller, &view.racks[rack], &demand.class(c).state),
                    c,
                )
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .expect("racks have at least one class")
            .1;
        view.earliest_free_of_class(rack, class)
            .expect("classes_in_rack only returns hosted classes")
            .0
    }
}

/// The paper's policy, lifted to the fleet: rank `(rack, class)` slots by
/// the *marginal chiller electrical power* of accepting the job there —
/// accounting for the class-specific heat, the supply-temperature drop
/// the job forces on every co-hosted watt, and the class's QoS slack —
/// and take the cheapest slot whose queue still meets the job's wait
/// budget.
///
/// The effect is thermal segregation in two dimensions: jobs that
/// tolerate warm water gather on racks (and hardware bins) that free-cool
/// or run at high COP, while the few jobs that need cold supply are
/// concentrated instead of contaminating every rack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermalAwareDispatch;

impl FleetDispatcher for ThermalAwareDispatch {
    fn name(&self) -> &'static str {
        "thermal-aware"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let mut ranked: Vec<(f64, f64, usize, ClassId)> = Vec::new();
        for (i, rack) in view.racks.iter().enumerate() {
            for &class in view.classes_in_rack(i) {
                ranked.push((
                    marginal_power(view.chiller, rack, &demand.class(class).state),
                    rack.heat.value(),
                    i,
                    class,
                ));
            }
        }
        // Cheapest marginal cooling first; lighter rack, then rack index,
        // then class id, on ties.
        ranked.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        // Take the cheapest slot that can still honour the QoS wait
        // budget of its class…
        for &(_, _, rack, class) in &ranked {
            let (server, _) = view
                .earliest_free_of_class(rack, class)
                .expect("classes_in_rack only returns hosted classes");
            if view.wait_on(server) <= demand.class(class).wait_budget {
                return server;
            }
        }
        // …or, if every queue blows the deadline anyway, the server that
        // frees up soonest fleet-wide (minimize the violation).
        (0..view.free_at.len())
            .min_by(|&a, &b| view.free_at[a].value().total_cmp(&view.free_at[b].value()))
            .expect("fleet has at least one server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_workload::{Benchmark, QosClass};

    fn steady(heat: f64, max_water: f64) -> SteadyState {
        SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(max_water),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        }
    }

    fn demand(heat: f64, max_water: f64, budget: f64) -> Vec<ClassDemand> {
        vec![ClassDemand {
            state: steady(heat, max_water),
            runtime: Seconds::new(30.0),
            wait_budget: Seconds::new(budget),
        }]
    }

    fn job() -> Job {
        Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let free = vec![Seconds::ZERO; 4];
        let class_of = vec![0; 4];
        let chiller = Chiller::default();
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        let mut rr = RoundRobin::default();
        let classes = demand(70.0, 64.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
        };
        let picks: Vec<usize> = (0..5).map(|_| rr.place(&d, &view)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn coolest_rack_first_picks_the_lightest_rack() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::new(150.0),
                supply: Some(Celsius::new(70.0)),
                committed: 2,
            },
            RackView {
                heat: Watts::new(20.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let free = vec![
            Seconds::ZERO,
            Seconds::ZERO,
            Seconds::new(5.0),
            Seconds::ZERO,
        ];
        let class_of = vec![0; 4];
        let chiller = Chiller::default();
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        let classes = demand(70.0, 70.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
        };
        assert_eq!(CoolestRackFirst.place(&d, &view), 3);
    }

    #[test]
    fn thermal_aware_segregates_a_cold_demanding_job() {
        let j = job();
        // Rack 0 already runs cold water; rack 1 free-cools at 75 °C.
        let racks = vec![
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(60.0)),
                committed: 1,
            },
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let free = vec![Seconds::ZERO; 4];
        let class_of = vec![0; 4];
        // Heat-reuse loop at 60 °C: supplies below 65 °C pay compressor lift.
        let chiller = Chiller::new(Celsius::new(60.0));
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        let mut ta = ThermalAwareDispatch;
        // A job needing 60 °C water joins the already-cold rack 0…
        let cold = demand(70.0, 60.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &cold,
        };
        assert_eq!(view.free_at.len() % 2, 0);
        let pick = ta.place(&d, &view);
        assert!(pick < 2, "cold job went to rack {}", pick / 2);
        // …while a warm-tolerant job joins the free-cooling rack 1.
        let warm = demand(70.0, 76.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &warm,
        };
        let pick = ta.place(&d, &view);
        assert!(pick >= 2, "warm job went to rack {}", pick / 2);
    }

    #[test]
    fn thermal_aware_respects_the_wait_budget() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
        ];
        // Rack 0 is thermally ideal but saturated for 100 s; rack 1 is free.
        let free = vec![
            Seconds::new(100.0),
            Seconds::new(100.0),
            Seconds::ZERO,
            Seconds::ZERO,
        ];
        let class_of = vec![0; 4];
        let chiller = Chiller::default();
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        let mut ta = ThermalAwareDispatch;
        let classes = demand(70.0, 64.0, 10.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
        };
        let pick = ta.place(&d, &view);
        assert!(pick >= 2, "budget-violating rack chosen");
    }

    #[test]
    fn thermal_aware_picks_the_cheaper_class_within_one_rack() {
        let j = job();
        // One rack, two classes side by side. On class 0 the job needs
        // 60 °C water (compressor lift against the 60 °C reuse loop); on
        // class 1 it tolerates 76 °C (free cooling).
        let racks = vec![RackView {
            heat: Watts::ZERO,
            supply: None,
            committed: 0,
        }];
        let free = vec![Seconds::ZERO; 2];
        let class_of = vec![0, 1];
        let chiller = Chiller::new(Celsius::new(60.0));
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        let classes = vec![
            ClassDemand {
                state: steady(70.0, 60.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
            ClassDemand {
                state: steady(70.0, 76.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
        ];
        let d = JobDemand {
            job: &j,
            classes: &classes,
        };
        assert_eq!(ThermalAwareDispatch.place(&d, &view), 1);
        // CoolestRackFirst agrees once the (single) rack is fixed.
        assert_eq!(CoolestRackFirst.place(&d, &view), 1);
    }

    #[test]
    fn class_helpers_report_rack_composition() {
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let free = vec![
            Seconds::new(4.0),
            Seconds::new(2.0),
            Seconds::ZERO,
            Seconds::ZERO,
        ];
        let class_of = vec![1, 1, 0, 1];
        let chiller = Chiller::default();
        let rack_classes = FleetView::rack_classes_of(&class_of, 2);
        let view = FleetView {
            now: Seconds::ZERO,
            racks: &racks,
            free_at: &free,
            servers_per_rack: 2,
            chiller: &chiller,
            class_of: &class_of,
            rack_classes: &rack_classes,
        };
        assert_eq!(view.classes_in_rack(0), vec![1]);
        assert_eq!(view.classes_in_rack(1), vec![0, 1]);
        assert_eq!(
            view.earliest_free_of_class(0, 1),
            Some((1, Seconds::new(2.0)))
        );
        assert_eq!(view.earliest_free_of_class(0, 0), None);
        assert_eq!(view.earliest_free_of_class(1, 0), Some((2, Seconds::ZERO)));
    }
}
