//! Fleet dispatchers: which server gets the next arriving job.
//!
//! The rack constraint of Sec. V — all thermosyphons on a rack share one
//! chiller water temperature — makes placement a fleet-wide energy
//! decision: one thermally demanding job drags its whole rack's chiller
//! efficiency down. On a heterogeneous fleet the decision is
//! two-dimensional: the same job runs hotter (or needs colder water) on
//! one server class than another, so [`ThermalAwareDispatch`] ranks
//! `(rack, class)` slots — extending the paper's
//! minimum-incremental-power idea (Algorithm 1) from configurations to
//! racks *and* hardware bins — while [`RoundRobin`] stays class-blind as
//! the baseline and [`CoolestRackFirst`] balances heat across racks
//! before picking the cheapest class within the winner.
//!
//! # Scaling: the indexed fast path
//!
//! A [`FleetView`] is a plain snapshot; on small fleets the dispatchers
//! enumerate every `(rack, class)` slot. At 100 k servers that
//! enumeration is the simulator's whole runtime, so the kernel also hands
//! dispatchers a [`FleetIndex`]: the committed racks ordered by heat, the
//! idle racks grouped by class pattern, and a per-rack mutation stamp.
//! Two facts make the indexed walk *bit-identical* to the full
//! enumeration:
//!
//! * every idle rack of one class pattern has the exact same
//!   [`RackView`] (`0.0` heat — drained racks are pinned to exact zero —
//!   no supply, nothing committed), hence the exact same marginal-power
//!   score: one group representative stands in for all of them, and
//!   because an idle rack's servers are all free (`wait = 0`), either the
//!   group's lowest-index rack is accepted or every member would have
//!   been rejected;
//! * the ranking's sort key `(power, heat, rack, class)` is a total
//!   order, so scoring racks from the index instead of in rack order
//!   cannot change the sorted result.
//!
//! The per-rack stamps drive [`ThermalAwareDispatch`]'s score memo: a
//! rack is re-scored only when its committed load (or the chiller) moved
//! since the last arrival with the same demand signature.
//!
//! # Activation: the serving-mode capacity mask
//!
//! [`AutoscaleControl`](crate::AutoscaleControl) shrinks and grows the
//! placeable fleet at rack granularity: [`ServerTable`] tracks an
//! *active prefix* — racks `0..active_racks` accept placements, the rest
//! are powered down (no idle floor, no placements) but still drain any
//! running jobs. Every dispatcher filters its candidates to the active
//! prefix; at full activation the filter accepts everything, so batch
//! runs are bit-identical to the pre-activation code.

use crate::cache::SteadyState;
use crate::catalog::ClassId;
use crate::engine::{OccupiedRack, RackLoads};
use crate::job::Job;
use tps_cooling::Chiller;
use tps_units::{Celsius, Seconds, Watts};

/// One job's demand on one server class, after per-server configuration
/// selection: the class's cached steady state plus the runtime and
/// queueing slack that follow from it.
#[derive(Debug, Clone, Copy)]
pub struct ClassDemand {
    /// The job's cached steady-state outcome on this class.
    pub state: SteadyState,
    /// Its runtime under the class's selected configuration.
    pub runtime: Seconds,
    /// The queueing slack the class's slowdown leaves within the job's
    /// QoS budget.
    pub wait_budget: Seconds,
}

/// The demand an arriving job places on the fleet: one [`ClassDemand`]
/// per catalog class (a homogeneous fleet has exactly one).
#[derive(Debug, Clone, Copy)]
pub struct JobDemand<'a> {
    /// The arriving job.
    pub job: &'a Job,
    /// Per-class demand, indexed by [`ClassId`].
    pub classes: &'a [ClassDemand],
    /// Identity of the job's `(benchmark, QoS)` pair within this run —
    /// two arrivals with the same signature carry bit-identical
    /// [`ClassDemand::state`]s, so dispatchers may key score caches on
    /// it. Callers with a single demand kind can pass `0`.
    pub sig: u32,
}

impl JobDemand<'_> {
    /// The demand on one class.
    pub fn class(&self, id: ClassId) -> &ClassDemand {
        &self.classes[id]
    }
}

/// The committed load of one rack at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackView {
    /// Heat of all committed (running or queued) jobs on the rack.
    pub heat: Watts,
    /// The warmest supply satisfying every committed job, `None` if idle.
    pub supply: Option<Celsius>,
    /// Committed jobs on the rack.
    pub committed: usize,
}

/// Structure-of-arrays server state: availability, class and rack ids as
/// flat vectors indexed by global server id, plus the per-rack
/// distinct-class lists derived from them.
///
/// This is the kernel's mutable per-server state *and* the dispatchers'
/// read-only lookup table — one contiguous layout instead of a
/// per-server struct walk.
#[derive(Debug, Clone)]
pub struct ServerTable {
    /// Earliest availability per server.
    free_at: Vec<Seconds>,
    /// Catalog class per server.
    class_of: Vec<ClassId>,
    /// Rack per server (`server / servers_per_rack`, precomputed flat).
    rack_of: Vec<u32>,
    servers_per_rack: usize,
    /// Distinct classes hosted by each rack, ascending by class id —
    /// immutable for a run, so precomputed once (the dispatch hot path
    /// must not allocate per placement).
    rack_classes: Vec<Vec<ClassId>>,
    /// Servers eligible for placement: always a whole-rack prefix
    /// (`active / servers_per_rack` leading racks). Starts at the full
    /// fleet; only the autoscaler moves it.
    active: usize,
}

impl ServerTable {
    /// Builds the table from a per-server class map; every server starts
    /// free at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `servers_per_rack` is zero or does not divide the server
    /// count.
    pub fn new(class_of: Vec<ClassId>, servers_per_rack: usize) -> Self {
        assert!(servers_per_rack > 0, "a rack needs at least one server");
        assert_eq!(
            class_of.len() % servers_per_rack,
            0,
            "server count must be a whole number of racks"
        );
        let rack_of = (0..class_of.len())
            .map(|s| (s / servers_per_rack) as u32)
            .collect();
        let rack_classes = class_of
            .chunks(servers_per_rack)
            .map(|rack| {
                let mut out: Vec<ClassId> = Vec::new();
                for &c in rack {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
                out.sort_unstable();
                out
            })
            .collect();
        let active = class_of.len();
        Self {
            free_at: vec![Seconds::ZERO; class_of.len()],
            class_of,
            rack_of,
            servers_per_rack,
            rack_classes,
            active,
        }
    }

    /// Servers currently eligible for placement (a whole-rack prefix).
    pub fn active_servers(&self) -> usize {
        self.active
    }

    /// Racks currently eligible for placement (the leading
    /// `active_servers / servers_per_rack`).
    pub fn active_racks(&self) -> usize {
        self.active / self.servers_per_rack
    }

    /// Resizes the active prefix to hold at least `n` servers, rounded up
    /// to whole racks and clamped to `[1 rack, all racks]`; returns the
    /// resulting active-server count. Deactivated servers keep their
    /// `free_at` state and drain any running job, they just stop
    /// receiving placements.
    pub fn set_active_servers(&mut self, n: usize) -> usize {
        let racks = n.div_ceil(self.servers_per_rack).clamp(1, self.racks());
        self.active = racks * self.servers_per_rack;
        self.active
    }

    /// Total server count.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the fleet has no servers.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.rack_classes.len()
    }

    /// Servers per rack (global index = `rack · servers_per_rack + slot`).
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The catalog class of `server`.
    pub fn class_of(&self, server: usize) -> ClassId {
        self.class_of[server]
    }

    /// The rack hosting `server`.
    pub fn rack_of(&self, server: usize) -> usize {
        self.rack_of[server] as usize
    }

    /// Earliest availability of `server`.
    pub fn free_at(&self, server: usize) -> Seconds {
        self.free_at[server]
    }

    /// Marks `server` busy until `t`.
    pub fn set_free_at(&mut self, server: usize, t: Seconds) {
        self.free_at[server] = t;
    }

    /// The flat per-server availability column.
    pub fn free_slice(&self) -> &[Seconds] {
        &self.free_at
    }

    /// The flat per-server class column.
    pub fn class_slice(&self) -> &[ClassId] {
        &self.class_of
    }

    /// The distinct classes hosted by `rack`, ascending by class id.
    pub fn classes_in_rack(&self, rack: usize) -> &[ClassId] {
        &self.rack_classes[rack]
    }

    /// The server of `rack` that frees up first (lowest index on ties).
    pub fn earliest_free_in(&self, rack: usize) -> (usize, Seconds) {
        let base = rack * self.servers_per_rack;
        (base..base + self.servers_per_rack)
            .map(|s| (s, self.free_at[s]))
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("racks have at least one server")
    }

    /// The `class` server of `rack` that frees up first (lowest index on
    /// ties), `None` if the rack hosts no server of that class.
    pub fn earliest_free_of_class(&self, rack: usize, class: ClassId) -> Option<(usize, Seconds)> {
        let base = rack * self.servers_per_rack;
        (base..base + self.servers_per_rack)
            .filter(|&s| self.class_of[s] == class)
            .map(|s| (s, self.free_at[s]))
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
    }
}

/// The kernel's incremental dispatch index over the rack state: who is
/// committed (ordered by heat), who is idle (grouped by class pattern),
/// and a per-rack mutation stamp for score caching.
///
/// Maintained by [`RackLoads`](crate::RackLoads) as placements commit and
/// expire; see the module docs for why walking this index is
/// bit-identical to enumerating every rack.
#[derive(Debug)]
pub struct FleetIndex<'a> {
    /// Racks with committed load, an ascending sorted slice keyed
    /// `(heat bits, rack)` — the heat key is the rack's *view* heat
    /// (clamped non-negative), so `f64::to_bits` is monotone and the
    /// first element is exactly the coolest-then-lowest rack. Each entry
    /// carries the rack's fold inputs inline
    /// ([`OccupiedRack`](crate::OccupiedRack)), so the candidate scan is
    /// one contiguous read.
    pub occupied: &'a [OccupiedRack],
    /// Per-group lowest idle rack (`None` while the group has no idle
    /// racks). The sets themselves stay inside [`RackLoads`]: every
    /// dispatch decision only ever needs each group's representative —
    /// its minimum — and the cached minimum is read in O(1).
    pub idle_min: &'a [Option<u32>],
    /// Rack → rack-group id (racks in one group host the same class
    /// pattern).
    pub group_of: &'a [u32],
    /// Rack-group → distinct classes hosted, ascending by class id.
    pub group_classes: &'a [Vec<ClassId>],
    /// Rack → stamp of its last committed-load mutation; a rack whose
    /// stamp did not move has a bit-identical [`RackView`], so cached
    /// scores for it remain exact.
    pub stamps: &'a [u64],
}

/// The sharded-kernel fleet snapshot: one [`RackLoads`] per hall, each
/// owning a contiguous rack range. Dispatchers reduce one candidate per
/// hall on the same total tie-break key the global walk sorts by, so the
/// pick — and therefore the whole run — is bit-identical to `shards = 1`.
#[derive(Debug, Clone, Copy)]
pub struct FleetHalls<'a> {
    /// Per-hall committed load, ascending by rack range. Each hall's
    /// vectors are full-size and globally indexed; only its owned range
    /// is live.
    pub parts: &'a [RackLoads],
    /// Hall → `[lo, hi)` owned rack range.
    pub bounds: &'a [(usize, usize)],
    /// Rack → owning hall.
    pub hall_of: &'a [u32],
    /// Rack-group → distinct classes hosted, ascending by class id
    /// (groups span halls; an idle rack's view is bit-identical in every
    /// hall, so per-group scores are shared).
    pub group_classes: &'a [Vec<ClassId>],
}

impl FleetHalls<'_> {
    /// The live dispatch view of `rack`, read from its owning hall.
    pub fn rack_view(&self, rack: usize) -> &RackView {
        &self.parts[self.hall_of[rack] as usize].view_slice()[rack]
    }

    /// Total racks across all halls.
    pub fn racks(&self) -> usize {
        self.hall_of.len()
    }
}

/// A read-only snapshot of the fleet as one job arrives.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// The arrival instant.
    pub now: Seconds,
    /// Per-rack committed load (empty under a sharded kernel — the live
    /// views then hang off [`FleetView::halls`], see
    /// [`rack_view`](FleetView::rack_view)).
    pub racks: &'a [RackView],
    /// Per-server state: availability, class and rack columns.
    pub servers: &'a ServerTable,
    /// The scenario's per-rack chiller model.
    pub chiller: &'a Chiller,
    /// Bumped whenever the run's chiller changes (set-point events);
    /// scores cached under an older epoch are stale.
    pub chiller_epoch: u64,
    /// The kernel's incremental occupancy index, `None` when the caller
    /// assembled the view by hand — dispatchers then fall back to the
    /// full-enumeration path (same results, linear cost).
    pub index: Option<FleetIndex<'a>>,
    /// The per-hall state of a sharded kernel (`--shards ≥ 2`); `None`
    /// for unsharded runs and hand-assembled views. Mutually exclusive
    /// with [`index`](FleetView::index).
    pub halls: Option<FleetHalls<'a>>,
}

impl FleetView<'_> {
    /// The live dispatch view of `rack`, wherever it lives: the global
    /// slice for unsharded views, the owning hall under `--shards ≥ 2`.
    pub fn rack_view(&self, rack: usize) -> &RackView {
        match &self.halls {
            Some(h) => h.rack_view(rack),
            None => &self.racks[rack],
        }
    }

    /// The server of `rack` that frees up first (lowest index on ties).
    pub fn earliest_free_in(&self, rack: usize) -> (usize, Seconds) {
        self.servers.earliest_free_in(rack)
    }

    /// The `class` server of `rack` that frees up first (lowest index on
    /// ties), `None` if the rack hosts no server of that class.
    pub fn earliest_free_of_class(&self, rack: usize, class: ClassId) -> Option<(usize, Seconds)> {
        self.servers.earliest_free_of_class(rack, class)
    }

    /// The distinct classes hosted by `rack`, ascending by class id.
    pub fn classes_in_rack(&self, rack: usize) -> &[ClassId] {
        self.servers.classes_in_rack(rack)
    }

    /// The wait a job dispatched to `server` right now would incur.
    pub fn wait_on(&self, server: usize) -> Seconds {
        Seconds::new((self.servers.free_at(server).value() - self.now.value()).max(0.0))
    }
}

/// A placement strategy for arriving jobs.
pub trait FleetDispatcher {
    /// Human-readable dispatcher name (used in report tables).
    fn name(&self) -> &'static str;

    /// Picks the global server index for `demand` given the fleet state.
    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize;

    /// Called once by the kernel at the start of each run; stateful
    /// dispatchers drop per-run caches here. State that intentionally
    /// carries across runs (e.g. [`RoundRobin`]'s stride counter) stays
    /// untouched by this default no-op.
    fn begin_run(&mut self) {}

    /// Whether this dispatcher's candidate fold benefits from the hall
    /// partition. Dispatchers whose per-arrival work is already O(1) or
    /// a group-min scan (round-robin, coolest-rack-first, hint replay)
    /// return `false` and the kernel keeps the cheaper single-hall
    /// indexed path — the `--shards` knob still yields bit-identical
    /// results, it just stops paying a merge that buys nothing.
    fn wants_hall_fanout(&self) -> bool {
        true
    }
}

/// Thermally blind striping: job `k` goes to server `k mod N`. Also
/// class-blind — the heterogeneity baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl FleetDispatcher for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, _demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let server = self.next % view.servers.active_servers();
        self.next += 1;
        server
    }

    fn wants_hall_fanout(&self) -> bool {
        false
    }
}

/// Chiller electricity the rack pays per unit time if the job joins it on
/// the given class.
fn marginal_power(chiller: &Chiller, rack: &RackView, state: &SteadyState) -> f64 {
    let current = match rack.supply {
        Some(supply) => chiller.electrical_power(rack.heat, supply),
        None => Watts::ZERO,
    };
    let joint_supply = rack
        .supply
        .map_or(state.max_water_temp, |s| s.min(state.max_water_temp));
    let joint = chiller.electrical_power(rack.heat + state.heat, joint_supply);
    (joint - current).value()
}

/// The view every idle rack presents: drained racks are pinned to exact
/// zero heat, no supply, nothing committed — bit-identical across racks,
/// which is what lets one group representative stand in for all of them.
fn idle_rack_view() -> RackView {
    RackView {
        heat: Watts::new(0.0),
        supply: None,
        committed: 0,
    }
}

/// Load balancing by rack heat: the job goes to the rack currently
/// carrying the least committed heat. This is the fleet analogue of
/// temperature-balancing policies like \[9\]: it equalizes load but, like
/// round-robin, ends up mixing thermally demanding jobs into every rack.
/// Within the chosen rack it is class-*aware*: among the rack's classes
/// it takes the one with the cheapest marginal chiller power (earliest
/// free server of that class).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoolestRackFirst;

impl FleetDispatcher for CoolestRackFirst {
    fn name(&self) -> &'static str {
        "coolest-rack-first"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let active_racks = view.servers.active_racks();
        let rack = if let Some(hv) = &view.halls {
            // Sharded: each hall's occupied set and idle sets are ordered
            // by the same keys the global index uses, so folding their
            // per-hall minima reproduces the global minimum exactly.
            let idle_min = hv
                .parts
                .iter()
                .flat_map(|p| p.idle_group_mins().iter())
                .filter_map(|&m| m.filter(|&r| (r as usize) < active_racks))
                .min()
                .map(|r| (0u64, r));
            let occ_min = hv
                .parts
                .iter()
                .filter_map(|p| {
                    p.occupied_racks()
                        .iter()
                        .map(|e| e.key())
                        .find(|&(_, r)| (r as usize) < active_racks)
                })
                .min();
            [idle_min, occ_min]
                .into_iter()
                .flatten()
                .min()
                .expect("at least one rack is active")
                .1 as usize
        } else {
            match &view.index {
                // The coolest rack in O(log racks): the lowest-index idle rack
                // (exact 0.0 heat) versus the occupied set's first element,
                // compared on the same (heat bits, rack) key the linear scan
                // minimizes — `0.0f64.to_bits() == 0`, so an idle rack wins
                // any tie an occupied zero-heat rack doesn't win by index.
                // Candidates past the active prefix are skipped (each idle
                // set and the occupied set ascend by their key, so the first
                // in-prefix element is the set's in-prefix minimum).
                Some(ix) => {
                    let idle_min = ix
                        .idle_min
                        .iter()
                        .filter_map(|&m| m.filter(|&r| (r as usize) < active_racks))
                        .min()
                        .map(|r| (0u64, r));
                    let occ_min = ix
                        .occupied
                        .iter()
                        .map(|e| e.key())
                        .find(|&(_, r)| (r as usize) < active_racks);
                    [idle_min, occ_min]
                        .into_iter()
                        .flatten()
                        .min()
                        .expect("at least one rack is active")
                        .1 as usize
                }
                None => view
                    .racks
                    .iter()
                    .enumerate()
                    .take(active_racks)
                    .min_by(|a, b| a.1.heat.value().total_cmp(&b.1.heat.value()))
                    .map(|(i, _)| i)
                    .expect("at least one rack is active"),
            }
        };
        // One marginal-power evaluation per class (not per comparison);
        // ties break toward the lower class id.
        let class = view
            .classes_in_rack(rack)
            .iter()
            .map(|&c| {
                (
                    marginal_power(view.chiller, view.rack_view(rack), &demand.class(c).state),
                    c,
                )
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .expect("racks have at least one class")
            .1;
        view.earliest_free_of_class(rack, class)
            .expect("classes_in_rack only returns hosted classes")
            .0
    }

    /// The O(log racks) group-min/occupied-head lookup gains nothing from
    /// a per-hall fold — sharding only added the merge cost (the 1072 →
    /// 1249 ms regression the kernel bench caught).
    fn wants_hall_fanout(&self) -> bool {
        false
    }
}

/// One ranked `(rack, class)` candidate of the indexed thermal-aware
/// walk. Group entries represent *every* idle rack of their group: the
/// stored rack is the group's lowest index, and if it fails the wait
/// check (only possible on a negative budget, since idle servers wait 0)
/// every other member fails identically, so no per-entry marker is
/// needed — the walk treats both kinds uniformly.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    p: f64,
    h: f64,
    rack: u32,
    class: u32,
}

/// The fold's initial accumulator: loses to every real candidate (`p`
/// compares by `total_cmp`, and a real fold never produces a non-finite
/// power), and its `rack` doubles as the "no candidates at all" marker.
const SENTINEL: Candidate = Candidate {
    p: f64::INFINITY,
    h: f64::INFINITY,
    rack: u32::MAX,
    class: u32::MAX,
};

/// Folds one candidate into the running minimum under the exact total
/// key the ranked walk sorts by — `(power, heat, rack, class)`. The
/// power comparison almost always decides, so the tie keys are only
/// evaluated on an exact power tie.
#[inline]
fn consider(cand: Candidate, best: &mut Candidate) {
    use std::cmp::Ordering;
    let replace = match best.p.total_cmp(&cand.p) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => best
            .h
            .total_cmp(&cand.h)
            .then(best.rack.cmp(&cand.rack))
            .then(best.class.cmp(&cand.class))
            .is_gt(),
    };
    if replace {
        *best = cand;
    }
}

/// Cached marginal-power scores for one rack: valid while the rack's
/// mutation stamp and the chiller epoch both match, one score slab per
/// demand signature (scores are pure functions of `(rack view, chiller,
/// class states)`, so replaying them is bit-identical to recomputing).
#[derive(Debug, Default, Clone)]
struct RackScores {
    stamp: u64,
    epoch: u64,
    /// Signature → per-class scores in `classes_in_rack` order.
    by_sig: Vec<Option<Box<[f64]>>>,
}

/// The incremental score memo behind [`ThermalAwareDispatch`]: per-rack
/// slabs invalidated by the kernel's dirty stamps, plus per-group slabs
/// for the (chiller-epoch-only) idle scores.
#[derive(Debug, Default)]
struct ScoreMemo {
    racks: Vec<RackScores>,
    groups: Vec<RackScores>,
}

impl ScoreMemo {
    fn resize(&mut self, racks: usize, groups: usize) {
        if self.racks.len() != racks || self.groups.len() != groups {
            self.racks.clear();
            self.racks.resize(racks, RackScores::default());
            self.groups.clear();
            self.groups.resize(groups, RackScores::default());
        }
    }
}

/// The paper's policy, lifted to the fleet: rank `(rack, class)` slots by
/// the *marginal chiller electrical power* of accepting the job there —
/// accounting for the class-specific heat, the supply-temperature drop
/// the job forces on every co-hosted watt, and the class's QoS slack —
/// and take the cheapest slot whose queue still meets the job's wait
/// budget.
///
/// The effect is thermal segregation in two dimensions: jobs that
/// tolerate warm water gather on racks (and hardware bins) that free-cool
/// or run at high COP, while the few jobs that need cold supply are
/// concentrated instead of contaminating every rack.
///
/// With a [`FleetIndex`] the ranking is built from the occupied racks
/// plus one representative per idle rack group, re-scoring only racks
/// whose committed heat moved since the last arrival with the same
/// demand signature (the dirty-stamp memo) — bit-identical to the full
/// `(rack, class)` enumeration it replaces (see the module docs).
#[derive(Debug, Default)]
pub struct ThermalAwareDispatch {
    memo: ScoreMemo,
    ranked: Vec<Candidate>,
    /// Per-rack COP cache — see [`CopSlot`]. Neither cached term depends
    /// on the arrival's demand signature, so the slots replay across all
    /// rotating signatures where a full per-`(rack, sig)` score memo
    /// would miss; caching them removes two of the three float divisions
    /// from the fold's dependency chain.
    cop_racks: Vec<CopSlot>,
    /// Per-signature `(epoch, per-class [`SigClass`])` slabs — pure
    /// functions of the chiller and the signature's frozen demand states,
    /// so they replay until a set-point change. Flattening the fold's
    /// class inputs into one contiguous record keeps the hot loop off the
    /// scattered `ClassDemand`/`SteadyState` structs.
    sig_lab: Vec<Option<(u64, Box<[SigClass]>)>>,
}

/// One class's fold inputs under a fixed signature and chiller epoch:
/// the class's added heat, its water ceiling, `cop(max_water_temp)`, and
/// the (rack-independent) idle-rack marginal power.
#[derive(Debug, Clone, Copy)]
struct SigClass {
    heat: f64,
    mwt: f64,
    cop_mwt: f64,
    idle_p: f64,
}

/// One rack's cached COP terms: `cop(supply)` and the rack's current
/// chiller draw `heat / cop(supply)`. Both are pure functions of the
/// entry's `(heat, supply)` bits and the chiller, so validity is a
/// compare against the contiguous [`OccupiedRack`] fields already in
/// registers — no rack-indexed stamp load, and immune to stamp bumps
/// that left the view bits unchanged.
#[derive(Debug, Clone, Copy)]
struct CopSlot {
    heat_bits: u64,
    supply_bits: u64,
    epoch: u64,
    cop_s: f64,
    current: f64,
}

impl CopSlot {
    /// Never matches a real entry: view heats are clamped non-negative,
    /// so their bit patterns keep the sign bit clear.
    const EMPTY: CopSlot = CopSlot {
        heat_bits: u64::MAX,
        supply_bits: u64::MAX,
        epoch: u64::MAX,
        cop_s: f64::NAN,
        current: f64::NAN,
    };
}

/// Refreshes `slot` for entry `e` if stale and returns `(cop_s, current,
/// supply_f)` — the rack-dependent fold inputs. `current` replays
/// `electrical_power(heat, supply)` bit-for-bit (an idle supply
/// contributes exact `0.0`, and `x - 0.0 == x` keeps the fold's
/// subtraction exact); a missing supply folds as `+∞` so the per-class
/// comparison below selects `cop_mwt`, like the `None` arm of
/// `marginal_power`'s `map_or` does.
#[inline]
fn entry_cop(
    slot: &mut CopSlot,
    e: &OccupiedRack,
    epoch: u64,
    chiller: &Chiller,
) -> (f64, f64, f64) {
    if slot.heat_bits != e.heat_bits || slot.supply_bits != e.supply_bits || slot.epoch != epoch {
        let h = e.heat();
        let cop_s = e.supply().map_or(f64::NAN, |s| chiller.cop(s));
        let current = if e.supply_bits != OccupiedRack::NO_SUPPLY {
            h / cop_s
        } else {
            0.0
        };
        *slot = CopSlot {
            heat_bits: e.heat_bits,
            supply_bits: e.supply_bits,
            epoch,
            cop_s,
            current,
        };
    }
    let supply_f = if e.supply_bits != OccupiedRack::NO_SUPPLY {
        f64::from_bits(e.supply_bits)
    } else {
        f64::INFINITY
    };
    (slot.cop_s, slot.current, supply_f)
}

impl ThermalAwareDispatch {
    /// Refreshes the per-signature [`SigClass`] slab for `sig` under the
    /// current chiller epoch (a no-op when it is already fresh).
    fn refresh_sig_lab(
        &mut self,
        sig: usize,
        epoch: u64,
        demand: &JobDemand<'_>,
        view: &FleetView<'_>,
    ) {
        if self.sig_lab.len() <= sig {
            self.sig_lab.resize_with(sig + 1, || None);
        }
        let fresh = matches!(
            &self.sig_lab[sig],
            Some((e, v)) if *e == epoch && v.len() == demand.classes.len()
        );
        if !fresh {
            let idle_view = idle_rack_view();
            self.sig_lab[sig] = Some((
                epoch,
                demand
                    .classes
                    .iter()
                    .map(|cd| SigClass {
                        heat: cd.state.heat.value(),
                        mwt: cd.state.max_water_temp.value(),
                        cop_mwt: view.chiller.cop(cd.state.max_water_temp),
                        idle_p: marginal_power(view.chiller, &idle_view, &cd.state),
                    })
                    .collect(),
            ));
        }
    }

    /// Scores candidates from the incremental index and picks the
    /// cheapest slot meeting its wait budget.
    ///
    /// Fast path first: the same single-pass minimum fold the hall path
    /// runs — contiguous [`OccupiedRack`] entries plus one representative
    /// per idle group, reduced under the `(power, heat, rack, class)`
    /// total key. When the fold's winner meets its wait budget (the
    /// overwhelmingly common case) no ranking is materialized at all;
    /// otherwise [`walk_indexed`](Self::walk_indexed) rebuilds and walks
    /// the full sorted ranking, bit-identical to the fold's order.
    fn place_indexed(
        &mut self,
        demand: &JobDemand<'_>,
        view: &FleetView<'_>,
        ix: &FleetIndex<'_>,
    ) -> usize {
        let sig = demand.sig as usize;
        let epoch = view.chiller_epoch;
        let active_racks = view.servers.active_racks();
        self.refresh_sig_lab(sig, epoch, demand, view);
        if self.cop_racks.len() != view.racks.len() {
            self.cop_racks.clear();
            self.cop_racks.resize(view.racks.len(), CopSlot::EMPTY);
        }
        let lab: &[SigClass] = match &self.sig_lab[sig] {
            Some((_, v)) => v,
            None => unreachable!("slab was just filled"),
        };
        let mut best = SENTINEL;
        // Idle representatives first — their scores are rack-independent
        // slab reads. The fold's minimum under the strict `(p, h, rack,
        // class)` total order is the same whatever the visit order, since
        // every candidate's `(rack, class)` is unique.
        for (g, &m) in ix.idle_min.iter().enumerate() {
            let Some(first) = m.filter(|&r| (r as usize) < active_racks) else {
                continue;
            };
            for &c in &ix.group_classes[g] {
                consider(
                    Candidate {
                        p: lab[c].idle_p,
                        h: 0.0,
                        rack: first,
                        class: c as u32,
                    },
                    &mut best,
                );
            }
        }
        // Hoist the single-group single-class fleet (the uniform catalog)
        // out of the fold: the class constants live in registers and the
        // inner loop disappears. Bit-identical unrolling of
        // `marginal_power` over the entry's cached bits either way — see
        // `place_halls` for the argument.
        match ix.group_classes {
            [single] if single.len() == 1 => {
                let c = single[0];
                let sc = lab[c];
                for e in ix.occupied.iter() {
                    let r = e.rack as usize;
                    if r >= active_racks {
                        continue;
                    }
                    let h = e.heat();
                    let (cop_s, current, supply_f) =
                        entry_cop(&mut self.cop_racks[r], e, epoch, view.chiller);
                    let joint_cop = if supply_f <= sc.mwt {
                        cop_s
                    } else {
                        sc.cop_mwt
                    };
                    let p = (h + sc.heat) / joint_cop - current;
                    consider(
                        Candidate {
                            p,
                            h,
                            rack: e.rack,
                            class: c as u32,
                        },
                        &mut best,
                    );
                }
            }
            _ => {
                for e in ix.occupied.iter() {
                    let r = e.rack as usize;
                    if r >= active_racks {
                        continue;
                    }
                    let h = e.heat();
                    let (cop_s, current, supply_f) =
                        entry_cop(&mut self.cop_racks[r], e, epoch, view.chiller);
                    for &c in &ix.group_classes[e.group as usize] {
                        let sc = &lab[c];
                        let joint_cop = if supply_f <= sc.mwt {
                            cop_s
                        } else {
                            sc.cop_mwt
                        };
                        let p = (h + sc.heat) / joint_cop - current;
                        consider(
                            Candidate {
                                p,
                                h,
                                rack: e.rack,
                                class: c as u32,
                            },
                            &mut best,
                        );
                    }
                }
            }
        }
        if best.rack != u32::MAX {
            let (server, _) = view
                .earliest_free_of_class(best.rack as usize, best.class as usize)
                .expect("the index only lists hosted classes");
            if view.wait_on(server) <= demand.class(best.class as usize).wait_budget {
                return server;
            }
        }
        self.walk_indexed(demand, view, ix)
    }

    /// The indexed slow path, taken only when the fold's winner blows its
    /// wait budget: materialize the full candidate list (same entries as
    /// the fold), sort it under the same key, and walk it in order.
    fn walk_indexed(
        &mut self,
        demand: &JobDemand<'_>,
        view: &FleetView<'_>,
        ix: &FleetIndex<'_>,
    ) -> usize {
        let sig = demand.sig as usize;
        let epoch = view.chiller_epoch;
        let active_racks = view.servers.active_racks();
        self.memo.resize(view.racks.len(), ix.group_classes.len());
        self.ranked.clear();
        for e in ix.occupied.iter() {
            let r = e.rack as usize;
            if r >= active_racks {
                continue;
            }
            let entry = &mut self.memo.racks[r];
            if entry.stamp != ix.stamps[r] || entry.epoch != epoch {
                entry.by_sig.clear();
                entry.stamp = ix.stamps[r];
                entry.epoch = epoch;
            }
            if entry.by_sig.len() <= sig {
                entry.by_sig.resize(sig + 1, None);
            }
            let scores = entry.by_sig[sig].get_or_insert_with(|| {
                view.servers
                    .classes_in_rack(r)
                    .iter()
                    .map(|&c| marginal_power(view.chiller, &view.racks[r], &demand.class(c).state))
                    .collect()
            });
            let h = view.racks[r].heat.value();
            for (k, &c) in view.servers.classes_in_rack(r).iter().enumerate() {
                self.ranked.push(Candidate {
                    p: scores[k],
                    h,
                    rack: e.rack,
                    class: c as u32,
                });
            }
        }
        let idle_view = idle_rack_view();
        for (g, &m) in ix.idle_min.iter().enumerate() {
            // The group representative is its lowest *active* rack: the
            // representative argument (bit-identical views, identical
            // wait checks) holds within the active prefix just as well
            // (the sets ascend, so a cached minimum past the prefix means
            // no member is inside it).
            let Some(first) = m.filter(|&r| (r as usize) < active_racks) else {
                continue;
            };
            let entry = &mut self.memo.groups[g];
            if entry.epoch != epoch {
                entry.by_sig.clear();
                entry.epoch = epoch;
            }
            if entry.by_sig.len() <= sig {
                entry.by_sig.resize(sig + 1, None);
            }
            let scores = entry.by_sig[sig].get_or_insert_with(|| {
                ix.group_classes[g]
                    .iter()
                    .map(|&c| marginal_power(view.chiller, &idle_view, &demand.class(c).state))
                    .collect()
            });
            for (k, &c) in ix.group_classes[g].iter().enumerate() {
                self.ranked.push(Candidate {
                    p: scores[k],
                    h: 0.0,
                    rack: first,
                    class: c as u32,
                });
            }
        }
        // The same total order the full enumeration sorts by — within an
        // equal (power, heat) run, a group entry stands at its lowest
        // rack's position, and skipping the rest of a failed group is
        // sound because its members fail the wait check identically.
        self.ranked.sort_unstable_by(|a, b| {
            a.p.total_cmp(&b.p)
                .then(a.h.total_cmp(&b.h))
                .then(a.rack.cmp(&b.rack))
                .then(a.class.cmp(&b.class))
        });
        for c in &self.ranked {
            let (server, _) = view
                .earliest_free_of_class(c.rack as usize, c.class as usize)
                .expect("the index only lists hosted classes");
            if view.wait_on(server) <= demand.class(c.class as usize).wait_budget {
                return server;
            }
        }
        fallback_min_free(view)
    }

    /// Sharded dispatch: each hall contributes its best candidates and a
    /// left-to-right fold in hall order reduces them under the exact
    /// total key the global walk sorts by — `(power, heat, rack, class)`.
    ///
    /// Why the reduction preserves the sequential pick: the candidate set
    /// here is *identical* to [`place_indexed`](Self::place_indexed)'s —
    /// the halls' occupied sets partition the global occupied set, and
    /// each idle group's representative is its lowest active rack across
    /// halls (hall ranges ascend by rack, so the first hall with a member
    /// holds the global minimum). The key is a total order, so the fold's
    /// minimum is exactly the sorted walk's first element. When that
    /// winner meets its wait budget — the overwhelmingly common case —
    /// dispatch finishes with no gather and no sort, which is what makes
    /// a sharded run *faster* than the memoized global walk. Otherwise
    /// the full ranking is rebuilt and walked, bit-identical to the
    /// unsharded path.
    ///
    /// The fold itself reads only the contiguous [`OccupiedRack`] entries
    /// — heat, group and supply travel with the rack id — so scoring an
    /// occupied rack costs one cache line instead of four scattered
    /// rack-indexed loads, and the COP arithmetic is recomputed inline
    /// (it is ~5 flops against a memory-latency-bound loop).
    fn place_halls(
        &mut self,
        demand: &JobDemand<'_>,
        view: &FleetView<'_>,
        halls: &FleetHalls<'_>,
    ) -> usize {
        let sig = demand.sig as usize;
        let epoch = view.chiller_epoch;
        let active_racks = view.servers.active_racks();
        self.refresh_sig_lab(sig, epoch, demand, view);
        if self.cop_racks.len() != halls.racks() {
            self.cop_racks.clear();
            self.cop_racks.resize(halls.racks(), CopSlot::EMPTY);
        }
        let lab: &[SigClass] = match &self.sig_lab[sig] {
            Some((_, v)) => v,
            None => unreachable!("slab was just filled"),
        };
        let mut best = SENTINEL;
        // Idle representatives first — their scores are rack-independent
        // slab reads. The fold's minimum under the strict `(p, h, rack,
        // class)` total order is the same whatever the visit order, since
        // every candidate's `(rack, class)` is unique.
        for (g, classes) in halls.group_classes.iter().enumerate() {
            let Some(first) = halls
                .parts
                .iter()
                .find_map(|p| p.idle_group_mins()[g].filter(|&r| (r as usize) < active_racks))
            else {
                continue;
            };
            for &c in classes {
                consider(
                    Candidate {
                        p: lab[c].idle_p,
                        h: 0.0,
                        rack: first,
                        class: c as u32,
                    },
                    &mut best,
                );
            }
        }
        // `heat()`/`supply()` replay the rack view's fields bit-for-bit
        // (the entry caches their raw bits), and `group_classes[e.group]`
        // is `classes_in_rack(r)` by construction (groups are keyed on
        // exact slice equality). Bit-identical unrolling of
        // `marginal_power`: both branches of
        // `min(supply, max_water_temp)` replay the same pure COP on the
        // same input (a tie gives equal COP bits either way). The uniform
        // catalog's single `(group, class)` is hoisted so the class
        // constants live in registers across the whole fold.
        match halls.group_classes {
            [single] if single.len() == 1 => {
                let c = single[0];
                let sc = lab[c];
                for part in halls.parts.iter() {
                    for e in part.occupied_racks() {
                        let r = e.rack as usize;
                        if r >= active_racks {
                            continue;
                        }
                        let h = e.heat();
                        let (cop_s, current, supply_f) =
                            entry_cop(&mut self.cop_racks[r], e, epoch, view.chiller);
                        let joint_cop = if supply_f <= sc.mwt {
                            cop_s
                        } else {
                            sc.cop_mwt
                        };
                        let p = (h + sc.heat) / joint_cop - current;
                        consider(
                            Candidate {
                                p,
                                h,
                                rack: e.rack,
                                class: c as u32,
                            },
                            &mut best,
                        );
                    }
                }
            }
            _ => {
                for part in halls.parts.iter() {
                    for e in part.occupied_racks() {
                        let r = e.rack as usize;
                        if r >= active_racks {
                            continue;
                        }
                        let h = e.heat();
                        let (cop_s, current, supply_f) =
                            entry_cop(&mut self.cop_racks[r], e, epoch, view.chiller);
                        for &c in &halls.group_classes[e.group as usize] {
                            let sc = &lab[c];
                            let joint_cop = if supply_f <= sc.mwt {
                                cop_s
                            } else {
                                sc.cop_mwt
                            };
                            let p = (h + sc.heat) / joint_cop - current;
                            consider(
                                Candidate {
                                    p,
                                    h,
                                    rack: e.rack,
                                    class: c as u32,
                                },
                                &mut best,
                            );
                        }
                    }
                }
            }
        }
        if best.rack != u32::MAX {
            let (server, _) = view
                .earliest_free_of_class(best.rack as usize, best.class as usize)
                .expect("halls only list hosted classes");
            if view.wait_on(server) <= demand.class(best.class as usize).wait_budget {
                return server;
            }
        }
        self.walk_halls(demand, view, halls)
    }

    /// The sharded slow path, taken only when the reduced winner blows
    /// its wait budget: gather the full candidate list (same entries as
    /// the fold above), sort it under the same key, and walk it exactly
    /// like [`place_indexed`](Self::place_indexed) does.
    fn walk_halls(
        &mut self,
        demand: &JobDemand<'_>,
        view: &FleetView<'_>,
        halls: &FleetHalls<'_>,
    ) -> usize {
        let sig = demand.sig as usize;
        let epoch = view.chiller_epoch;
        let active_racks = view.servers.active_racks();
        self.memo.resize(halls.racks(), halls.group_classes.len());
        self.ranked.clear();
        for part in halls.parts {
            for e in part.occupied_racks() {
                let r = e.rack as usize;
                if r >= active_racks {
                    continue;
                }
                let rv = &part.view_slice()[r];
                let h = rv.heat.value();
                for &c in &halls.group_classes[e.group as usize] {
                    self.ranked.push(Candidate {
                        p: marginal_power(view.chiller, rv, &demand.class(c).state),
                        h,
                        rack: e.rack,
                        class: c as u32,
                    });
                }
            }
        }
        let idle_view = idle_rack_view();
        for (g, classes) in halls.group_classes.iter().enumerate() {
            let Some(first) = halls
                .parts
                .iter()
                .find_map(|p| p.idle_group_mins()[g].filter(|&r| (r as usize) < active_racks))
            else {
                continue;
            };
            let entry = &mut self.memo.groups[g];
            if entry.epoch != epoch {
                entry.by_sig.clear();
                entry.epoch = epoch;
            }
            if entry.by_sig.len() <= sig {
                entry.by_sig.resize(sig + 1, None);
            }
            let scores = entry.by_sig[sig].get_or_insert_with(|| {
                classes
                    .iter()
                    .map(|&c| marginal_power(view.chiller, &idle_view, &demand.class(c).state))
                    .collect()
            });
            for (k, &c) in classes.iter().enumerate() {
                self.ranked.push(Candidate {
                    p: scores[k],
                    h: 0.0,
                    rack: first,
                    class: c as u32,
                });
            }
        }
        self.ranked.sort_unstable_by(|a, b| {
            a.p.total_cmp(&b.p)
                .then(a.h.total_cmp(&b.h))
                .then(a.rack.cmp(&b.rack))
                .then(a.class.cmp(&b.class))
        });
        for c in &self.ranked {
            let (server, _) = view
                .earliest_free_of_class(c.rack as usize, c.class as usize)
                .expect("halls only list hosted classes");
            if view.wait_on(server) <= demand.class(c.class as usize).wait_budget {
                return server;
            }
        }
        fallback_min_free(view)
    }

    /// The full `(rack, class)` enumeration — the reference path for
    /// hand-assembled views (no index).
    fn place_scan(demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let mut ranked: Vec<(f64, f64, usize, ClassId)> = Vec::new();
        for i in 0..view.servers.active_racks() {
            let rack = view.rack_view(i);
            for &class in view.classes_in_rack(i) {
                ranked.push((
                    marginal_power(view.chiller, rack, &demand.class(class).state),
                    rack.heat.value(),
                    i,
                    class,
                ));
            }
        }
        // Cheapest marginal cooling first; lighter rack, then rack index,
        // then class id, on ties.
        ranked.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        // Take the cheapest slot that can still honour the QoS wait
        // budget of its class…
        for &(_, _, rack, class) in &ranked {
            let (server, _) = view
                .earliest_free_of_class(rack, class)
                .expect("classes_in_rack only returns hosted classes");
            if view.wait_on(server) <= demand.class(class).wait_budget {
                return server;
            }
        }
        fallback_min_free(view)
    }
}

/// Every queue blows the deadline anyway: the active server that frees
/// up soonest (minimize the violation).
fn fallback_min_free(view: &FleetView<'_>) -> usize {
    let free = view.servers.free_slice();
    (0..view.servers.active_servers())
        .min_by(|&a, &b| free[a].value().total_cmp(&free[b].value()))
        .expect("at least one server is active")
}

impl FleetDispatcher for ThermalAwareDispatch {
    fn name(&self) -> &'static str {
        "thermal-aware"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        if let Some(halls) = &view.halls {
            return self.place_halls(demand, view, halls);
        }
        match &view.index {
            Some(ix) => self.place_indexed(demand, view, ix),
            None => Self::place_scan(demand, view),
        }
    }

    fn begin_run(&mut self) {
        self.memo = ScoreMemo::default();
        self.cop_racks.clear();
        self.sig_lab.clear();
    }
}

/// Per-arrival total-energy dispatch: the greedy single-job projection of
/// the planner's objective. Where [`ThermalAwareDispatch`] ranks slots by
/// marginal chiller *power*, this ranks them by the job's total *energy*
/// — `runtime × (package power + marginal chiller power)` — so a faster
/// class can win even at a worse instantaneous COP. It is what the
/// planner degrades to on a one-job horizon, and the natural companion
/// dispatcher when `PlannerControl` hints miss (`dispatcher = "planned"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannedDispatch;

impl FleetDispatcher for PlannedDispatch {
    fn name(&self) -> &'static str {
        "planned"
    }

    fn place(&mut self, demand: &JobDemand<'_>, view: &FleetView<'_>) -> usize {
        let mut ranked: Vec<(f64, f64, usize, ClassId)> = Vec::new();
        for i in 0..view.servers.active_racks() {
            let rack = view.rack_view(i);
            for &class in view.classes_in_rack(i) {
                let d = demand.class(class);
                let energy = d.runtime.value()
                    * (d.state.package_power.value()
                        + marginal_power(view.chiller, rack, &d.state));
                ranked.push((energy, rack.heat.value(), i, class));
            }
        }
        // Cheapest total energy first; lighter rack, then rack index, then
        // class id, on ties — the same deterministic total order the
        // thermal-aware ranking uses.
        ranked.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        for &(_, _, rack, class) in &ranked {
            let (server, _) = view
                .earliest_free_of_class(rack, class)
                .expect("classes_in_rack only returns hosted classes");
            if view.wait_on(server) <= demand.class(class).wait_budget {
                return server;
            }
        }
        fallback_min_free(view)
    }

    /// The exhaustive energy scan walks every rack regardless of the
    /// partition; a hall fold would only add merge overhead.
    fn wants_hall_fanout(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_workload::{Benchmark, QosClass};

    fn steady(heat: f64, max_water: f64) -> SteadyState {
        SteadyState {
            package_power: Watts::new(heat),
            heat: Watts::new(heat),
            max_water_temp: Celsius::new(max_water),
            normalized_time: 1.0,
            n_cores: 8,
            die_max: Celsius::new(70.0),
        }
    }

    fn demand(heat: f64, max_water: f64, budget: f64) -> Vec<ClassDemand> {
        vec![ClassDemand {
            state: steady(heat, max_water),
            runtime: Seconds::new(30.0),
            wait_budget: Seconds::new(budget),
        }]
    }

    fn job() -> Job {
        Job {
            id: 0,
            bench: Benchmark::X264,
            qos: QosClass::TwoX,
            arrival: Seconds::ZERO,
            service: Seconds::new(30.0),
        }
    }

    fn table(class_of: Vec<ClassId>, per_rack: usize, free: &[f64]) -> ServerTable {
        let mut t = ServerTable::new(class_of, per_rack);
        for (s, &f) in free.iter().enumerate() {
            t.set_free_at(s, Seconds::new(f));
        }
        t
    }

    #[test]
    fn round_robin_cycles() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let servers = table(vec![0; 4], 2, &[0.0; 4]);
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let mut rr = RoundRobin::default();
        let classes = demand(70.0, 64.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        let picks: Vec<usize> = (0..5).map(|_| rr.place(&d, &view)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn planned_dispatch_minimizes_total_energy_not_marginal_power() {
        let j = job();
        // Rack 0 hosts class 0 (cool but slow), rack 1 hosts class 1
        // (hotter but finishes in half the time).
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let servers = table(vec![0, 1], 1, &[0.0; 2]);
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let classes = vec![
            ClassDemand {
                state: steady(100.0, 60.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
            ClassDemand {
                state: steady(150.0, 60.0),
                runtime: Seconds::new(15.0),
                wait_budget: Seconds::new(30.0),
            },
        ];
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        // Marginal chiller power favors the cooler class 0…
        assert_eq!(ThermalAwareDispatch::place_scan(&d, &view), 0);
        // …but total energy (runtime × power) favors the faster class 1.
        let mut planned = PlannedDispatch;
        assert_eq!(planned.place(&d, &view), 1);
    }

    #[test]
    fn coolest_rack_first_picks_the_lightest_rack() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::new(150.0),
                supply: Some(Celsius::new(70.0)),
                committed: 2,
            },
            RackView {
                heat: Watts::new(20.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let servers = table(vec![0; 4], 2, &[0.0, 0.0, 5.0, 0.0]);
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let classes = demand(70.0, 70.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        assert_eq!(CoolestRackFirst.place(&d, &view), 3);
    }

    #[test]
    fn thermal_aware_segregates_a_cold_demanding_job() {
        let j = job();
        // Rack 0 already runs cold water; rack 1 free-cools at 75 °C.
        let racks = vec![
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(60.0)),
                committed: 1,
            },
            RackView {
                heat: Watts::new(70.0),
                supply: Some(Celsius::new(75.0)),
                committed: 1,
            },
        ];
        let servers = table(vec![0; 4], 2, &[0.0; 4]);
        // Heat-reuse loop at 60 °C: supplies below 65 °C pay compressor lift.
        let chiller = Chiller::new(Celsius::new(60.0));
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let mut ta = ThermalAwareDispatch::default();
        // A job needing 60 °C water joins the already-cold rack 0…
        let cold = demand(70.0, 60.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &cold,
            sig: 0,
        };
        assert_eq!(servers.len() % 2, 0);
        let pick = ta.place(&d, &view);
        assert!(pick < 2, "cold job went to rack {}", pick / 2);
        // …while a warm-tolerant job joins the free-cooling rack 1.
        let warm = demand(70.0, 76.0, 30.0);
        let d = JobDemand {
            job: &j,
            classes: &warm,
            sig: 1,
        };
        let pick = ta.place(&d, &view);
        assert!(pick >= 2, "warm job went to rack {}", pick / 2);
    }

    #[test]
    fn thermal_aware_respects_the_wait_budget() {
        let j = job();
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            },
        ];
        // Rack 0 is thermally ideal but saturated for 100 s; rack 1 is free.
        let servers = table(vec![0; 4], 2, &[100.0, 100.0, 0.0, 0.0]);
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let mut ta = ThermalAwareDispatch::default();
        let classes = demand(70.0, 64.0, 10.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        let pick = ta.place(&d, &view);
        assert!(pick >= 2, "budget-violating rack chosen");
    }

    #[test]
    fn thermal_aware_picks_the_cheaper_class_within_one_rack() {
        let j = job();
        // One rack, two classes side by side. On class 0 the job needs
        // 60 °C water (compressor lift against the 60 °C reuse loop); on
        // class 1 it tolerates 76 °C (free cooling).
        let racks = vec![RackView {
            heat: Watts::ZERO,
            supply: None,
            committed: 0,
        }];
        let servers = table(vec![0, 1], 2, &[0.0; 2]);
        let chiller = Chiller::new(Celsius::new(60.0));
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let classes = vec![
            ClassDemand {
                state: steady(70.0, 60.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
            ClassDemand {
                state: steady(70.0, 76.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
        ];
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        assert_eq!(ThermalAwareDispatch::default().place(&d, &view), 1);
        // CoolestRackFirst agrees once the (single) rack is fixed.
        assert_eq!(CoolestRackFirst.place(&d, &view), 1);
    }

    #[test]
    fn class_helpers_report_rack_composition() {
        let racks = vec![
            RackView {
                heat: Watts::ZERO,
                supply: None,
                committed: 0,
            };
            2
        ];
        let servers = table(vec![1, 1, 0, 1], 2, &[4.0, 2.0, 0.0, 0.0]);
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &servers,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        assert_eq!(view.classes_in_rack(0), vec![1]);
        assert_eq!(view.classes_in_rack(1), vec![0, 1]);
        assert_eq!(
            view.earliest_free_of_class(0, 1),
            Some((1, Seconds::new(2.0)))
        );
        assert_eq!(view.earliest_free_of_class(0, 0), None);
        assert_eq!(view.earliest_free_of_class(1, 0), Some((2, Seconds::ZERO)));
        assert_eq!(servers.rack_of(3), 1);
        assert_eq!(servers.class_of(2), 0);
        assert_eq!(servers.racks(), 2);
    }

    #[test]
    fn activation_rounds_to_racks_and_masks_every_dispatcher() {
        let mut t = table(vec![0; 8], 2, &[0.0; 8]);
        assert_eq!(t.active_servers(), 8);
        assert_eq!(t.active_racks(), 4);
        // Requests round up to whole racks and clamp to [1 rack, all].
        assert_eq!(t.set_active_servers(3), 4);
        assert_eq!(t.active_racks(), 2);
        assert_eq!(t.set_active_servers(0), 2);
        assert_eq!(t.set_active_servers(100), 8);
        t.set_active_servers(4);

        let j = job();
        // Rack 1 (active) is hot; racks 2–3 (inactive) are idle and would
        // win every heat comparison if the mask leaked.
        let racks = vec![
            RackView {
                heat: Watts::new(90.0),
                supply: Some(Celsius::new(70.0)),
                committed: 1,
            },
            RackView {
                heat: Watts::new(40.0),
                supply: Some(Celsius::new(70.0)),
                committed: 1,
            },
            idle_rack_view(),
            idle_rack_view(),
        ];
        let chiller = Chiller::default();
        let view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &t,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let classes = demand(70.0, 76.0, 0.0);
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        let mut rr = RoundRobin::default();
        for i in 0..8 {
            assert_eq!(rr.place(&d, &view), i % 4, "round-robin leaked");
        }
        assert!(CoolestRackFirst.place(&d, &view) < 4, "coolest leaked");
        assert!(
            ThermalAwareDispatch::default().place(&d, &view) < 4,
            "thermal-aware leaked"
        );
        assert!(fallback_min_free(&view) < 4, "fallback leaked");
    }

    #[test]
    fn indexed_dispatch_matches_the_full_scan() {
        // Two rack groups — racks {0,1} host class 0, racks {2,3} host
        // both — with rack 1 committed and the rest idle. The indexed
        // walk (group representatives + occupied racks, via the score
        // memo) must pick exactly what the full enumeration picks, for
        // cold and warm demand signatures alike, across repeated calls.
        let j = job();
        let racks = vec![
            idle_rack_view(),
            RackView {
                heat: Watts::new(140.0),
                supply: Some(Celsius::new(60.0)),
                committed: 2,
            },
            idle_rack_view(),
            idle_rack_view(),
        ];
        let servers = table(vec![0, 0, 0, 0, 0, 1, 0, 1], 2, &[0.0; 8]);
        let chiller = Chiller::new(Celsius::new(60.0));
        let group_of = vec![0u32, 0, 1, 1];
        let group_classes = vec![vec![0usize], vec![0, 1]];
        let occupied = vec![OccupiedRack {
            heat_bits: Watts::new(140.0).value().to_bits(),
            rack: 1,
            group: 0,
            supply_bits: Celsius::new(60.0).value().to_bits(),
        }];
        let idle_min: Vec<Option<u32>> = vec![Some(0), Some(2)];
        let stamps = vec![0u64; 4];
        let mut ta_indexed = ThermalAwareDispatch::default();
        let mut ta_scan = ThermalAwareDispatch::default();
        for (sig, (heat, water)) in [(70.0, 60.0), (70.0, 76.0), (120.0, 55.0)]
            .into_iter()
            .enumerate()
        {
            let classes = vec![
                ClassDemand {
                    state: steady(heat, water),
                    runtime: Seconds::new(30.0),
                    wait_budget: Seconds::new(30.0),
                },
                ClassDemand {
                    state: steady(heat * 0.9, water + 8.0),
                    runtime: Seconds::new(33.0),
                    wait_budget: Seconds::new(27.0),
                },
            ];
            let d = JobDemand {
                job: &j,
                classes: &classes,
                sig: sig as u32,
            };
            let indexed_view = FleetView {
                halls: None,
                now: Seconds::ZERO,
                racks: &racks,
                servers: &servers,
                chiller: &chiller,
                chiller_epoch: 0,
                index: Some(FleetIndex {
                    occupied: &occupied,
                    idle_min: &idle_min,
                    group_of: &group_of,
                    group_classes: &group_classes,
                    stamps: &stamps,
                }),
            };
            let scan_view = FleetView {
                halls: None,
                now: Seconds::ZERO,
                racks: &racks,
                servers: &servers,
                chiller: &chiller,
                chiller_epoch: 0,
                index: None,
            };
            for _ in 0..3 {
                assert_eq!(
                    ta_indexed.place(&d, &indexed_view),
                    ta_scan.place(&d, &scan_view),
                    "sig {sig}"
                );
                assert_eq!(
                    CoolestRackFirst.place(&d, &indexed_view),
                    CoolestRackFirst.place(&d, &scan_view),
                    "sig {sig}"
                );
            }
        }

        // Under an active-prefix mask (racks 0–1 only) the indexed walk
        // must keep matching the scan: group {2,3} loses its
        // representative entirely, occupied rack 1 stays.
        let mut masked = table(vec![0, 0, 0, 0, 0, 1, 0, 1], 2, &[0.0; 8]);
        masked.set_active_servers(4);
        let classes = vec![
            ClassDemand {
                state: steady(70.0, 60.0),
                runtime: Seconds::new(30.0),
                wait_budget: Seconds::new(30.0),
            },
            ClassDemand {
                state: steady(63.0, 68.0),
                runtime: Seconds::new(33.0),
                wait_budget: Seconds::new(27.0),
            },
        ];
        let d = JobDemand {
            job: &j,
            classes: &classes,
            sig: 0,
        };
        let indexed_view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &masked,
            chiller: &chiller,
            chiller_epoch: 0,
            index: Some(FleetIndex {
                occupied: &occupied,
                idle_min: &idle_min,
                group_of: &group_of,
                group_classes: &group_classes,
                stamps: &stamps,
            }),
        };
        let scan_view = FleetView {
            halls: None,
            now: Seconds::ZERO,
            racks: &racks,
            servers: &masked,
            chiller: &chiller,
            chiller_epoch: 0,
            index: None,
        };
        let mut ta = ThermalAwareDispatch::default();
        let pick_indexed = ta.place(&d, &indexed_view);
        assert_eq!(
            pick_indexed,
            ThermalAwareDispatch::default().place(&d, &scan_view)
        );
        assert!(pick_indexed < 4, "mask leaked through the index");
        assert_eq!(
            CoolestRackFirst.place(&d, &indexed_view),
            CoolestRackFirst.place(&d, &scan_view)
        );
    }
}
