//! Global optimizing planner: joint placement + set-point co-optimization.
//!
//! The greedy dispatchers place each arrival in isolation and the
//! set-point scheduler is open-loop. This module closes the loop: it
//! looks at a *horizon* of pending jobs at once and co-optimizes which
//! `(rack, class)` slot each job lands on **and** which chiller set-point
//! the fleet should run, minimizing total energy
//!
//! ```text
//!   Σ_jobs  power(job, class) × runtime(job, class)          (IT energy)
//! + Σ_racks heat(rack) × (1/COP)(supply(rack)) × horizon     (cooling)
//! ```
//!
//! where `supply(rack)` is the minimum tolerable water temperature over
//! the jobs committed to the rack (colder water → better COP for nobody,
//! worse COP for everybody on the chiller).
//!
//! Two solver cores ship, both hand-rolled (no crates.io deps, like the
//! vendored TOML parser):
//!
//! * **`lp`** — the chiller curve is replaced by a piecewise-linear upper
//!   envelope ([`PwlCop`]) sampled from the real [`Chiller`]; a greedy
//!   construction plus steepest-descent moves builds an incumbent, a
//!   dense-simplex transportation relaxation ([`simplex`]) provides a
//!   lower bound that certifies the incumbent when they meet, and a
//!   bounded branch-and-bound closes the gap exactly on small instances.
//! * **`anneal`** — simulated annealing over joint
//!   `(assignment, set-point)` moves, seeded from the vendored SplitMix64
//!   `StdRng`: deterministic per seed, never worse than greedy.
//!
//! [`PlannerControl`] packages the solver as a [`ControlPolicy`]: it
//! re-plans on `ControlTick`, emits set-point actions, and publishes a
//! placement-hint table the kernel consults on each arrival before
//! falling back to the configured dispatcher.

mod anneal;
pub mod pwl;
pub mod simplex;

pub use pwl::PwlCop;

use crate::cache::SteadyState;
use crate::catalog::ClassId;
use crate::control::{ControlAction, ControlPolicy, ControlStatus, PlacementHint, RunContext};
use crate::job::Job;
use std::collections::BTreeMap;
use tps_cooling::Chiller;
use tps_units::{Celsius, Seconds};

/// Jobs per planning window; arrivals beyond the cap wait for a later
/// re-plan (the greedy fallback still places them if they arrive first).
const PLAN_JOB_CAP: usize = 32;
/// Branch-and-bound only runs on instances this small.
const BNB_JOB_CAP: usize = 12;
/// Node budget for one branch-and-bound search.
const BNB_NODE_CAP: usize = 50_000;
/// Bounded steepest-descent passes after the greedy construction.
const DESCENT_PASSES: usize = 50;
/// Base seed for the in-control annealer; XOR'd with the tick index so
/// consecutive re-plans explore differently while staying reproducible.
const ANNEAL_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// One placement option for a job: what running it on a given server
/// class costs and demands.
#[derive(Debug, Clone, Copy)]
pub struct PlanOption {
    /// Steady-state package power on this class, watts.
    pub power_w: f64,
    /// Heat rejected to the water loop, watts.
    pub heat_w: f64,
    /// Warmest tolerable supply water, °C.
    pub water_c: f64,
    /// Wall-clock runtime on this class, seconds.
    pub runtime_s: f64,
}

/// A job in the planning window with one [`PlanOption`] per server class.
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Kernel job id — the key the placement-hint table is published
    /// under.
    pub id: usize,
    /// Options indexed by class id; every class must be present.
    pub options: Vec<PlanOption>,
}

/// A rack in the planning window: its already-committed load plus free
/// capacity.
#[derive(Debug, Clone)]
pub struct PlanRack {
    /// Heat already committed to the rack, watts.
    pub base_heat_w: f64,
    /// Supply ceiling imposed by the committed jobs, °C (`None` when the
    /// rack is idle).
    pub base_supply_c: Option<f64>,
    /// Free server slots per class id.
    pub free: Vec<usize>,
}

/// A self-contained planning instance: jobs × racks × candidate
/// set-points under one chiller.
#[derive(Debug, Clone)]
pub struct PlanInstance {
    /// Jobs to place, in arrival order.
    pub jobs: Vec<PlanJob>,
    /// Racks with capacity and committed load.
    pub racks: Vec<PlanRack>,
    /// Candidate chiller set-points (ambient re-targets), °C.
    pub setpoints_c: Vec<f64>,
    /// The chiller whose curve is being optimized against; each candidate
    /// set-point evaluates `chiller.with_ambient(setpoint)`.
    pub chiller: Chiller,
    /// Cooling-energy horizon, seconds.
    pub horizon_s: f64,
}

/// Solver statistics carried on a [`Plan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanStats {
    /// Branch-and-bound nodes visited (annealing proposals for the
    /// `anneal` solver).
    pub nodes: usize,
    /// Simplex pivots spent on lower bounds.
    pub pivots: usize,
    /// Best proven lower bound on the PWL objective, joules
    /// (`-inf` when no bound was computed).
    pub lower_bound_j: f64,
    /// Conservative bound on how far the PWL objective can sit above the
    /// true-curve objective, joules.
    pub linearization_error_j: f64,
}

/// A solved plan: joint placement + set-point choice.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-job `(rack, class)` slot, aligned with the instance's jobs.
    pub assign: Vec<(u32, u32)>,
    /// Index into the instance's set-point grid.
    pub setpoint: usize,
    /// PWL objective of the plan, joules.
    pub objective_j: f64,
    /// Whether the solver *proved* this is the PWL optimum (lower bound
    /// met, or branch-and-bound completed within its node budget on every
    /// set-point).
    pub certified: bool,
    /// Search-effort counters and bounds.
    pub stats: PlanStats,
}

impl PlanInstance {
    /// Number of server classes (options per job, free counts per rack).
    pub fn classes(&self) -> usize {
        self.racks.first().map_or(0, |r| r.free.len())
    }

    /// Clone of the per-rack per-class free-slot counts.
    pub(crate) fn free_counts(&self) -> Vec<Vec<usize>> {
        self.racks.iter().map(|r| r.free.clone()).collect()
    }

    /// Panics unless the instance is well-formed: consistent class
    /// counts, finite demands, and enough free capacity for every job.
    pub fn validate(&self) {
        assert!(!self.racks.is_empty(), "plan instance needs racks");
        assert!(
            !self.setpoints_c.is_empty(),
            "plan instance needs at least one candidate set-point"
        );
        assert!(
            self.setpoints_c.iter().all(|s| s.is_finite()),
            "candidate set-points must be finite"
        );
        assert!(
            self.horizon_s.is_finite() && self.horizon_s > 0.0,
            "plan horizon must be positive and finite"
        );
        let classes = self.classes();
        for rack in &self.racks {
            assert_eq!(rack.free.len(), classes, "rack class counts disagree");
            assert!(
                rack.base_heat_w.is_finite() && rack.base_heat_w >= 0.0,
                "rack base heat must be finite and non-negative"
            );
        }
        let capacity: usize = self
            .racks
            .iter()
            .map(|r| r.free.iter().sum::<usize>())
            .sum();
        assert!(
            capacity >= self.jobs.len(),
            "plan instance overcommitted: {} jobs, {capacity} free slots",
            self.jobs.len()
        );
        for job in &self.jobs {
            assert_eq!(job.options.len(), classes, "job option counts disagree");
            for opt in &job.options {
                assert!(
                    opt.power_w.is_finite()
                        && opt.heat_w.is_finite()
                        && opt.water_c.is_finite()
                        && opt.runtime_s.is_finite(),
                    "job options must be finite"
                );
                assert!(
                    opt.heat_w >= 0.0 && opt.power_w >= 0.0 && opt.runtime_s >= 0.0,
                    "job options must be non-negative"
                );
            }
        }
    }

    /// The supply-temperature range any rack can end up at: every rack
    /// supply is a min over job waters and committed ceilings.
    fn supply_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for job in &self.jobs {
            for opt in &job.options {
                lo = lo.min(opt.water_c);
                hi = hi.max(opt.water_c);
            }
        }
        for rack in &self.racks {
            if let Some(s) = rack.base_supply_c {
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        if lo > hi {
            // No water constraints at all — the model is never evaluated,
            // any degenerate range will do.
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// One PWL inverse-COP model per candidate set-point, sampled from
    /// `chiller.with_ambient(setpoint)` over the instance's supply range.
    pub fn pwl_models(&self) -> Vec<PwlCop> {
        let (lo, hi) = self.supply_range();
        self.setpoints_c
            .iter()
            .map(|&sp| PwlCop::build(&self.chiller.with_ambient(Celsius::new(sp)), lo, hi))
            .collect()
    }

    /// Upper bound on total rack heat under any assignment, watts.
    fn heat_cap(&self) -> f64 {
        let base: f64 = self.racks.iter().map(|r| r.base_heat_w).sum();
        let jobs: f64 = self
            .jobs
            .iter()
            .map(|j| j.options.iter().map(|o| o.heat_w).fold(0.0, f64::max))
            .sum();
        base + jobs
    }
}

/// Total-energy objective of `assign` under an arbitrary inverse-COP
/// curve. Racks with no heat (or no water-constrained load) cost nothing
/// to cool, matching the kernel's accounting.
fn objective_with(inst: &PlanInstance, assign: &[(u32, u32)], inv: impl Fn(f64) -> f64) -> f64 {
    let mut it = 0.0;
    let mut heat = vec![0.0; inst.racks.len()];
    let mut supply = vec![f64::INFINITY; inst.racks.len()];
    for (r, rack) in inst.racks.iter().enumerate() {
        heat[r] = rack.base_heat_w;
        if let Some(s) = rack.base_supply_c {
            supply[r] = s;
        }
    }
    for (job, &(r, c)) in inst.jobs.iter().zip(assign) {
        let opt = &job.options[c as usize];
        it += opt.power_w * opt.runtime_s;
        heat[r as usize] += opt.heat_w;
        supply[r as usize] = supply[r as usize].min(opt.water_c);
    }
    let mut cool = 0.0;
    for r in 0..inst.racks.len() {
        if heat[r] > 0.0 && supply[r].is_finite() {
            cool += heat[r] * inv(supply[r]) * inst.horizon_s;
        }
    }
    it + cool
}

/// The plan objective in joules under the PWL chiller model for
/// set-point `pwl`.
pub fn objective_pwl(inst: &PlanInstance, assign: &[(u32, u32)], pwl: &PwlCop) -> f64 {
    objective_with(inst, assign, |s| pwl.eval(s))
}

/// The plan objective in joules under the *real* chiller curve at
/// set-point index `setpoint` — what the oracle tests enumerate against.
pub fn objective_real(inst: &PlanInstance, assign: &[(u32, u32)], setpoint: usize) -> f64 {
    let chiller = inst
        .chiller
        .with_ambient(Celsius::new(inst.setpoints_c[setpoint]));
    objective_with(inst, assign, |s| 1.0 / chiller.cop(Celsius::new(s)))
}

/// Greedy construction: jobs in order, each to the `(rack, class)` slot
/// with the smallest incremental PWL energy; ties break on the lowest
/// `(rack, class)` for determinism.
fn greedy_assign(inst: &PlanInstance, pwl: &PwlCop) -> Vec<(u32, u32)> {
    let classes = inst.classes();
    let mut free = inst.free_counts();
    let mut heat = vec![0.0; inst.racks.len()];
    let mut supply = vec![f64::INFINITY; inst.racks.len()];
    for (r, rack) in inst.racks.iter().enumerate() {
        heat[r] = rack.base_heat_w;
        if let Some(s) = rack.base_supply_c {
            supply[r] = s;
        }
    }
    let mut assign = Vec::with_capacity(inst.jobs.len());
    for job in &inst.jobs {
        let mut best: Option<(f64, usize, usize)> = None;
        for r in 0..inst.racks.len() {
            let before = if heat[r] > 0.0 && supply[r].is_finite() {
                heat[r] * pwl.eval(supply[r])
            } else {
                0.0
            };
            for c in 0..classes {
                if free[r][c] == 0 {
                    continue;
                }
                let opt = &job.options[c];
                let after = (heat[r] + opt.heat_w) * pwl.eval(supply[r].min(opt.water_c));
                let delta = opt.power_w * opt.runtime_s + (after - before) * inst.horizon_s;
                let cand = (delta, r, c);
                if best.map_or(true, |b| {
                    cand.0
                        .total_cmp(&b.0)
                        .then_with(|| (cand.1, cand.2).cmp(&(b.1, b.2)))
                        == std::cmp::Ordering::Less
                }) {
                    best = Some(cand);
                }
            }
        }
        let (_, r, c) = best.expect("validated instance has capacity for every job");
        let opt = &job.options[c];
        free[r][c] -= 1;
        heat[r] += opt.heat_w;
        supply[r] = supply[r].min(opt.water_c);
        assign.push((r as u32, c as u32));
    }
    assign
}

/// Bounded first-improvement descent over single-job moves and pairwise
/// swaps; returns the (non-increasing) final PWL objective.
fn descent(inst: &PlanInstance, pwl: &PwlCop, assign: &mut [(u32, u32)]) -> f64 {
    let classes = inst.classes();
    let mut free = inst.free_counts();
    for &(r, c) in assign.iter() {
        free[r as usize][c as usize] -= 1;
    }
    let mut obj = objective_pwl(inst, assign, pwl);
    for _ in 0..DESCENT_PASSES {
        let mut improved = false;
        for j in 0..assign.len() {
            let mut cur = assign[j];
            for r in 0..inst.racks.len() as u32 {
                for c in 0..classes as u32 {
                    if (r, c) == cur || free[r as usize][c as usize] == 0 {
                        continue;
                    }
                    assign[j] = (r, c);
                    let cand = objective_pwl(inst, assign, pwl);
                    if cand < obj - 1e-12 {
                        obj = cand;
                        free[cur.0 as usize][cur.1 as usize] += 1;
                        free[r as usize][c as usize] -= 1;
                        cur = (r, c);
                        improved = true;
                    } else {
                        assign[j] = cur;
                    }
                }
            }
        }
        for i in 0..assign.len() {
            for j in i + 1..assign.len() {
                if assign[i] == assign[j] {
                    continue;
                }
                assign.swap(i, j);
                let cand = objective_pwl(inst, assign, pwl);
                if cand < obj - 1e-12 {
                    obj = cand;
                    improved = true;
                } else {
                    assign.swap(i, j);
                }
            }
        }
        if !improved {
            break;
        }
    }
    obj
}

/// Root lower bound for one set-point: a transportation LP over
/// `jobs × open slots` with per-job costs priced at the *loosest*
/// possible supply for the slot's rack (`min(water, committed ceiling)`),
/// plus the committed base cooling at its own ceiling. Valid because the
/// PWL inverse COP is non-increasing and any final rack supply is at
/// most that loose bound. Returns `(bound_j, simplex_pivots)`.
fn root_lower_bound(inst: &PlanInstance, pwl: &PwlCop) -> (f64, usize) {
    let mut constant = 0.0;
    for rack in &inst.racks {
        if let Some(s) = rack.base_supply_c {
            if rack.base_heat_w > 0.0 {
                constant += rack.base_heat_w * pwl.eval(s) * inst.horizon_s;
            }
        }
    }
    if inst.jobs.is_empty() {
        return (constant, 0);
    }
    let mut slots = Vec::new();
    let mut cap = Vec::new();
    for (r, rack) in inst.racks.iter().enumerate() {
        for (c, &n) in rack.free.iter().enumerate() {
            if n > 0 {
                slots.push((r, c));
                cap.push(n as f64);
            }
        }
    }
    let mut cost = Vec::with_capacity(inst.jobs.len() * slots.len());
    for job in &inst.jobs {
        for &(r, c) in &slots {
            let opt = &job.options[c];
            let loose = match inst.racks[r].base_supply_c {
                Some(s) => opt.water_c.min(s),
                None => opt.water_c,
            };
            cost.push(opt.power_w * opt.runtime_s + opt.heat_w * pwl.eval(loose) * inst.horizon_s);
        }
    }
    let budget = 64 * (inst.jobs.len() + slots.len() + 4);
    match simplex::transportation_lower_bound(&cost, inst.jobs.len(), slots.len(), &cap, budget) {
        Ok(sol) => (constant + sol.objective, sol.pivots),
        Err(_) => (f64::NEG_INFINITY, 0),
    }
}

/// Depth-first branch-and-bound over job-by-job slot choices for a fixed
/// set-point; exact (certifying) when it finishes within its node budget.
struct BranchAndBound<'a> {
    inst: &'a PlanInstance,
    pwl: &'a PwlCop,
    free: Vec<Vec<usize>>,
    heat: Vec<f64>,
    supply: Vec<f64>,
    it: f64,
    partial: Vec<(u32, u32)>,
    best_obj: f64,
    best_assign: Vec<(u32, u32)>,
    nodes: usize,
    capped: bool,
}

impl<'a> BranchAndBound<'a> {
    fn new(inst: &'a PlanInstance, pwl: &'a PwlCop, incumbent: Vec<(u32, u32)>, obj: f64) -> Self {
        let mut heat = vec![0.0; inst.racks.len()];
        let mut supply = vec![f64::INFINITY; inst.racks.len()];
        for (r, rack) in inst.racks.iter().enumerate() {
            heat[r] = rack.base_heat_w;
            if let Some(s) = rack.base_supply_c {
                supply[r] = s;
            }
        }
        BranchAndBound {
            inst,
            pwl,
            free: inst.free_counts(),
            heat,
            supply,
            it: 0.0,
            partial: Vec::with_capacity(inst.jobs.len()),
            best_obj: obj,
            best_assign: incumbent,
            nodes: 0,
            capped: false,
        }
    }

    /// Exact PWL cooling of the partial assignment priced as if complete.
    fn cooling(&self) -> f64 {
        let mut cool = 0.0;
        for r in 0..self.inst.racks.len() {
            if self.heat[r] > 0.0 && self.supply[r].is_finite() {
                cool += self.heat[r] * self.pwl.eval(self.supply[r]) * self.inst.horizon_s;
            }
        }
        cool
    }

    /// Per-job admissible bound for every job not yet placed: the best
    /// open slot priced at the rack's *current* supply (a lower bound on
    /// its final cost because supplies only get colder down the tree).
    fn future_bound(&self, depth: usize) -> f64 {
        let mut sum = 0.0;
        for job in &self.inst.jobs[depth..] {
            let mut best = f64::INFINITY;
            for (r, frees) in self.free.iter().enumerate() {
                for (c, &n) in frees.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let opt = &job.options[c];
                    let u = self.supply[r].min(opt.water_c);
                    let cost = opt.power_w * opt.runtime_s
                        + opt.heat_w * self.pwl.eval(u) * self.inst.horizon_s;
                    best = best.min(cost);
                }
            }
            sum += best;
        }
        sum
    }

    fn search(&mut self, depth: usize) {
        if self.capped {
            return;
        }
        self.nodes += 1;
        if self.nodes > BNB_NODE_CAP {
            self.capped = true;
            return;
        }
        let node_cost = self.it + self.cooling();
        if depth == self.inst.jobs.len() {
            if node_cost < self.best_obj - 1e-12 {
                self.best_obj = node_cost;
                self.best_assign = self.partial.clone();
            }
            return;
        }
        if node_cost + self.future_bound(depth) >= self.best_obj - 1e-12 {
            return;
        }
        let job = &self.inst.jobs[depth];
        let mut children: Vec<(f64, usize, usize)> = Vec::new();
        for (r, frees) in self.free.iter().enumerate() {
            for (c, &n) in frees.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let opt = &job.options[c];
                let before = if self.heat[r] > 0.0 && self.supply[r].is_finite() {
                    self.heat[r] * self.pwl.eval(self.supply[r])
                } else {
                    0.0
                };
                let after =
                    (self.heat[r] + opt.heat_w) * self.pwl.eval(self.supply[r].min(opt.water_c));
                let delta = opt.power_w * opt.runtime_s + (after - before) * self.inst.horizon_s;
                children.push((delta, r, c));
            }
        }
        children.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
        });
        for (_, r, c) in children {
            let opt = &job.options[c];
            let (old_heat, old_supply) = (self.heat[r], self.supply[r]);
            self.free[r][c] -= 1;
            self.heat[r] += opt.heat_w;
            self.supply[r] = self.supply[r].min(opt.water_c);
            self.it += opt.power_w * opt.runtime_s;
            self.partial.push((r as u32, c as u32));
            self.search(depth + 1);
            self.partial.pop();
            self.it -= opt.power_w * opt.runtime_s;
            self.supply[r] = old_supply;
            self.heat[r] = old_heat;
            self.free[r][c] += 1;
            if self.capped {
                return;
            }
        }
    }
}

/// Per-set-point candidate produced by the LP pipeline.
struct Candidate {
    assign: Vec<(u32, u32)>,
    objective: f64,
    lower_bound: f64,
    certified: bool,
}

/// Solve with the linearized pipeline: greedy construction + descent,
/// simplex lower bound, and branch-and-bound on small instances; the
/// best candidate over every set-point wins.
pub fn solve_lp(inst: &PlanInstance) -> Plan {
    inst.validate();
    let pwls = inst.pwl_models();
    let mut stats = PlanStats::default();
    let mut cands = Vec::with_capacity(pwls.len());
    for pwl in &pwls {
        let mut assign = greedy_assign(inst, pwl);
        let mut objective = descent(inst, pwl, &mut assign);
        let (lower_bound, pivots) = root_lower_bound(inst, pwl);
        stats.pivots += pivots;
        let mut certified = objective <= lower_bound + 1e-9 * objective.abs().max(1.0);
        if !certified && inst.jobs.len() <= BNB_JOB_CAP {
            let mut bnb = BranchAndBound::new(inst, pwl, assign.clone(), objective);
            bnb.search(0);
            stats.nodes += bnb.nodes;
            if bnb.best_obj < objective {
                objective = bnb.best_obj;
                assign = bnb.best_assign.clone();
            }
            certified = !bnb.capped;
        }
        cands.push(Candidate {
            assign,
            objective,
            lower_bound,
            certified,
        });
    }
    let setpoint = (0..cands.len())
        .min_by(|&a, &b| cands[a].objective.total_cmp(&cands[b].objective))
        .expect("at least one set-point");
    let chosen_obj = cands[setpoint].objective;
    // The global optimum is certified only if every set-point's branch
    // either solved exactly or is bounded away from the winner.
    let certified = cands
        .iter()
        .all(|c| c.certified || c.lower_bound >= chosen_obj - 1e-12);
    stats.lower_bound_j = cands
        .iter()
        .map(|c| c.lower_bound)
        .fold(f64::INFINITY, f64::min);
    stats.linearization_error_j = pwls[setpoint].max_error() * inst.heat_cap() * inst.horizon_s;
    let chosen = &cands[setpoint];
    Plan {
        assign: chosen.assign.clone(),
        setpoint,
        objective_j: chosen_obj,
        certified,
        stats,
    }
}

/// Solve with the greedy construction alone (no descent, no bounds) —
/// the baseline the annealer and the optimality-gap table compare
/// against.
pub fn solve_greedy(inst: &PlanInstance) -> Plan {
    inst.validate();
    let pwls = inst.pwl_models();
    let mut best: Option<(f64, usize, Vec<(u32, u32)>)> = None;
    for (sp, pwl) in pwls.iter().enumerate() {
        let assign = greedy_assign(inst, pwl);
        let obj = objective_pwl(inst, &assign, pwl);
        if best
            .as_ref()
            .map_or(true, |b| obj.total_cmp(&b.0) == std::cmp::Ordering::Less)
        {
            best = Some((obj, sp, assign));
        }
    }
    let (objective_j, setpoint, assign) = best.expect("at least one set-point");
    Plan {
        assign,
        setpoint,
        objective_j,
        certified: false,
        stats: PlanStats {
            linearization_error_j: pwls[setpoint].max_error() * inst.heat_cap() * inst.horizon_s,
            lower_bound_j: f64::NEG_INFINITY,
            ..PlanStats::default()
        },
    }
}

/// Solve with simulated annealing from the best greedy start; `iters`
/// proposals, deterministic per `seed`, never worse than greedy.
pub fn solve_anneal(inst: &PlanInstance, iters: usize, seed: u64) -> Plan {
    inst.validate();
    let pwls = inst.pwl_models();
    let greedy = solve_greedy(inst);
    let init = anneal::AnnealState {
        assign: greedy.assign,
        setpoint: greedy.setpoint,
        objective: greedy.objective_j,
    };
    let out = anneal::run(inst, &pwls, init, iters, seed);
    Plan {
        assign: out.assign,
        setpoint: out.setpoint,
        objective_j: out.objective,
        certified: false,
        stats: PlanStats {
            nodes: iters,
            linearization_error_j: pwls[out.setpoint].max_error()
                * inst.heat_cap()
                * inst.horizon_s,
            lower_bound_j: f64::NEG_INFINITY,
            ..PlanStats::default()
        },
    }
}

/// Which solver core a [`PlannerControl`] runs on each re-plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSolver {
    /// Linearized pipeline: greedy + descent + simplex bound (+ exact
    /// branch-and-bound on small windows).
    Lp,
    /// Simulated annealing over joint `(assignment, set-point)` moves.
    Anneal,
}

/// What [`PlannerControl::begin_run`] captures from the kernel.
#[derive(Debug)]
struct CapturedRun {
    /// The full job stream, sorted by `(arrival, id)`.
    jobs: Vec<Job>,
    /// Per sorted job, its index into `pair_states`.
    pair_of: Vec<usize>,
    /// Steady states per `(bench, qos)` pair × class.
    pair_states: Vec<Vec<SteadyState>>,
    /// The run's configured chiller (base for set-point re-targets).
    chiller: Chiller,
    /// Static per-rack per-class server counts.
    slots: Vec<Vec<usize>>,
    /// First job not yet behind the planning window.
    next: usize,
}

/// A [`ControlPolicy`] that re-plans joint placements and the chiller
/// set-point on a fixed tick cadence.
///
/// On each re-plan it windows the pending job stream over `horizon_s`,
/// solves a [`PlanInstance`] against the fleet's current committed load,
/// publishes the result as a placement-hint table (consulted by the
/// kernel per arrival, validated against capacity and wait budgets, with
/// the configured dispatcher as fallback), and emits a `SetSetpoint`
/// action when the optimal set-point moved.
#[derive(Debug)]
pub struct PlannerControl {
    tick: Seconds,
    horizon: Seconds,
    replan_ticks: usize,
    setpoints: Vec<f64>,
    anneal_iters: usize,
    solver: PlanSolver,
    run: Option<CapturedRun>,
    ticks: usize,
    hints: BTreeMap<usize, PlacementHint>,
}

impl PlannerControl {
    /// A planner re-planning every `replan_ticks` ticks of `tick` seconds
    /// over a `horizon`-second job window, choosing among `setpoints`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive tick/horizon, an empty or non-finite
    /// set-point grid, `replan_ticks == 0`, or `anneal_iters == 0`.
    pub fn new(
        tick: Seconds,
        horizon: Seconds,
        replan_ticks: usize,
        setpoints: Vec<f64>,
        anneal_iters: usize,
        solver: PlanSolver,
    ) -> Self {
        assert!(
            tick.value().is_finite() && tick.value() > 0.0,
            "planner tick must be positive"
        );
        assert!(
            horizon.value().is_finite() && horizon.value() > 0.0,
            "planner horizon must be positive"
        );
        assert!(replan_ticks >= 1, "replan_ticks must be at least 1");
        assert!(
            !setpoints.is_empty() && setpoints.iter().all(|s| s.is_finite()),
            "set-point grid must be non-empty and finite"
        );
        assert!(anneal_iters >= 1, "anneal_iters must be at least 1");
        PlannerControl {
            tick,
            horizon,
            replan_ticks,
            setpoints,
            anneal_iters,
            solver,
            run: None,
            ticks: 0,
            hints: BTreeMap::new(),
        }
    }

    /// Builds and solves the window instance for the current tick;
    /// returns the chosen set-point in °C.
    fn replan(&mut self, status: &ControlStatus<'_>, tick_idx: usize) -> Option<f64> {
        let run = self.run.as_mut()?;
        let now = status.now.value();
        while run.next < run.jobs.len() && run.jobs[run.next].arrival.value() < now {
            run.next += 1;
        }
        // Free capacity: static slots minus the rack's committed servers,
        // drained in ascending class order. The split across classes is a
        // heuristic — the kernel re-validates every hint against the real
        // table, so optimism here costs a fallback, never a violation.
        let racks = status.racks.len().min(run.slots.len());
        let mut free: Vec<Vec<usize>> = run.slots[..racks].to_vec();
        for (frees, view) in free.iter_mut().zip(status.racks) {
            let mut committed = view.committed;
            for slot in frees.iter_mut() {
                let take = (*slot).min(committed);
                *slot -= take;
                committed -= take;
            }
        }
        let capacity: usize = free.iter().map(|f| f.iter().sum::<usize>()).sum();

        let deadline = now + self.horizon.value();
        let mut jobs = Vec::new();
        let mut pair_of = Vec::new();
        for i in run.next..run.jobs.len() {
            if run.jobs[i].arrival.value() > deadline || jobs.len() >= PLAN_JOB_CAP.min(capacity) {
                break;
            }
            jobs.push(run.jobs[i]);
            pair_of.push(run.pair_of[i]);
        }

        let inst = PlanInstance {
            jobs: jobs
                .iter()
                .zip(&pair_of)
                .map(|(job, &pair)| PlanJob {
                    id: job.id,
                    options: run.pair_states[pair]
                        .iter()
                        .map(|state| PlanOption {
                            power_w: state.package_power.value(),
                            heat_w: state.heat.value(),
                            water_c: state.max_water_temp.value(),
                            runtime_s: job.service.value() * state.normalized_time,
                        })
                        .collect(),
                })
                .collect(),
            racks: status.racks[..racks]
                .iter()
                .zip(free)
                .map(|(view, free)| PlanRack {
                    base_heat_w: view.heat.value(),
                    base_supply_c: view.supply.map(|s| s.value()),
                    free,
                })
                .collect(),
            setpoints_c: self.setpoints.clone(),
            chiller: run.chiller.clone(),
            horizon_s: self.horizon.value(),
        };
        if inst.racks.is_empty() {
            return None;
        }
        let plan = match self.solver {
            PlanSolver::Lp => solve_lp(&inst),
            PlanSolver::Anneal => {
                solve_anneal(&inst, self.anneal_iters, ANNEAL_SEED ^ tick_idx as u64)
            }
        };
        self.hints.clear();
        for (job, &(rack, class)) in inst.jobs.iter().zip(&plan.assign) {
            self.hints.insert(
                job.id,
                PlacementHint {
                    rack: rack as usize,
                    class: class as ClassId,
                },
            );
        }
        Some(inst.setpoints_c[plan.setpoint])
    }
}

impl ControlPolicy for PlannerControl {
    fn name(&self) -> &'static str {
        "planner"
    }

    fn tick_interval(&self) -> Option<Seconds> {
        Some(self.tick)
    }

    fn begin_run(&mut self, ctx: &RunContext<'_>) {
        let mut jobs = ctx.jobs.to_vec();
        jobs.sort_by(|a, b| {
            a.arrival
                .value()
                .total_cmp(&b.arrival.value())
                .then_with(|| a.id.cmp(&b.id))
        });
        let pair_of = jobs
            .iter()
            .map(|job| {
                ctx.pairs
                    .binary_search(&(job.bench, job.qos))
                    .expect("every job's (bench, qos) pair is solved")
            })
            .collect();
        let per_rack = ctx.servers.servers_per_rack();
        let slots = (0..ctx.servers.racks())
            .map(|r| {
                let mut counts = vec![0usize; ctx.classes];
                for s in r * per_rack..(r + 1) * per_rack {
                    counts[ctx.servers.class_of(s)] += 1;
                }
                counts
            })
            .collect();
        self.run = Some(CapturedRun {
            jobs,
            pair_of,
            pair_states: ctx.pair_states.to_vec(),
            chiller: ctx.chiller.clone(),
            slots,
            next: 0,
        });
        self.ticks = 0;
        self.hints.clear();
    }

    fn on_tick(&mut self, status: &ControlStatus<'_>) -> Vec<ControlAction> {
        let tick_idx = self.ticks;
        self.ticks += 1;
        if tick_idx % self.replan_ticks != 0 {
            return Vec::new();
        }
        match self.replan(status, tick_idx) {
            Some(sp) if sp != status.setpoint.value() => {
                vec![ControlAction::SetSetpoint(Celsius::new(sp))]
            }
            _ => Vec::new(),
        }
    }

    fn placement_hint(&mut self, job: &Job) -> Option<PlacementHint> {
        self.hints.remove(&job.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A hand-sized instance: two racks × two classes, cold-water class 0
    /// vs warm-water class 1, base ambient 35 °C.
    fn instance(jobs: usize) -> PlanInstance {
        let mk = |heat: f64, water: f64, runtime: f64| PlanOption {
            power_w: heat,
            heat_w: heat,
            water_c: water,
            runtime_s: runtime,
        };
        PlanInstance {
            jobs: (0..jobs)
                .map(|i| PlanJob {
                    id: i,
                    options: vec![
                        mk(180.0 + 10.0 * i as f64, 25.0, 300.0),
                        mk(220.0 + 10.0 * i as f64, 48.0, 240.0),
                    ],
                })
                .collect(),
            racks: vec![
                PlanRack {
                    base_heat_w: 0.0,
                    base_supply_c: None,
                    free: vec![2, 2],
                },
                PlanRack {
                    base_heat_w: 400.0,
                    base_supply_c: Some(45.0),
                    free: vec![2, 2],
                },
            ],
            setpoints_c: vec![35.0, 45.0, 55.0],
            chiller: Chiller::new(Celsius::new(35.0)),
            horizon_s: 600.0,
        }
    }

    /// A randomized tiny instance driven by a seeded `StdRng`.
    fn random_instance(seed: u64) -> PlanInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let racks = rng.gen_range(1..=3usize);
        let classes = rng.gen_range(1..=2usize);
        let jobs = rng.gen_range(0..=5usize);
        let mut inst = PlanInstance {
            jobs: (0..jobs)
                .map(|id| PlanJob {
                    id,
                    options: (0..classes)
                        .map(|_| PlanOption {
                            power_w: rng.gen_range(50.0..400.0),
                            heat_w: rng.gen_range(50.0..400.0),
                            water_c: rng.gen_range(20.0..60.0),
                            runtime_s: rng.gen_range(60.0..900.0),
                        })
                        .collect(),
                })
                .collect(),
            racks: (0..racks)
                .map(|_| PlanRack {
                    base_heat_w: if rng.next_f64() < 0.5 {
                        0.0
                    } else {
                        rng.gen_range(100.0..800.0)
                    },
                    base_supply_c: None,
                    free: (0..classes).map(|_| rng.gen_range(0..=2usize)).collect(),
                })
                .collect(),
            setpoints_c: (0..rng.gen_range(1..=3usize))
                .map(|_| rng.gen_range(25.0..65.0))
                .collect(),
            chiller: Chiller::new(Celsius::new(rng.gen_range(25.0..50.0))),
            horizon_s: rng.gen_range(120.0..1200.0),
        };
        for rack in &mut inst.racks {
            if rack.base_heat_w > 0.0 {
                rack.base_supply_c = Some(rng.gen_range(25.0..55.0));
            }
        }
        // Guarantee feasibility: top up capacity until it covers the jobs.
        let mut capacity: usize = inst
            .racks
            .iter()
            .map(|r| r.free.iter().sum::<usize>())
            .sum();
        let mut r = 0;
        while capacity < inst.jobs.len() {
            inst.racks[r % racks].free[r % classes] += 1;
            capacity += 1;
            r += 1;
        }
        inst
    }

    #[test]
    fn greedy_respects_capacity() {
        let inst = instance(6);
        let plan = solve_greedy(&inst);
        let mut used = inst.free_counts();
        for &(r, c) in &plan.assign {
            assert!(
                used[r as usize][c as usize] > 0,
                "slot ({r}, {c}) oversubscribed"
            );
            used[r as usize][c as usize] -= 1;
        }
    }

    #[test]
    fn lp_certifies_and_never_trails_greedy() {
        let inst = instance(5);
        let greedy = solve_greedy(&inst);
        let lp = solve_lp(&inst);
        assert!(lp.objective_j <= greedy.objective_j + 1e-9);
        assert!(lp.certified, "branch-and-bound should finish on 5 jobs");
        assert!(lp.stats.lower_bound_j <= lp.objective_j + 1e-9);
        assert!(lp.stats.linearization_error_j >= 0.0);
    }

    #[test]
    fn anneal_is_deterministic_per_seed_and_never_trails_greedy() {
        let inst = instance(6);
        let greedy = solve_greedy(&inst);
        let a = solve_anneal(&inst, 500, 42);
        let b = solve_anneal(&inst, 500, 42);
        assert_eq!(a.assign, b.assign);
        assert_eq!(a.setpoint, b.setpoint);
        assert_eq!(a.objective_j.to_bits(), b.objective_j.to_bits());
        assert!(a.objective_j <= greedy.objective_j + 1e-9);
    }

    #[test]
    fn empty_window_still_picks_a_setpoint() {
        let mut inst = instance(0);
        inst.jobs.clear();
        let plan = solve_lp(&inst);
        assert!(plan.assign.is_empty());
        assert!(plan.certified);
        // Base heat on rack 1 at a 45 °C ceiling: the coldest set-point
        // has the lowest rejection temperature (45 ≥ 35 + approach puts
        // the chiller in free cooling) and must win.
        assert_eq!(inst.setpoints_c[plan.setpoint], 35.0);
    }

    #[test]
    fn pwl_objective_upper_bounds_the_real_curve() {
        let inst = instance(4);
        let pwls = inst.pwl_models();
        let plan = solve_lp(&inst);
        let pwl_obj = objective_pwl(&inst, &plan.assign, &pwls[plan.setpoint]);
        let real_obj = objective_real(&inst, &plan.assign, plan.setpoint);
        assert!(pwl_obj >= real_obj - 1e-9);
        assert!(pwl_obj <= real_obj + plan.stats.linearization_error_j + 1e-9);
    }

    proptest! {
        #[test]
        fn solver_chain_orders_hold_on_random_instances(seed in 0u64..10_000) {
            let inst = random_instance(seed);
            let greedy = solve_greedy(&inst);
            let lp = solve_lp(&inst);
            let sa = solve_anneal(&inst, 200, seed);
            // Descent + B&B never trail greedy; annealing never trails
            // greedy; the lower bound never exceeds the LP objective.
            prop_assert!(lp.objective_j <= greedy.objective_j + 1e-9);
            prop_assert!(sa.objective_j <= greedy.objective_j + 1e-9);
            prop_assert!(lp.stats.lower_bound_j <= lp.objective_j + 1e-6);
            // Same-seed annealing replays bit-identically.
            let sb = solve_anneal(&inst, 200, seed);
            prop_assert_eq!(sa.assign, sb.assign);
            prop_assert_eq!(sa.objective_j.to_bits(), sb.objective_j.to_bits());
        }
    }
}
