//! Simulated annealing over joint `(assignment, set-point)` plans — the
//! planner's search mode for the nonconvex cases the linearization
//! misses.
//!
//! The walk starts from the greedy incumbent and keeps the best plan ever
//! visited, so by construction it never returns worse than greedy. All
//! randomness comes from the vendored SplitMix64
//! [`StdRng`](rand::rngs::StdRng): the same seed replays the identical
//! move sequence bit for bit.

use super::{objective_pwl, PlanInstance, PwlCop};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A joint plan state the annealer walks over.
#[derive(Debug, Clone)]
pub(crate) struct AnnealState {
    /// Per-job `(rack, class)` slot.
    pub assign: Vec<(u32, u32)>,
    /// Index into the instance's set-point grid.
    pub setpoint: usize,
    /// PWL objective of the state, joules.
    pub objective: f64,
}

/// One annealing run of `iters` proposals from `init`, deterministic per
/// `seed`. `pwls` holds one PWL chiller model per candidate set-point.
pub(crate) fn run(
    inst: &PlanInstance,
    pwls: &[PwlCop],
    init: AnnealState,
    iters: usize,
    seed: u64,
) -> AnnealState {
    let n = inst.jobs.len();
    let classes = inst.classes();
    let mut free = inst.free_counts();
    for &(r, c) in &init.assign {
        free[r as usize][c as usize] -= 1;
    }
    // Slots a reassignment can target (including currently-full ones —
    // occupancy is re-checked per proposal as jobs move around).
    let slots: Vec<(u32, u32)> = (0..inst.racks.len() as u32)
        .flat_map(|r| (0..classes as u32).map(move |c| (r, c)))
        .filter(|&(r, c)| inst.racks[r as usize].free[c as usize] > 0)
        .collect();

    // Which move kinds the instance supports at all.
    let can_reassign = n >= 1 && slots.len() > 1;
    let can_swap = n >= 2;
    let can_retarget = pwls.len() > 1;
    let kinds: Vec<u8> = [
        can_reassign.then_some(0u8),
        can_swap.then_some(1),
        can_retarget.then_some(2),
    ]
    .into_iter()
    .flatten()
    .collect();
    if kinds.is_empty() || iters == 0 {
        return init;
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = init.clone();
    let mut best = init;
    // Geometric cooling from a scale-aware start down to effectively
    // greedy acceptance.
    let t0 = 0.05 * (cur.objective.abs() + 1.0);
    let decay = (1e-6f64).powf(1.0 / iters as f64);
    let mut temp = t0;

    for _ in 0..iters {
        match kinds[rng.gen_range(0..kinds.len())] {
            0 => {
                // Reassign one job to another slot with free capacity.
                let j = rng.gen_range(0..n);
                let old = cur.assign[j];
                let open: Vec<(u32, u32)> = slots
                    .iter()
                    .copied()
                    .filter(|&s| s != old && free[s.0 as usize][s.1 as usize] > 0)
                    .collect();
                if open.is_empty() {
                    temp *= decay;
                    continue;
                }
                let new = open[rng.gen_range(0..open.len())];
                cur.assign[j] = new;
                let obj = objective_pwl(inst, &cur.assign, &pwls[cur.setpoint]);
                if accept(obj - cur.objective, temp, &mut rng) {
                    cur.objective = obj;
                    free[old.0 as usize][old.1 as usize] += 1;
                    free[new.0 as usize][new.1 as usize] -= 1;
                } else {
                    cur.assign[j] = old;
                }
            }
            1 => {
                // Swap two jobs' slots (capacity is conserved).
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j || cur.assign[i] == cur.assign[j] {
                    temp *= decay;
                    continue;
                }
                cur.assign.swap(i, j);
                let obj = objective_pwl(inst, &cur.assign, &pwls[cur.setpoint]);
                if accept(obj - cur.objective, temp, &mut rng) {
                    cur.objective = obj;
                } else {
                    cur.assign.swap(i, j);
                }
            }
            _ => {
                // Move the chiller set-point.
                let sp = rng.gen_range(0..pwls.len());
                if sp == cur.setpoint {
                    temp *= decay;
                    continue;
                }
                let obj = objective_pwl(inst, &cur.assign, &pwls[sp]);
                if accept(obj - cur.objective, temp, &mut rng) {
                    cur.objective = obj;
                    cur.setpoint = sp;
                }
            }
        }
        if cur.objective < best.objective {
            best = cur.clone();
        }
        temp *= decay;
    }
    best
}

/// Metropolis acceptance: downhill always, uphill with probability
/// `exp(−Δ/T)`.
fn accept(delta: f64, temp: f64, rng: &mut StdRng) -> bool {
    delta <= 0.0 || rng.next_f64() < (-delta / temp.max(1e-300)).exp()
}
